"""The :class:`Dataset` container.

A data set binds together:

* the ordered collection of :class:`~repro.logs.record.LogRecord` objects
  (what the detectors see),
* optional :class:`GroundTruth` labels (what the labelled-evaluation
  extension experiments need), and
* :class:`DatasetMetadata` describing where the data came from.

Ground truth is deliberately kept *outside* the records so a detector can
never read a label by accident; the paper's whole point is that the tools
only observe the HTTP requests.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import DatasetError, LabelError
from repro.logs.record import LogRecord

#: Label value used for requests issued by malicious scrapers.
MALICIOUS = "malicious"
#: Label value used for benign requests (humans and legitimate bots).
BENIGN = "benign"


@dataclass(frozen=True)
class DatasetMetadata:
    """Descriptive metadata attached to a :class:`Dataset`."""

    name: str = "unnamed"
    description: str = ""
    source: str = "synthetic"
    scenario: str = ""
    scale: float = 1.0
    seed: int | None = None
    extra: Mapping[str, object] = field(default_factory=dict)


class GroundTruth:
    """Ground-truth labels for the requests of a data set.

    The label store maps ``request_id -> (label, actor_class)`` where
    ``label`` is :data:`MALICIOUS` or :data:`BENIGN` and ``actor_class``
    is the finer-grained actor family that produced the request (e.g.
    ``"human"``, ``"search_crawler"``, ``"aggressive_scraper"``).
    """

    def __init__(self) -> None:
        self._labels: dict[str, str] = {}
        self._actor_classes: dict[str, str] = {}

    # ------------------------------------------------------------------
    def set(self, request_id: str, label: str, actor_class: str = "") -> None:
        """Record the label for a request."""
        if label not in (MALICIOUS, BENIGN):
            raise LabelError(f"unknown label {label!r}; expected {MALICIOUS!r} or {BENIGN!r}")
        self._labels[request_id] = label
        if actor_class:
            self._actor_classes[request_id] = actor_class

    def label_of(self, request_id: str) -> str:
        """Return the label for a request, raising :class:`LabelError` if absent."""
        try:
            return self._labels[request_id]
        except KeyError as exc:
            raise LabelError(f"no ground truth for request {request_id!r}") from exc

    def actor_class_of(self, request_id: str) -> str:
        """Return the actor class for a request (empty string when unknown)."""
        return self._actor_classes.get(request_id, "")

    def is_malicious(self, request_id: str) -> bool:
        """True when the request is labelled malicious."""
        return self.label_of(request_id) == MALICIOUS

    def __contains__(self, request_id: str) -> bool:
        return request_id in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def malicious_ids(self) -> set[str]:
        """The set of request ids labelled malicious."""
        return {rid for rid, label in self._labels.items() if label == MALICIOUS}

    def benign_ids(self) -> set[str]:
        """The set of request ids labelled benign."""
        return {rid for rid, label in self._labels.items() if label == BENIGN}

    def label_columns(self, request_ids: Sequence[str]) -> tuple[list[str], list[str]]:
        """Bulk ``(labels, actor_classes)`` for the given request ids.

        The read counterpart of :meth:`from_columns`: two aligned value
        lists in one pass over the internal stores (no per-request method
        dispatch).  Raises :class:`LabelError` when any id lacks a label.
        """
        labels = self._labels
        actors = self._actor_classes
        try:
            label_values = [labels[request_id] for request_id in request_ids]
        except KeyError as exc:
            raise LabelError(f"no ground truth for request {exc.args[0]!r}") from exc
        actor_get = actors.get
        return label_values, [actor_get(request_id, "") for request_id in request_ids]

    def actor_class_counts(self) -> Counter[str]:
        """Number of requests per actor class."""
        return Counter(self._actor_classes.values())

    def to_dict(self) -> dict[str, dict[str, str]]:
        """JSON-friendly representation (used by :meth:`Dataset.save_labels`)."""
        return {
            rid: {"label": label, "actor_class": self._actor_classes.get(rid, "")}
            for rid, label in self._labels.items()
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, str]]) -> "GroundTruth":
        """Inverse of :meth:`to_dict`."""
        truth = cls()
        for rid, entry in data.items():
            truth.set(rid, entry["label"], entry.get("actor_class", ""))
        return truth

    @classmethod
    def from_columns(
        cls,
        request_ids: Sequence[str],
        labels: Sequence[str],
        actor_classes: Sequence[str],
    ) -> "GroundTruth":
        """Build ground truth from parallel columns in one pass.

        This is the bulk counterpart of :meth:`set` used by the trace
        reader: label values are validated once per *distinct* value
        instead of once per request, and the stores are built with dict
        constructors rather than per-record method calls.
        """
        if not (len(request_ids) == len(labels) == len(actor_classes)):
            raise LabelError(
                "ground-truth columns must have equal lengths "
                f"(got {len(request_ids)}, {len(labels)}, {len(actor_classes)})"
            )
        unknown = set(labels) - {MALICIOUS, BENIGN}
        if unknown:
            raise LabelError(
                f"unknown labels {sorted(unknown)}; expected {MALICIOUS!r} or {BENIGN!r}"
            )
        truth = cls()
        truth._labels = dict(zip(request_ids, labels))
        truth._actor_classes = {
            rid: actor for rid, actor in zip(request_ids, actor_classes) if actor
        }
        return truth


class Dataset:
    """An ordered collection of log records with optional ground truth."""

    def __init__(
        self,
        records: Sequence[LogRecord] | Iterable[LogRecord],
        ground_truth: GroundTruth | None = None,
        metadata: DatasetMetadata | None = None,
        *,
        time_ordered: bool | None = None,
    ) -> None:
        self._records: list[LogRecord] = list(records)
        self._by_id: dict[str, LogRecord] = {
            record.request_id: record for record in self._records
        }
        if len(self._by_id) != len(self._records):
            # Only walk again (to name the culprit) once the cheap
            # cardinality check has already proven there is one.
            seen: set[str] = set()
            for record in self._records:
                if record.request_id in seen:
                    raise DatasetError(f"duplicate request id: {record.request_id!r}")
                seen.add(record.request_id)
        self.ground_truth = ground_truth
        self.metadata = metadata or DatasetMetadata()
        # ``None`` means "unknown": :attr:`is_time_ordered` checks (and
        # caches) lazily.  Producers that build records in timestamp
        # order -- the traffic generator, the trace reader -- pass
        # ``True`` so replay never needs a sorted copy.
        self._time_ordered = time_ordered
        self._request_ids: list[str] | None = None
        self._row_of: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> LogRecord:
        return self._records[index]

    def __contains__(self, request_id: str) -> bool:
        return request_id in self._by_id

    @property
    def records(self) -> list[LogRecord]:
        """The records in log order (do not mutate)."""
        return self._records

    @property
    def request_ids(self) -> list[str]:
        """All request ids in log order (cached; do not mutate)."""
        if self._request_ids is None:
            self._request_ids = [record.request_id for record in self._records]
        return self._request_ids

    def row_index(self) -> dict[str, int]:
        """``{request_id: row}`` in log order (cached; do not mutate).

        Consumers that used to rebuild ``{rid: i}`` per call (matrix
        assembly, stream equivalence bridges) share this one map.
        """
        if self._row_of is None:
            self._row_of = {rid: i for i, rid in enumerate(self.request_ids)}
        return self._row_of

    def get(self, request_id: str) -> LogRecord:
        """Return the record with the given id."""
        try:
            return self._by_id[request_id]
        except KeyError as exc:
            raise DatasetError(f"no record with request id {request_id!r}") from exc

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    @property
    def is_labelled(self) -> bool:
        """True when every record has a ground-truth label."""
        if self.ground_truth is None:
            return False
        return all(record.request_id in self.ground_truth for record in self._records)

    def require_labels(self) -> GroundTruth:
        """Return the ground truth, raising :class:`LabelError` if incomplete."""
        if self.ground_truth is None:
            raise LabelError("data set has no ground truth labels")
        missing = [r.request_id for r in self._records if r.request_id not in self.ground_truth]
        if missing:
            raise LabelError(f"{len(missing)} records lack ground truth (first: {missing[0]!r})")
        return self.ground_truth

    def malicious_fraction(self) -> float:
        """Fraction of requests labelled malicious (requires labels)."""
        truth = self.require_labels()
        if not self._records:
            return 0.0
        malicious = sum(1 for r in self._records if truth.is_malicious(r.request_id))
        return malicious / len(self._records)

    # ------------------------------------------------------------------
    # Views and statistics
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[LogRecord], bool], name: str | None = None) -> "Dataset":
        """Return a new data set containing only records matching ``predicate``.

        Ground truth and metadata are shared with the parent (labels are a
        superset of the filtered records, which is fine).
        """
        filtered = [record for record in self._records if predicate(record)]
        metadata = self.metadata
        if name:
            metadata = DatasetMetadata(
                name=name,
                description=f"filtered view of {self.metadata.name}",
                source=self.metadata.source,
                scenario=self.metadata.scenario,
                scale=self.metadata.scale,
                seed=self.metadata.seed,
            )
        return Dataset(
            filtered,
            ground_truth=self.ground_truth,
            metadata=metadata,
            # A subsequence of an ordered sequence stays ordered; an
            # unknown parent stays unknown rather than paying a scan here.
            time_ordered=True if self._time_ordered else None,
        )

    def status_counts(self) -> Counter[int]:
        """Number of requests per HTTP status code."""
        return Counter(record.status for record in self._records)

    def method_counts(self) -> Counter[str]:
        """Number of requests per HTTP method."""
        return Counter(record.method.value for record in self._records)

    def day_counts(self) -> Counter[str]:
        """Number of requests per calendar day (ISO date strings)."""
        return Counter(record.day for record in self._records)

    def unique_ips(self) -> set[str]:
        """The set of distinct client IPs."""
        return {record.client_ip for record in self._records}

    def unique_user_agents(self) -> set[str]:
        """The set of distinct user-agent strings."""
        return {record.user_agent for record in self._records}

    def time_span(self) -> tuple[datetime, datetime]:
        """The (first, last) request timestamps."""
        if not self._records:
            raise DatasetError("cannot compute the time span of an empty data set")
        timestamps = [record.timestamp for record in self._records]
        return min(timestamps), max(timestamps)

    @property
    def is_time_ordered(self) -> bool:
        """True when the records are already in timestamp order.

        The answer is cached: producers that emit records in order mark
        the data set at construction time, and otherwise a single O(n)
        scan (no copy) settles it the first time replay code asks.
        """
        if self._time_ordered is None:
            records = self._records
            self._time_ordered = all(
                records[i - 1].timestamp <= records[i].timestamp for i in range(1, len(records))
            )
        return self._time_ordered

    def sorted_by_time(self) -> "Dataset":
        """Return a copy with the records sorted by timestamp (stable)."""
        ordered = sorted(self._records, key=lambda record: record.timestamp)
        return Dataset(
            ordered, ground_truth=self.ground_truth, metadata=self.metadata, time_ordered=True
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_labels(self, path: str) -> None:
        """Write the ground truth to ``path`` as JSON."""
        truth = self.require_labels()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(truth.to_dict(), handle)

    @staticmethod
    def load_labels(path: str) -> GroundTruth:
        """Load ground truth previously written by :meth:`save_labels`."""
        with open(path, "r", encoding="utf-8") as handle:
            return GroundTruth.from_dict(json.load(handle))

    def summary(self) -> dict[str, object]:
        """A dictionary summary of the data set (used by the CLI and reports)."""
        info: dict[str, object] = {
            "name": self.metadata.name,
            "records": len(self._records),
            "unique_ips": len(self.unique_ips()),
            "unique_user_agents": len(self.unique_user_agents()),
            "statuses": dict(self.status_counts()),
            "days": dict(self.day_counts()),
            "labelled": self.is_labelled,
        }
        if self.is_labelled:
            info["malicious_fraction"] = round(self.malicious_fraction(), 4)
        return info
