"""Serialisation of :class:`~repro.logs.record.LogRecord` back to log lines.

The writer is the inverse of :mod:`repro.logs.parser`: formatting a record
and re-parsing it yields an equivalent record.  It is used by the traffic
generator to materialise synthetic data sets as real Apache access-log
files on disk, so the whole pipeline (generate -> write -> parse -> detect
-> analyse) exercises the same code path the paper's production data
would.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from repro.logs.parser import APACHE_TIMESTAMP_FORMAT
from repro.logs.record import LogRecord


def format_record(record: LogRecord) -> str:
    """Format ``record`` as a combined log format line (without newline)."""
    timestamp = record.timestamp.strftime(APACHE_TIMESTAMP_FORMAT)
    referrer = record.referrer if record.referrer else "-"
    agent = record.user_agent if record.user_agent else "-"
    size = str(record.response_size) if record.response_size else "0"
    return (
        f"{record.client_ip} {record.ident} {record.auth_user} "
        f"[{timestamp}] "
        f'"{record.method.value} {record.path} {record.protocol}" '
        f"{record.status} {size} "
        f'"{referrer}" "{agent}"'
    )


def format_records(records: Iterable[LogRecord]) -> Iterator[str]:
    """Yield one combined-log-format line per record."""
    for record in records:
        yield format_record(record)


def write_records(records: Iterable[LogRecord], handle: IO[str]) -> int:
    """Write ``records`` to an open text file handle; return the line count."""
    count = 0
    for line in format_records(records):
        handle.write(line)
        handle.write("\n")
        count += 1
    return count


class LogWriter:
    """File-oriented writer with the same convenience shape as :class:`LogParser`."""

    def write_file(self, records: Iterable[LogRecord], path: str) -> int:
        """Write ``records`` to ``path`` as an Apache access log; return the count."""
        with open(path, "w", encoding="utf-8") as handle:
            return write_records(records, handle)

    def to_lines(self, records: Iterable[LogRecord]) -> list[str]:
        """Return the formatted lines as a list (used by tests and benches)."""
        return list(format_records(records))
