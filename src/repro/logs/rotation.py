"""Day-by-day views of a data set.

The paper's data set spans 8 days of production traffic; operationally
such logs are rotated daily.  These helpers split a :class:`Dataset` into
per-day data sets and iterate over them in calendar order, which the
per-day drill-down analyses and the CLI use.
"""

from __future__ import annotations

from typing import Iterator

from repro.logs.dataset import Dataset, DatasetMetadata


def split_by_day(dataset: Dataset) -> dict[str, Dataset]:
    """Split ``dataset`` into one data set per calendar day.

    The returned mapping is keyed by ISO date (``YYYY-MM-DD``).  Records
    keep their original order within each day; ground truth is shared.
    """
    buckets: dict[str, list] = {}
    for record in dataset:
        buckets.setdefault(record.day, []).append(record)
    result: dict[str, Dataset] = {}
    for day in sorted(buckets):
        metadata = DatasetMetadata(
            name=f"{dataset.metadata.name}:{day}",
            description=f"day {day} of {dataset.metadata.name}",
            source=dataset.metadata.source,
            scenario=dataset.metadata.scenario,
            scale=dataset.metadata.scale,
            seed=dataset.metadata.seed,
        )
        result[day] = Dataset(buckets[day], ground_truth=dataset.ground_truth, metadata=metadata)
    return result


def iter_days(dataset: Dataset) -> Iterator[tuple[str, Dataset]]:
    """Iterate ``(iso_date, per-day data set)`` pairs in calendar order."""
    per_day = split_by_day(dataset)
    for day in sorted(per_day):
        yield day, per_day[day]
