"""Grouping requests into visitor sessions.

Most scraping detectors (both commercial products and in-house rule
engines) reason about *sessions* -- bursts of activity from one visitor --
rather than isolated requests.  A session here is the classic web-analytics
definition: consecutive requests sharing the same (client IP, user agent)
pair with no gap longer than an inactivity timeout (30 minutes by
default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta
from typing import Iterable, Iterator

from repro.logs.record import LogRecord

#: Default session inactivity timeout (the conventional 30 minutes).
DEFAULT_TIMEOUT = timedelta(minutes=30)


@dataclass
class Session:
    """A sequence of requests from one visitor with no long gaps."""

    session_id: str
    client_ip: str
    user_agent: str
    records: list[LogRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, record: LogRecord) -> None:
        """Append a record to the session (records must arrive in time order)."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # Derived metrics (the raw material for detector features)
    # ------------------------------------------------------------------
    @property
    def start(self):
        """Timestamp of the first request."""
        return self.records[0].timestamp

    @property
    def end(self):
        """Timestamp of the last request."""
        return self.records[-1].timestamp

    @property
    def duration_seconds(self) -> float:
        """Wall-clock duration of the session in seconds."""
        return (self.end - self.start).total_seconds()

    @property
    def request_count(self) -> int:
        """Number of requests in the session."""
        return len(self.records)

    def requests_per_minute(self) -> float:
        """Average request rate; single-request sessions count as 1 req/min."""
        if self.request_count <= 1:
            return float(self.request_count)
        minutes = max(self.duration_seconds / 60.0, 1.0 / 60.0)
        return self.request_count / minutes

    def peak_requests_per_minute(self, window_seconds: float = 60.0) -> float:
        """Maximum number of requests in any sliding window, per minute.

        Average session rate hides bursty behaviour: a scraper that fires
        300 requests in three minutes and then sleeps for an hour averages
        under 5 requests/minute.  Rate rules therefore look at the busiest
        window instead.
        """
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.request_count <= 1:
            return float(self.request_count)
        times = [record.timestamp for record in self.records]
        best = 1
        start = 0
        for end in range(len(times)):
            while (times[end] - times[start]).total_seconds() > window_seconds:
                start += 1
            best = max(best, end - start + 1)
        return best * (60.0 / window_seconds)

    def mean_interarrival_seconds(self) -> float:
        """Mean gap between consecutive requests (0 for single-request sessions)."""
        if self.request_count <= 1:
            return 0.0
        gaps = [
            (b.timestamp - a.timestamp).total_seconds()
            for a, b in zip(self.records, self.records[1:])
        ]
        return sum(gaps) / len(gaps)

    def interarrival_seconds(self) -> list[float]:
        """All gaps between consecutive requests, in seconds."""
        return [
            (b.timestamp - a.timestamp).total_seconds()
            for a, b in zip(self.records, self.records[1:])
        ]

    def error_rate(self) -> float:
        """Fraction of 4xx/5xx responses in the session."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.is_error) / len(self.records)

    def status_fraction(self, status: int) -> float:
        """Fraction of requests with the given status code."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.status == status) / len(self.records)

    def asset_fraction(self) -> float:
        """Fraction of requests for static assets (images/CSS/JS/fonts)."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.is_asset_request) / len(self.records)

    def referrer_fraction(self) -> float:
        """Fraction of requests carrying a Referer header."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.has_referrer) / len(self.records)

    def unique_paths(self) -> int:
        """Number of distinct URL paths requested."""
        return len({r.url_path for r in self.records})

    def path_repetition(self) -> float:
        """Requests per distinct path (1.0 means every path requested once)."""
        unique = self.unique_paths()
        if unique == 0:
            return 0.0
        return self.request_count / unique

    def head_fraction(self) -> float:
        """Fraction of HEAD requests (bots probe with HEAD far more than humans)."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.method.value == "HEAD") / len(self.records)

    def robots_txt_hits(self) -> int:
        """Number of requests for ``/robots.txt`` (a strong bot indicator)."""
        return sum(1 for r in self.records if r.url_path == "/robots.txt")

    def request_ids(self) -> list[str]:
        """The request ids of the session, in order."""
        return [r.request_id for r in self.records]


class Sessionizer:
    """Split a record stream into :class:`Session` objects.

    Parameters
    ----------
    timeout:
        Maximum inactivity gap within one session; a larger gap starts a
        new session for the same visitor key.
    """

    def __init__(self, timeout: timedelta = DEFAULT_TIMEOUT):
        if timeout.total_seconds() <= 0:
            raise ValueError("session timeout must be positive")
        self.timeout = timeout

    def sessionize(self, records: Iterable[LogRecord]) -> list[Session]:
        """Group ``records`` into sessions.

        Records are sorted by timestamp first, so callers may pass data in
        any order.  The result is sorted by session start time.
        """
        ordered = sorted(records, key=lambda record: record.timestamp)
        open_sessions: dict[tuple[str, str], Session] = {}
        finished: list[Session] = []
        counter = 0

        for record in ordered:
            key = record.actor_key()
            current = open_sessions.get(key)
            if current is not None and (record.timestamp - current.end) > self.timeout:
                finished.append(current)
                current = None
            if current is None:
                current = Session(
                    session_id=f"s{counter}",
                    client_ip=record.client_ip,
                    user_agent=record.user_agent,
                )
                counter += 1
                open_sessions[key] = current
            current.add(record)

        finished.extend(open_sessions.values())
        finished.sort(key=lambda session: session.start)
        return finished

    def sessionize_frame(self, frame):
        """Vectorized sessionization of a :class:`~repro.columns.RecordFrame`.

        Returns a :class:`~repro.columns.FrameSessions` index (session
        spans over the frame's rows) equivalent record for record and id
        for id to :meth:`sessionize` over the same data -- see
        :func:`repro.columns.sessions.sessionize_frame`.
        """
        # Imported lazily: repro.columns builds on this module.
        from repro.columns import sessionize_frame

        return sessionize_frame(frame, timeout=self.timeout)

    def sessionize_by_ip(self, records: Iterable[LogRecord]) -> dict[str, list[Session]]:
        """Group sessions by client IP (used by IP-centric detectors)."""
        by_ip: dict[str, list[Session]] = {}
        for session in self.sessionize(records):
            by_ip.setdefault(session.client_ip, []).append(session)
        return by_ip
