"""Apache HTTP access-log substrate.

This package provides everything needed to work with Apache access logs
the way the paper's data set is consumed:

* :mod:`repro.logs.record` -- the immutable :class:`LogRecord` model.
* :mod:`repro.logs.parser` -- combined/common log format parsing.
* :mod:`repro.logs.writer` -- serialisation back to log lines/files.
* :mod:`repro.logs.dataset` -- the :class:`Dataset` container that binds
  records to optional ground-truth labels and metadata.
* :mod:`repro.logs.sessionization` -- grouping of requests into visitor
  sessions (the unit most detectors reason about).
* :mod:`repro.logs.statuses` -- the HTTP status registry used for the
  paper's Tables 3 and 4.
* :mod:`repro.logs.filters` -- composable record predicates.
* :mod:`repro.logs.rotation` -- day-by-day splitting of a data set, as an
  8-day log collection would be stored on disk.
"""

from repro.logs.dataset import Dataset, DatasetMetadata, GroundTruth
from repro.logs.filters import (
    and_filter,
    by_day,
    by_ip,
    by_method,
    by_path_prefix,
    by_status,
    by_status_class,
    by_user_agent_substring,
    not_filter,
    or_filter,
)
from repro.logs.parser import LogParser, parse_line, parse_lines
from repro.logs.record import LogRecord, RequestMethod
from repro.logs.rotation import iter_days, split_by_day
from repro.logs.sessionization import Session, Sessionizer
from repro.logs.statuses import STATUS_REGISTRY, describe_status, status_class
from repro.logs.writer import LogWriter, format_record, write_records

__all__ = [
    "Dataset",
    "DatasetMetadata",
    "GroundTruth",
    "LogParser",
    "LogRecord",
    "LogWriter",
    "RequestMethod",
    "STATUS_REGISTRY",
    "Session",
    "Sessionizer",
    "and_filter",
    "by_day",
    "by_ip",
    "by_method",
    "by_path_prefix",
    "by_status",
    "by_status_class",
    "by_user_agent_substring",
    "describe_status",
    "format_record",
    "iter_days",
    "not_filter",
    "or_filter",
    "parse_line",
    "parse_lines",
    "split_by_day",
    "status_class",
    "write_records",
]
