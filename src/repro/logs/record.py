"""The :class:`LogRecord` model.

A :class:`LogRecord` is one HTTP request as seen in an Apache access log,
i.e. exactly the information available to the detectors studied in the
paper.  It deliberately contains *no* ground-truth information -- labels
live in :class:`repro.logs.dataset.GroundTruth` so that detectors can
never accidentally peek at them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from typing import Any, Mapping
from urllib.parse import parse_qsl, urlsplit


#: File extensions that mark a request as a static-asset fetch; shared
#: with :mod:`repro.columns` so the record and columnar paths can never
#: disagree about what an asset is.
ASSET_SUFFIXES: tuple[str, ...] = (
    ".css",
    ".js",
    ".png",
    ".jpg",
    ".jpeg",
    ".gif",
    ".svg",
    ".ico",
    ".woff",
    ".woff2",
    ".ttf",
    ".map",
)


class RequestMethod(str, enum.Enum):
    """HTTP request methods that appear in the access logs."""

    GET = "GET"
    POST = "POST"
    HEAD = "HEAD"
    PUT = "PUT"
    DELETE = "DELETE"
    OPTIONS = "OPTIONS"
    PATCH = "PATCH"

    @classmethod
    def from_string(cls, value: str) -> "RequestMethod":
        """Return the enum member for ``value``, defaulting to GET-like lookups.

        Unknown or malformed method tokens (which do occur in real logs,
        e.g. from protocol-confused scanners) raise ``ValueError`` so the
        parser can decide how strict to be.
        """
        try:
            return cls(value.upper())
        except ValueError as exc:
            raise ValueError(f"unknown HTTP method: {value!r}") from exc


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One HTTP request from an Apache *combined log format* access log.

    Parameters
    ----------
    request_id:
        A unique, stable identifier for the request within its data set.
        The paper's analysis joins per-tool alerts on the request, so each
        record must be individually addressable.
    timestamp:
        Request time (timezone-aware).
    client_ip:
        Remote host as logged (``%h``).
    method, path, protocol:
        The parsed request line (``"%r"``).
    status:
        Response status code (``%>s``).
    response_size:
        Response body size in bytes (``%b``); ``0`` when logged as ``-``.
    referrer:
        The ``Referer`` header, empty string when logged as ``-``.
    user_agent:
        The ``User-Agent`` header, empty string when logged as ``-``.
    ident, auth_user:
        The ``%l`` and ``%u`` fields; almost always ``-`` in practice.
    """

    request_id: str
    timestamp: datetime
    client_ip: str
    method: RequestMethod
    path: str
    protocol: str
    status: int
    response_size: int
    referrer: str = ""
    user_agent: str = ""
    ident: str = "-"
    auth_user: str = "-"
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp.tzinfo is None:
            # Access logs always carry an offset; normalise naive datetimes
            # to UTC rather than letting comparisons blow up later.
            object.__setattr__(self, "timestamp", self.timestamp.replace(tzinfo=timezone.utc))
        if self.status < 100 or self.status > 599:
            raise ValueError(f"invalid HTTP status code: {self.status}")
        if self.response_size < 0:
            raise ValueError(f"negative response size: {self.response_size}")

    # ------------------------------------------------------------------
    # Derived views of the request line
    # ------------------------------------------------------------------
    @property
    def url_path(self) -> str:
        """The path component without the query string."""
        return urlsplit(self.path).path

    @property
    def query_string(self) -> str:
        """The raw query string (without the leading ``?``)."""
        return urlsplit(self.path).query

    @property
    def query_params(self) -> dict[str, str]:
        """The query string parsed into a ``dict`` (last value wins)."""
        return dict(parse_qsl(self.query_string, keep_blank_values=True))

    @property
    def day(self) -> str:
        """The request's calendar day in ISO format (``YYYY-MM-DD``)."""
        return self.timestamp.date().isoformat()

    @property
    def status_class(self) -> int:
        """The status class (2 for 2xx, 3 for 3xx, ...)."""
        return self.status // 100

    @property
    def is_error(self) -> bool:
        """True when the response is a client or server error (4xx/5xx)."""
        return self.status >= 400

    @property
    def is_asset_request(self) -> bool:
        """True when the path looks like a static asset (css/js/image/font)."""
        return self.url_path.lower().endswith(ASSET_SUFFIXES)

    @property
    def has_referrer(self) -> bool:
        """True when a non-empty ``Referer`` header was logged."""
        return bool(self.referrer) and self.referrer != "-"

    @property
    def has_user_agent(self) -> bool:
        """True when a non-empty ``User-Agent`` header was logged."""
        return bool(self.user_agent) and self.user_agent != "-"

    def with_status(self, status: int) -> "LogRecord":
        """Return a copy with a different status code (used in tests)."""
        return replace(self, status=status)

    def actor_key(self) -> tuple[str, str]:
        """The (client IP, user agent) pair used to group requests into sessions."""
        return (self.client_ip, self.user_agent)
