"""Apache access-log parsing.

The paper's data set is an Apache HTTP access log in *combined log
format*::

    %h %l %u %t "%r" %>s %b "%{Referer}i" "%{User-agent}i"

for example::

    203.0.113.9 - - [11/Mar/2018:06:25:31 +0000] "GET /search?o=PAR&d=LIS HTTP/1.1" 200 18311 "https://shop.example.com/" "Mozilla/5.0 ..."

This module parses such lines into :class:`~repro.logs.record.LogRecord`
instances.  The *common log format* (without referrer and user agent) is
also supported because real log collections frequently mix both.
"""

from __future__ import annotations

import gzip
import re
from dataclasses import dataclass
from datetime import datetime
from typing import IO, Iterable, Iterator, Sequence

from repro.exceptions import LogParseError
from repro.logs.record import LogRecord, RequestMethod


def open_log(path: str) -> IO[str]:
    """Open an access-log file for reading, transparently handling gzip.

    Rotated production logs are customarily compressed in place
    (``access.log.2.gz``); every file-reading entry point in the library
    (:meth:`LogParser.parse_file`, :func:`repro.stream.sources.tail_log_file`,
    the trace importer) goes through this helper so ``.gz`` files work
    wherever a plain log does.
    """
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, "r", encoding="utf-8", errors="replace")

#: Apache's ``%t`` timestamp format, e.g. ``11/Mar/2018:06:25:31 +0000``.
APACHE_TIMESTAMP_FORMAT = "%d/%b/%Y:%H:%M:%S %z"

_COMBINED_RE = re.compile(
    r"^(?P<host>\S+)\s+"
    r"(?P<ident>\S+)\s+"
    r"(?P<user>\S+)\s+"
    r"\[(?P<time>[^\]]+)\]\s+"
    r'"(?P<request>[^"]*)"\s+'
    r"(?P<status>\d{3})\s+"
    r"(?P<size>\S+)"
    r'(?:\s+"(?P<referrer>[^"]*)"\s+"(?P<agent>[^"]*)")?'
    r"\s*$"
)

_REQUEST_LINE_RE = re.compile(r"^(?P<method>[A-Za-z]+)\s+(?P<path>\S+)(?:\s+(?P<protocol>\S+))?$")


def parse_apache_timestamp(value: str) -> datetime:
    """Parse an Apache ``%t`` timestamp (``11/Mar/2018:06:25:31 +0000``)."""
    try:
        return datetime.strptime(value, APACHE_TIMESTAMP_FORMAT)
    except ValueError as exc:
        raise LogParseError(f"invalid timestamp: {value!r}") from exc


def parse_line(line: str, request_id: str | None = None, line_number: int | None = None) -> LogRecord:
    """Parse a single combined/common log format line into a :class:`LogRecord`.

    Parameters
    ----------
    line:
        The raw log line.
    request_id:
        Identifier assigned to the resulting record.  When omitted a
        deterministic identifier is derived from the line number (or the
        literal ``"r0"`` when that is unknown either).
    line_number:
        1-based position of the line in its source, used both for the
        default ``request_id`` and for error reporting.

    Raises
    ------
    LogParseError
        If the line does not match the combined or common log format.
    """
    stripped = line.strip()
    if not stripped:
        raise LogParseError("empty log line", line=line, line_number=line_number)

    match = _COMBINED_RE.match(stripped)
    if match is None:
        raise LogParseError("line does not match combined/common log format", line=line, line_number=line_number)

    request = match.group("request")
    request_match = _REQUEST_LINE_RE.match(request)
    if request_match is None:
        raise LogParseError(f"malformed request line: {request!r}", line=line, line_number=line_number)

    try:
        method = RequestMethod.from_string(request_match.group("method"))
    except ValueError as exc:
        raise LogParseError(str(exc), line=line, line_number=line_number) from exc

    size_token = match.group("size")
    if size_token == "-":
        size = 0
    else:
        try:
            size = int(size_token)
        except ValueError as exc:
            raise LogParseError(f"invalid response size: {size_token!r}", line=line, line_number=line_number) from exc

    timestamp = parse_apache_timestamp(match.group("time"))

    if request_id is None:
        request_id = f"r{line_number - 1}" if line_number is not None else "r0"

    referrer = match.group("referrer") or ""
    agent = match.group("agent") or ""
    return LogRecord(
        request_id=request_id,
        timestamp=timestamp,
        client_ip=match.group("host"),
        method=method,
        path=request_match.group("path"),
        protocol=request_match.group("protocol") or "HTTP/1.0",
        status=int(match.group("status")),
        response_size=size,
        referrer="" if referrer == "-" else referrer,
        user_agent="" if agent == "-" else agent,
        ident=match.group("ident"),
        auth_user=match.group("user"),
    )


def parse_lines(
    lines: Iterable[str],
    *,
    skip_malformed: bool = False,
    request_id_prefix: str = "r",
) -> Iterator[LogRecord]:
    """Parse an iterable of log lines, yielding :class:`LogRecord` objects.

    Parameters
    ----------
    lines:
        Any iterable of raw log lines (a file object works directly).
    skip_malformed:
        When true, lines that fail to parse are silently skipped; when
        false (the default) the first malformed line raises
        :class:`~repro.exceptions.LogParseError`.
    request_id_prefix:
        Prefix used to construct request identifiers (``r0``, ``r1``, ...).
    """
    emitted = 0
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = parse_line(line, request_id=f"{request_id_prefix}{emitted}", line_number=line_number)
        except LogParseError:
            if skip_malformed:
                continue
            raise
        emitted += 1
        yield record


@dataclass
class ParseReport:
    """Summary of a bulk parse run (see :meth:`LogParser.parse_report`)."""

    total_lines: int = 0
    parsed: int = 0
    skipped: int = 0
    errors: list[LogParseError] | None = None

    def __post_init__(self) -> None:
        if self.errors is None:
            self.errors = []


class LogParser:
    """Stateful parser for whole files or line collections.

    The class-based API exists mostly for convenience (strictness and
    request-id prefixes configured once, shareable between calls); the
    functional :func:`parse_line` / :func:`parse_lines` API underneath is
    what does the work.
    """

    def __init__(self, *, skip_malformed: bool = False, request_id_prefix: str = "r"):
        self.skip_malformed = skip_malformed
        self.request_id_prefix = request_id_prefix

    def parse(self, lines: Iterable[str]) -> list[LogRecord]:
        """Parse ``lines`` into a list of records."""
        return list(
            parse_lines(
                lines,
                skip_malformed=self.skip_malformed,
                request_id_prefix=self.request_id_prefix,
            )
        )

    def parse_file(self, path: str) -> list[LogRecord]:
        """Parse an access-log file from disk (``.gz`` files are decompressed)."""
        with open_log(path) as handle:
            return self.parse(handle)

    def parse_report(self, lines: Sequence[str]) -> tuple[list[LogRecord], ParseReport]:
        """Parse ``lines`` and also return a :class:`ParseReport`.

        Malformed lines never raise here; they are counted (and collected)
        in the report instead, which is the behaviour one wants when
        ingesting large, possibly slightly dirty production logs.
        """
        report = ParseReport()
        records: list[LogRecord] = []
        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            report.total_lines += 1
            try:
                record = parse_line(
                    line,
                    request_id=f"{self.request_id_prefix}{len(records)}",
                    line_number=line_number,
                )
            except LogParseError as exc:
                report.skipped += 1
                assert report.errors is not None
                report.errors.append(exc)
                continue
            report.parsed += 1
            records.append(record)
        return records, report
