"""The profile artifact: aggregated stacks, per-span stats, exporters.

A :class:`Profile` is what one profiled run produces: deterministic,
JSON-round-tripping aggregates -- never raw events -- so profiles are
cheap to persist in the run store and stable to diff across runs.

Three views come out of one profile:

* **collapsed stacks** (:meth:`Profile.collapsed`) -- the
  ``frame;frame;frame count`` text format ``flamegraph.pl`` and most
  flame-graph tooling consume.  Span-path components lead each stack, so
  the rendered flame graph groups by pipeline stage
  (``tables;sessionize;repro.columns.sessionize:...``).
* **speedscope JSON** (:meth:`Profile.speedscope`) -- the
  `speedscope.app <https://www.speedscope.app>`_ sampled-profile schema,
  for interactive exploration.
* **text report** (:meth:`Profile.render_report`) -- top spans by self
  time (with allocation / peak-memory attribution) and top functions by
  self samples, for terminals and CI logs.

The collapsed format round-trips exactly: ``collapse(parse_collapsed(
collapse(samples)))`` is byte-identical to ``collapse(samples)``, which
is what makes the export a dependable interchange surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.exceptions import ProfError

#: Format marker of the profile JSON schema (see :meth:`Profile.to_dict`).
PROFILE_FORMAT = "repro-prof"
PROFILE_VERSION = 1

#: Separator between span names in a span *path* ("tables/sessionize").
PATH_SEPARATOR = "/"


def frame_label(module: str, qualname: str) -> str:
    """The canonical ``module:qualname`` label of one stack frame.

    Collapsed stacks delimit frames with ``;`` and the trailing count
    with a space, so both characters are rewritten; the label otherwise
    keeps the dotted module path and the full qualified function name.
    """
    label = f"{module}:{qualname}"
    return label.replace(";", ",").replace(" ", "_")


@dataclass(frozen=True)
class StackSample:
    """One aggregated call stack: where samples landed, how often.

    ``frames`` is the captured Python stack, root first; ``span_path``
    is the ``/``-joined span tree position the samples occurred under
    (empty when the thread was between spans).
    """

    frames: tuple[str, ...]
    count: int
    span_path: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ProfError(f"a stack sample needs a positive count, got {self.count}")
        if not self.frames:
            raise ProfError("a stack sample needs at least one frame")

    def stack(self) -> tuple[str, ...]:
        """The exported stack: span-path components, then code frames."""
        if not self.span_path:
            return self.frames
        return (*self.span_path.split(PATH_SEPARATOR), *self.frames)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_path": self.span_path,
            "frames": list(self.frames),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StackSample":
        try:
            return cls(
                frames=tuple(str(frame) for frame in data["frames"]),
                count=int(data["count"]),
                span_path=str(data.get("span_path", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfError(f"malformed stack-sample entry: {exc}") from exc


@dataclass(frozen=True)
class SpanStat:
    """Per-span-path resource attribution of one profiled run.

    ``self_samples`` counts stacks captured while this exact path was
    the innermost open span; ``total_samples`` additionally includes
    every descendant path.  ``alloc_bytes`` is the *net* traced
    allocation across the span's activations (negative when a span frees
    more than it allocates), ``peak_bytes`` the highest traced memory
    watermark observed inside any activation.
    """

    path: str
    self_samples: int = 0
    total_samples: int = 0
    calls: int = 0
    alloc_bytes: int = 0
    peak_bytes: int = 0

    def self_seconds(self, hz: float) -> float:
        """Estimated self CPU seconds (samples over the sampling rate)."""
        return self.self_samples / hz if hz > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "self_samples": self.self_samples,
            "total_samples": self.total_samples,
            "calls": self.calls,
            "alloc_bytes": self.alloc_bytes,
            "peak_bytes": self.peak_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanStat":
        try:
            return cls(
                path=str(data["path"]),
                self_samples=int(data.get("self_samples", 0)),
                total_samples=int(data.get("total_samples", 0)),
                calls=int(data.get("calls", 0)),
                alloc_bytes=int(data.get("alloc_bytes", 0)),
                peak_bytes=int(data.get("peak_bytes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfError(f"malformed span-stat entry: {exc}") from exc


# ----------------------------------------------------------------------
# Collapsed-stack text (flamegraph.pl interchange)
# ----------------------------------------------------------------------
def collapse(samples: Iterable[StackSample]) -> str:
    """The collapsed-stack text of ``samples`` (deterministic, aggregated).

    One ``frame;frame;frame count`` line per distinct exported stack,
    duplicate stacks summed, lines sorted -- so identical sample sets
    always produce byte-identical output.
    """
    totals: dict[tuple[str, ...], int] = {}
    for sample in samples:
        stack = sample.stack()
        totals[stack] = totals.get(stack, 0) + sample.count
    lines = [f"{';'.join(stack)} {count}" for stack, count in sorted(totals.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> tuple[StackSample, ...]:
    """Parse collapsed-stack text back into aggregated samples.

    The inverse of :func:`collapse` up to span attribution: parsed
    samples carry the full exported stack as ``frames`` and an empty
    ``span_path`` (the text format does not distinguish span components
    from code frames), so ``collapse(parse_collapsed(text))`` is
    byte-identical to a canonical ``text``.
    """
    totals: dict[tuple[str, ...], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text:
            raise ProfError(f"collapsed line {lineno} has no stack: {line!r}")
        try:
            count = int(count_text)
        except ValueError as exc:
            raise ProfError(
                f"collapsed line {lineno} has a non-integer count: {line!r}"
            ) from exc
        if count < 1:
            raise ProfError(f"collapsed line {lineno} has a non-positive count: {line!r}")
        frames = tuple(stack_text.split(";"))
        if any(not frame for frame in frames):
            raise ProfError(f"collapsed line {lineno} has an empty frame: {line!r}")
        totals[frames] = totals.get(frames, 0) + count
    return tuple(
        StackSample(frames=frames, count=count) for frames, count in sorted(totals.items())
    )


# ----------------------------------------------------------------------
# The profile artifact
# ----------------------------------------------------------------------
@dataclass
class Profile:
    """Everything one profiled run captured, aggregated and orderable."""

    #: Sampling rate the stack sampler ran at.
    hz: float
    #: Wall-clock seconds between profiler start and stop.
    duration_seconds: float
    #: Aggregated call stacks, sorted by exported stack.
    samples: list[StackSample] = field(default_factory=list)
    #: Per-span-path attribution, sorted by path.
    spans: list[SpanStat] = field(default_factory=list)
    #: How the span memory figures were captured: ``"rss"`` (resident-set
    #: watermarks), ``"tracemalloc"`` (exact traced bytes) or ``"off"``.
    #: Figures from different modes are not comparable -- ``diff_runs``
    #: only compares span memory between profiles of the same mode.
    memory: str = "rss"

    # ------------------------------------------------------------------
    def sample_count(self) -> int:
        """Total captured stack samples across all aggregated stacks."""
        return sum(sample.count for sample in self.samples)

    def span(self, path: str) -> SpanStat:
        """One span path's stats (raises :class:`ProfError` when absent)."""
        for stat in self.spans:
            if stat.path == path:
                return stat
        raise ProfError(
            f"profile has no span path {path!r}; "
            f"available: {[stat.path for stat in self.spans]}"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The profile as a JSON-ready snapshot (round-trips)."""
        return {
            "format": PROFILE_FORMAT,
            "version": PROFILE_VERSION,
            "hz": self.hz,
            "duration_seconds": self.duration_seconds,
            "memory": self.memory,
            "sample_count": self.sample_count(),
            "samples": [sample.to_dict() for sample in self.samples],
            "spans": [stat.to_dict() for stat in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Profile":
        """Rebuild a profile from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise ProfError(f"a profile must be a mapping, got {type(data).__name__}")
        if data.get("format") != PROFILE_FORMAT:
            raise ProfError("not a repro-prof profile (missing format marker)")
        try:
            hz = float(data["hz"])
            duration = float(data["duration_seconds"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfError(f"malformed profile header: {exc}") from exc
        return cls(
            hz=hz,
            duration_seconds=duration,
            samples=[StackSample.from_dict(entry) for entry in data.get("samples", [])],
            spans=[SpanStat.from_dict(entry) for entry in data.get("spans", [])],
            memory=str(data.get("memory", "rss")),
        )

    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """flamegraph.pl-compatible collapsed-stack text (see :func:`collapse`)."""
        return collapse(self.samples)

    def speedscope(self, name: str = "repro profile") -> dict[str, Any]:
        """The profile as a speedscope ``sampled`` document.

        Aggregated stacks become weighted samples (weight = seconds the
        stack accounts for at the sampling rate), so the file opens
        directly in speedscope.app with correct proportions.
        """
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        sample_stacks: list[list[int]] = []
        weights: list[float] = []
        for sample in sorted(self.samples, key=lambda s: s.stack()):
            indices = []
            for label in sample.stack():
                if label not in frame_index:
                    frame_index[label] = len(frames)
                    frames.append({"name": label})
                indices.append(frame_index[label])
            sample_stacks.append(indices)
            weights.append(sample.count / self.hz if self.hz > 0 else 0.0)
        end_value = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": f"{PROFILE_FORMAT}@{PROFILE_VERSION}",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": end_value,
                    "samples": sample_stacks,
                    "weights": weights,
                }
            ],
        }

    # ------------------------------------------------------------------
    def top_spans(self, limit: int = 10) -> list[SpanStat]:
        """Span paths ordered by self samples (ties: path), truncated."""
        ordered = sorted(self.spans, key=lambda stat: (-stat.self_samples, stat.path))
        return ordered[: max(0, limit)]

    def top_functions(self, limit: int = 10) -> list[tuple[str, int, int]]:
        """``(frame, self_samples, total_samples)`` rows, hottest first.

        *Self* counts samples whose innermost frame this is; *total*
        counts every sample whose stack contains the frame anywhere
        (recursive frames count once per stack).
        """
        self_counts: dict[str, int] = {}
        total_counts: dict[str, int] = {}
        for sample in self.samples:
            leaf = sample.frames[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + sample.count
            for frame in set(sample.frames):
                total_counts[frame] = total_counts.get(frame, 0) + sample.count
        rows = [
            (frame, self_counts.get(frame, 0), total)
            for frame, total in total_counts.items()
        ]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows[: max(0, limit)]

    def render_report(self, *, limit: int = 10) -> str:
        """The top-spans / top-functions text report."""
        lines = [
            f"profile: {self.sample_count():,} samples over "
            f"{self.duration_seconds:.2f}s at {self.hz:g} Hz"
            + ("" if self.memory == "rss" else f" (memory: {self.memory})")
        ]
        spans = self.top_spans(limit)
        if spans:
            lines.append("")
            lines.append("top spans (self time):")
            lines.append(
                f"  {'path':<32} {'self':>8} {'total':>8} {'calls':>6} "
                f"{'alloc':>10} {'peak':>10}"
            )
            for stat in spans:
                lines.append(
                    f"  {stat.path:<32} {stat.self_seconds(self.hz):>7.2f}s "
                    f"{stat.total_samples / self.hz if self.hz else 0.0:>7.2f}s "
                    f"{stat.calls:>6} {_bytes(stat.alloc_bytes):>10} "
                    f"{_bytes(stat.peak_bytes):>10}"
                )
        functions = self.top_functions(limit)
        if functions:
            lines.append("")
            lines.append("top functions (self samples):")
            lines.append(f"  {'function':<56} {'self':>6} {'total':>6}")
            for frame, self_samples, total_samples in functions:
                lines.append(f"  {frame:<56} {self_samples:>6} {total_samples:>6}")
        if len(lines) == 1:
            lines.append("no samples captured (the run may have been too short)")
        return "\n".join(lines)


def _bytes(value: int) -> str:
    """Human-readable byte count (signed; net allocations can be negative)."""
    magnitude = float(abs(value))
    sign = "-" if value < 0 else ""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if magnitude < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{sign}{int(magnitude)}{unit}"
            return f"{sign}{magnitude:.1f}{unit}"
        magnitude /= 1024.0
    return f"{sign}{magnitude:.1f}GiB"  # pragma: no cover - unreachable


def merge_span_stats(
    sampler_self: Mapping[str, int],
    memory_allocated: Mapping[str, int],
    memory_peaks: Mapping[str, int],
    memory_calls: Mapping[str, int],
) -> list[SpanStat]:
    """Combine sampler and memory-tracker views into sorted span stats.

    ``total_samples`` of a path sums the self samples of the path and
    every descendant (``path/...``), so parent stages report cumulative
    time the way a flame graph does.  The unattributed path (``""``) is
    excluded -- those samples remain visible in the stack view.
    """
    paths = (set(sampler_self) | set(memory_allocated) | set(memory_calls)) - {""}
    stats = []
    for path in sorted(paths):
        prefix = path + PATH_SEPARATOR
        total = sum(
            count
            for sample_path, count in sampler_self.items()
            if sample_path == path or sample_path.startswith(prefix)
        )
        stats.append(
            SpanStat(
                path=path,
                self_samples=sampler_self.get(path, 0),
                total_samples=total,
                calls=memory_calls.get(path, 0),
                alloc_bytes=memory_allocated.get(path, 0),
                peak_bytes=memory_peaks.get(path, 0),
            )
        )
    return stats


__all__ = [
    "PATH_SEPARATOR",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "Profile",
    "SpanStat",
    "StackSample",
    "collapse",
    "frame_label",
    "merge_span_stats",
    "parse_collapsed",
]
