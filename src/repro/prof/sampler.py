"""The background-thread stack sampler.

A :class:`StackSampler` wakes at a fixed rate on its own daemon thread,
snapshots every interesting thread's Python stack via
``sys._current_frames()`` and aggregates the walks in place -- no
per-sample allocation beyond the first occurrence of a stack, no
tracing hooks in the profiled code, so the profiled workload runs at
full speed between ticks.

Interesting threads are (a) the thread that started the sampler (the
run's main thread) and (b) every thread currently inside a
``trace_span`` (read from
:meth:`~repro.obs.metrics.MetricsRegistry.active_span_paths`); each
captured stack is attributed to the span path its thread was under at
that instant, which is what correlates raw frames with pipeline stages.

The default rate is 97 Hz -- a prime frequency, so the sampler cannot
phase-lock with millisecond-periodic work and systematically hit (or
miss) the same code.
"""

from __future__ import annotations

import sys
import threading
import time
from types import FrameType
from typing import Callable

from repro.exceptions import ProfError
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.names import PROFILE_SAMPLES
from repro.prof.profile import PATH_SEPARATOR, frame_label

#: Default sampling rate (prime, see module docstring).
DEFAULT_HZ = 97.0

#: Stack frames kept per sample, innermost out; deeper stacks truncate
#: at the root end so the hot leaf is always preserved.
DEFAULT_MAX_DEPTH = 64


class StackSampler:
    """Sample thread stacks at a fixed rate and aggregate them.

    Lifecycle: construct, :meth:`start`, run the workload, :meth:`stop`;
    then read :attr:`counts` / :attr:`span_self_samples`.  A sampler is
    single-use.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        hz: float = DEFAULT_HZ,
        max_depth: int = DEFAULT_MAX_DEPTH,
        on_tick: Callable[[], None] | None = None,
    ) -> None:
        if hz <= 0:
            raise ProfError(f"sampling rate must be positive, got {hz} Hz")
        if hz > 1000:
            raise ProfError(f"sampling above 1000 Hz is self-defeating, got {hz} Hz")
        if max_depth < 1:
            raise ProfError(f"max stack depth must be >= 1, got {max_depth}")
        self._registry = registry
        self._interval = 1.0 / hz
        self._max_depth = max_depth
        #: Piggy-backed per-tick work (e.g. the memory tracker's peak
        #: poll) -- runs on the sampler thread after each stack capture.
        self._on_tick = on_tick
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._finished = False
        self._counter: Counter | None = None
        #: ``(span_path, frames) -> sample count`` aggregate.
        self.counts: dict[tuple[str, tuple[str, ...]], int] = {}
        #: ``span_path -> self sample count`` ("" = outside any span).
        self.span_self_samples: dict[str, int] = {}
        #: Total stacks captured.
        self.samples = 0
        #: Sampler ticks that fell behind schedule (overload signal).
        self.missed_ticks = 0
        self._targets: set[int] = set()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start sampling; the calling thread becomes a sampling target."""
        if self._thread is not None or self._finished:
            raise ProfError("stack sampler already started")
        self._targets.add(threading.get_ident())
        if self._registry.enabled:
            self._counter = self._registry.counter(
                PROFILE_SAMPLES, "Stack samples captured by the profiler."
            )
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread and seal the aggregates."""
        if self._thread is None:
            raise ProfError("stack sampler is not running")
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        self._finished = True

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        next_tick = time.perf_counter() + self._interval
        while not self._stop_event.is_set():
            self._sample_once(own_ident)
            if self._on_tick is not None:
                self._on_tick()
            delay = next_tick - time.perf_counter()
            if delay > 0:
                self._stop_event.wait(delay)
                next_tick += self._interval
            else:
                # Fell behind (a tick took longer than the interval):
                # resynchronise instead of bursting to catch up.
                self.missed_ticks += 1
                next_tick = time.perf_counter() + self._interval

    def _sample_once(self, own_ident: int) -> None:
        paths = self._registry.active_span_paths()
        targets = self._targets | set(paths)
        targets.discard(own_ident)
        if not targets:
            return
        frames = sys._current_frames()
        captured = 0
        try:
            for ident in targets:
                frame = frames.get(ident)
                if frame is None:
                    continue
                stack = self._walk(frame)
                if not stack:
                    continue
                span_path = PATH_SEPARATOR.join(paths.get(ident, ()))
                key = (span_path, stack)
                self.counts[key] = self.counts.get(key, 0) + 1
                self.span_self_samples[span_path] = (
                    self.span_self_samples.get(span_path, 0) + 1
                )
                captured += 1
        finally:
            del frames  # drop the frame references promptly
        self.samples += captured
        if captured and self._counter is not None:
            self._counter.inc(captured)

    def _walk(self, frame: FrameType | None) -> tuple[str, ...]:
        stack: list[str] = []
        depth = 0
        while frame is not None and depth < self._max_depth:
            code = frame.f_code
            module = frame.f_globals.get("__name__", "?")
            stack.append(frame_label(str(module), code.co_qualname))
            frame = frame.f_back
            depth += 1
        stack.reverse()
        return tuple(stack)


__all__ = ["DEFAULT_HZ", "DEFAULT_MAX_DEPTH", "StackSampler"]
