"""Per-span allocation and peak-memory capture.

A :class:`MemoryTracker` is a :class:`~repro.obs.spans.SpanHook`: it
reads a process memory counter at every span boundary and attributes
the deltas to span paths:

* **net growth** per path -- bytes at close minus at open, summed over
  activations (negative when a stage releases more than it retains);
* **peak bytes** per path -- the highest watermark observed inside any
  activation, propagated to parent spans so a parent's peak is at least
  every child's.

Two capture modes share that bookkeeping:

* **resident-set mode** (the default) -- the counter is the process's
  resident set size read from ``/proc/self/statm`` (one small read per
  boundary, plus one per sampler tick to keep peaks honest between
  boundaries).  Allocator-level churn that never grows the footprint is
  invisible, but the mode costs nothing measurable, which is what lets
  ``--profile`` default to memory capture.
* **precise mode** (``ProfileOptions(precise_memory=True)``, or
  automatic when ``tracemalloc`` is already tracing, e.g. under
  ``python -X tracemalloc``) -- the counter is
  ``tracemalloc.get_traced_memory()``, with ``tracemalloc.reset_peak()``
  at each boundary, so the figures are exact traced bytes.  Tracemalloc
  pays a per-allocation tax for the whole process (several times slower
  on allocation-heavy workloads), so precision is an explicit opt-in.
  Tracing starts with one captured frame per allocation
  (``tracemalloc.start(1)``): attribution comes from the span tree, not
  from allocation stacks.

In both modes the watermark is process-global, so with spans
concurrently open on several threads the per-span peaks are an upper
bound, not an exact per-thread figure.  On platforms without
``/proc/self/statm`` the tracker falls back to precise mode.
"""

from __future__ import annotations

import os
import threading
import tracemalloc

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.names import PROFILE_SPAN_ALLOC_BYTES, PROFILE_SPAN_PEAK_BYTES
from repro.obs.spans import Span
from repro.prof.profile import PATH_SEPARATOR

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _rss_bytes() -> int | None:
    """The process's resident set size, or ``None`` when unreadable."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


class _OpenSpanMemory:
    """Memory bookkeeping of one still-open span activation."""

    __slots__ = ("start_current", "running_peak")

    def __init__(self, current: int) -> None:
        self.start_current = current
        self.running_peak = current


class MemoryTracker:
    """Span hook attributing memory growth and peaks to span paths."""

    def __init__(self, registry: MetricsRegistry, *, precise: bool | None = None) -> None:
        self._registry = registry
        #: ``None`` resolves at :meth:`start`: precise iff tracemalloc is
        #: already tracing (or resident-set reads are unavailable).
        self._precise_requested = precise
        self.precise = False
        self._started_tracing = False
        self._lock = threading.Lock()
        self._stacks: dict[int, list[_OpenSpanMemory]] = {}
        self._alloc_counter: Counter | None = None
        self._peak_gauge: Gauge | None = None
        #: ``span_path -> net bytes`` across all activations.
        self.allocated: dict[str, int] = {}
        #: ``span_path -> peak bytes`` inside any activation.
        self.peaks: dict[str, int] = {}
        #: ``span_path -> activation count``.
        self.calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Resolve the capture mode and begin tracking."""
        if self._precise_requested is None:
            self.precise = tracemalloc.is_tracing() or _rss_bytes() is None
        else:
            self.precise = self._precise_requested or _rss_bytes() is None
        if self.precise and not tracemalloc.is_tracing():
            tracemalloc.start(1)
            self._started_tracing = True
        if self._registry.enabled:
            self._alloc_counter = self._registry.counter(
                PROFILE_SPAN_ALLOC_BYTES, "Net bytes allocated inside each span path."
            )
            self._peak_gauge = self._registry.gauge(
                PROFILE_SPAN_PEAK_BYTES, "Peak traced memory inside each span path."
            )

    def stop(self) -> None:
        """Stop tracemalloc if this tracker started it."""
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False

    # ------------------------------------------------------------------
    def _current(self) -> int:
        if self.precise:
            return tracemalloc.get_traced_memory()[0]
        return _rss_bytes() or 0

    def poll(self) -> None:
        """Refresh running peaks between boundaries (sampler-tick hook).

        In precise mode tracemalloc maintains its own watermark and this
        is a no-op; in resident-set mode each tick bumps the innermost
        open span of every thread, so a spike that rises and falls
        between two boundary reads is still attributed.
        """
        if self.precise:
            return
        current = self._current()
        with self._lock:
            for stack in self._stacks.values():
                if stack and current > stack[-1].running_peak:
                    stack[-1].running_peak = current

    # ------------------------------------------------------------------
    # SpanHook interface (called inline on the instrumented thread).
    def span_opened(self, path: tuple[str, ...]) -> None:
        current = self._current()
        with self._lock:
            stack = self._stacks.setdefault(threading.get_ident(), [])
            stack.append(_OpenSpanMemory(current))
        if self.precise:
            tracemalloc.reset_peak()

    def span_closed(self, span: Span, path: tuple[str, ...]) -> None:
        if self.precise:
            current, peak = tracemalloc.get_traced_memory()
        else:
            current, peak = self._current(), 0
        with self._lock:
            stack = self._stacks.get(threading.get_ident())
            if not stack:
                # The span opened before this hook attached; nothing to close.
                return
            record = stack.pop()
            self_peak = max(record.running_peak, peak, current)
            net = current - record.start_current
            key = PATH_SEPARATOR.join(path)
            self.allocated[key] = self.allocated.get(key, 0) + net
            if self_peak > self.peaks.get(key, 0):
                self.peaks[key] = self_peak
            self.calls[key] = self.calls.get(key, 0) + 1
            if stack:
                parent = stack[-1]
                if self_peak > parent.running_peak:
                    parent.running_peak = self_peak
        if self.precise:
            # Restart the watermark for whatever runs after this span.
            tracemalloc.reset_peak()
        if self._alloc_counter is not None and net > 0:
            self._alloc_counter.inc(net, span=key)
        if self._peak_gauge is not None:
            self._peak_gauge.set(self_peak, span=key)


__all__ = ["MemoryTracker"]
