"""Sampling profiler with per-stage resource attribution.

``repro.prof`` answers "where did this run spend its time and memory,
stage by stage" with two low-overhead capture backends correlated
against the live :func:`~repro.obs.spans.trace_span` tree:

* :mod:`repro.prof.sampler` -- a background-thread stack sampler
  (default 97 Hz) aggregating ``module:qualname`` stacks per span path;
* :mod:`repro.prof.memory` -- a span hook recording net memory growth
  and peaks per span path (cheap resident-set reads by default,
  tracemalloc-exact with ``precise_memory=True``);
* :mod:`repro.prof.profile` -- the deterministic data model: collapsed
  stacks (flamegraph.pl), speedscope JSON, top-spans / top-functions
  reports, and the JSON round-trip schema persisted by
  :mod:`repro.runstore`;
* :mod:`repro.prof.profiler` -- the facade gluing it together.

Typical use::

    from repro.obs import MetricsRegistry
    from repro.prof import profile_run
    from repro.runspec import execute

    registry = MetricsRegistry()
    with profile_run(registry) as profiler:
        execute(spec, registry=registry)
    print(profiler.profile.render_report())

or simply ``execute(spec, profile=True)`` / ``repro tables --profile``.
"""

from repro.prof.memory import MemoryTracker
from repro.prof.profile import (
    PATH_SEPARATOR,
    PROFILE_FORMAT,
    PROFILE_VERSION,
    Profile,
    SpanStat,
    StackSample,
    collapse,
    frame_label,
    merge_span_stats,
    parse_collapsed,
)
from repro.prof.profiler import ProfileOptions, Profiler, profile_run
from repro.prof.sampler import DEFAULT_HZ, DEFAULT_MAX_DEPTH, StackSampler

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_MAX_DEPTH",
    "MemoryTracker",
    "PATH_SEPARATOR",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "Profile",
    "ProfileOptions",
    "Profiler",
    "SpanStat",
    "StackSample",
    "StackSampler",
    "collapse",
    "frame_label",
    "merge_span_stats",
    "parse_collapsed",
    "profile_run",
]
