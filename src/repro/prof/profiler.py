"""The profiler facade: options, lifecycle, profile assembly.

:class:`Profiler` composes the two capture backends -- the
:class:`~repro.prof.sampler.StackSampler` (CPU, background thread) and
the :class:`~repro.prof.memory.MemoryTracker` (allocations, span hook)
-- over one live :class:`~repro.obs.metrics.MetricsRegistry`, whose span
tree is the correlation key for both.  Stopping the profiler seals the
aggregates into a :class:`~repro.prof.profile.Profile`.

Entry points, outermost first:

* ``execute(spec, profile=True)`` -- profile any workload (see
  :func:`repro.runspec.execute.execute`); the profile lands on
  ``RunResult.profile`` and, with a run store, in the ``profiles``
  table.
* :func:`profile_run` -- context-manager form for library code.
* :class:`Profiler` -- explicit start/stop control.

The ``profile=`` parameter accepts ``True`` (defaults), a
:class:`ProfileOptions`, or a mapping of option fields; ``None`` /
``False`` disable profiling entirely (the no-op path costs one ``is
None`` check).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Iterator, Mapping

from repro.exceptions import ProfError
from repro.obs.metrics import MetricsRegistry
from repro.prof.memory import MemoryTracker
from repro.prof.profile import Profile, StackSample, merge_span_stats
from repro.prof.sampler import DEFAULT_HZ, DEFAULT_MAX_DEPTH, StackSampler


@dataclass(frozen=True)
class ProfileOptions:
    """How to profile a run (all fields optional, validated on build)."""

    #: Stack-sampling rate; 0 < hz <= 1000 (default 97, a prime).
    hz: float = DEFAULT_HZ
    #: Capture per-span memory growth / peaks (resident-set reads at span
    #: boundaries and sampler ticks -- effectively free).
    memory: bool = True
    #: Use tracemalloc for exact per-span traced bytes instead of
    #: resident-set reads.  Precise, but taxes every allocation in the
    #: process (several times slower on allocation-heavy workloads);
    #: also implied when tracemalloc is already tracing.
    precise_memory: bool = False
    #: Stack frames kept per sample (deeper stacks truncate at the root).
    max_stack_depth: int = DEFAULT_MAX_DEPTH

    def __post_init__(self) -> None:
        if not 0 < self.hz <= 1000:
            raise ProfError(f"profile hz must be within (0, 1000], got {self.hz}")
        if self.max_stack_depth < 1:
            raise ProfError(
                f"profile max_stack_depth must be >= 1, got {self.max_stack_depth}"
            )

    @classmethod
    def coerce(cls, value: Any) -> "ProfileOptions | None":
        """Normalise the ``profile=`` parameter of :func:`execute`.

        ``None`` / ``False`` -> no profiling; ``True`` -> defaults; a
        :class:`ProfileOptions` passes through; a mapping builds one
        (unknown keys rejected).
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            known = {f.name for f in fields(cls)}
            unknown = sorted(set(value) - known)
            if unknown:
                raise ProfError(
                    f"unknown profile option(s) {unknown}; known: {sorted(known)}"
                )
            return cls(**value)
        raise ProfError(
            "profile must be True/False, None, ProfileOptions or a mapping, "
            f"got {type(value).__name__}"
        )


class Profiler:
    """Capture a profile of everything that runs between start and stop."""

    def __init__(
        self, registry: MetricsRegistry, options: ProfileOptions | None = None
    ) -> None:
        if not registry.enabled:
            raise ProfError(
                "profiling needs an enabled MetricsRegistry (the span tree is "
                "the attribution key); pass a real registry, not NULL_REGISTRY"
            )
        self.registry = registry
        self.options = options or ProfileOptions()
        self._sampler: StackSampler | None = None
        self._memory: MemoryTracker | None = None
        self._started_at: float | None = None
        #: The sealed result, set by :meth:`stop`.
        self.profile: Profile | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the sampler (and the memory tracker, unless disabled)."""
        if self._sampler is not None:
            raise ProfError("profiler already started")
        if self.profile is not None:
            raise ProfError("a Profiler is single-use; build a new one")
        if self.options.memory:
            self._memory = MemoryTracker(
                self.registry,
                precise=True if self.options.precise_memory else None,
            )
            self._memory.start()
            self.registry.add_span_hook(self._memory)
        self._sampler = StackSampler(
            self.registry,
            hz=self.options.hz,
            max_depth=self.options.max_stack_depth,
            on_tick=self._memory.poll if self._memory is not None else None,
        )
        self._started_at = time.perf_counter()
        self._sampler.start()

    def stop(self) -> Profile:
        """Stop capturing and seal the aggregates into a :class:`Profile`."""
        if self._sampler is None or self._started_at is None:
            raise ProfError("profiler is not running")
        duration = time.perf_counter() - self._started_at
        self._sampler.stop()
        if self._memory is not None:
            self.registry.remove_span_hook(self._memory)
            self._memory.stop()
        samples = [
            StackSample(frames=frames, count=count, span_path=span_path)
            for (span_path, frames), count in sorted(self._sampler.counts.items())
        ]
        memory = self._memory
        spans = merge_span_stats(
            self._sampler.span_self_samples,
            memory.allocated if memory is not None else {},
            memory.peaks if memory is not None else {},
            memory.calls if memory is not None else {},
        )
        if memory is None:
            memory_mode = "off"
        else:
            memory_mode = "tracemalloc" if memory.precise else "rss"
        self.profile = Profile(
            hz=self.options.hz,
            duration_seconds=duration,
            samples=samples,
            spans=spans,
            memory=memory_mode,
        )
        self._sampler = None
        self._memory = None
        self._started_at = None
        return self.profile

    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def profile_run(
    registry: MetricsRegistry, options: ProfileOptions | None = None
) -> Iterator[Profiler]:
    """Profile a block; read ``profiler.profile`` after the ``with``. ::

        registry = MetricsRegistry()
        with profile_run(registry) as profiler:
            execute(spec, registry=registry)
        print(profiler.profile.render_report())
    """
    profiler = Profiler(registry, options)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()


__all__ = ["ProfileOptions", "Profiler", "profile_run"]
