"""repro.mitigation -- closed-loop enforcement over live verdicts.

PR 1's streaming engine decides; this package *acts*.  It wraps the
:class:`~repro.stream.engine.StreamEngine` in an enforcement gateway
that applies a declarative policy -- allow, throttle, challenge, block
or tarpit, with per-visitor escalation ladders, cool-downs and a good-bot
allowlist -- to every adjudicated verdict, and couples the result back to
the traffic layer: stepped actors observe how the defense treated them
and adapt (rotate identities, back off, give up), while humans
occasionally fail a challenge and become collateral damage.

* :mod:`repro.mitigation.actions` -- the action vocabulary and decisions;
* :mod:`repro.mitigation.policy` -- declarative rules, escalation ladders,
  allowlists, cool-downs and the per-visitor policy engine;
* :mod:`repro.mitigation.gateway` -- the engine wrapper applying actions
  and recording the enforcement log alongside the verdict stream;
* :mod:`repro.mitigation.simulator` -- the closed-loop event simulator
  coupling stepped actors to the gateway;
* :mod:`repro.mitigation.metrics` -- the Table-5-style report
  (time-to-block, attacker cost/yield, savings, collateral damage);
* :mod:`repro.mitigation.scenarios` -- preset defense scenarios and the
  :func:`~repro.mitigation.scenarios.run_defense` entry point.

A pass-through policy turns the gateway into an exact wrapper of the
streaming engine (same alert sets, same adjudication), so the closed
loop is a strict superset of the PR-1 behaviour.

Quickstart::

    from repro.mitigation import run_defense, build_report, render_mitigation_report

    result = run_defense(total_requests=4000, adaptive=True)
    print(render_mitigation_report(build_report(result)))
"""

from repro.mitigation.actions import Action, EnforcementDecision, PolicyError, most_severe
from repro.mitigation.gateway import (
    EnforcementGateway,
    EnforcementOutcome,
    GatewayResult,
)
from repro.mitigation.log import EnforcementLog, EnforcementRecord
from repro.mitigation.metrics import (
    ActorOutcome,
    MitigationReport,
    build_report,
    render_comparison,
    render_mitigation_report,
)
from repro.mitigation.policy import (
    Allowlist,
    EscalationLadder,
    Policy,
    PolicyEngine,
    PolicyRule,
    get_policy,
    good_bot_allowlist,
    list_policies,
    pass_through_policy,
    standard_policy,
    strict_policy,
)
from repro.mitigation.scenarios import build_gateway, defense_population, run_defense
from repro.mitigation.simulator import ClosedLoopSimulator, SimulationResult

__all__ = [
    "Action",
    "ActorOutcome",
    "Allowlist",
    "ClosedLoopSimulator",
    "EnforcementDecision",
    "EnforcementGateway",
    "EnforcementLog",
    "EnforcementOutcome",
    "EnforcementRecord",
    "EscalationLadder",
    "GatewayResult",
    "MitigationReport",
    "Policy",
    "PolicyEngine",
    "PolicyError",
    "PolicyRule",
    "SimulationResult",
    "build_gateway",
    "build_report",
    "defense_population",
    "get_policy",
    "good_bot_allowlist",
    "list_policies",
    "most_severe",
    "pass_through_policy",
    "render_comparison",
    "render_mitigation_report",
    "run_defense",
    "standard_policy",
    "strict_policy",
]
