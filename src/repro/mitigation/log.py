"""The enforcement log.

Where the streaming engine's verdict stream answers "what did we
*think*?", the enforcement log answers "what did we *do*?".  One
:class:`EnforcementRecord` is appended per handled request; the
:class:`EnforcementLog` offers the aggregations the Table-5-style report
and the live CLI output are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Iterator

from repro.mitigation.actions import Action, is_served


@dataclass(frozen=True)
class EnforcementRecord:
    """What the gateway did with one request."""

    request_id: str
    timestamp: datetime
    client_ip: str
    visitor_key: str
    action: Action
    #: Name of the rule / mechanism behind the action.
    reason: str
    #: The adjudicated ensemble verdict the action was based on.
    alerted: bool
    delay_seconds: float = 0.0
    #: Challenge outcome (``None`` unless ``action`` is ``CHALLENGE``).
    challenge_passed: bool | None = None
    #: Size the response would have had (the bytes a denial saves).
    response_size: int = 0

    @property
    def served(self) -> bool:
        """True when the request was actually served to the client."""
        return is_served(self.action, self.challenge_passed)

    @property
    def denied(self) -> bool:
        """True when the request was rejected (including failed challenges)."""
        return not self.served


@dataclass
class EnforcementLog:
    """Append-only record of every enforcement decision of a run."""

    records: list[EnforcementRecord] = field(default_factory=list)

    def append(self, record: EnforcementRecord) -> None:
        """Append one enforcement record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EnforcementRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    def action_counts(self) -> dict[str, int]:
        """Requests per enforcement action (all actions present, even at 0)."""
        counts = {action.value: 0 for action in Action}
        for record in self.records:
            counts[record.action.value] += 1
        return counts

    def served_count(self) -> int:
        """Requests that were actually served."""
        return sum(1 for record in self.records if record.served)

    def denied_count(self) -> int:
        """Requests rejected outright or behind a failed challenge."""
        return sum(1 for record in self.records if record.denied)

    def challenge_counts(self) -> tuple[int, int]:
        """(passed, failed) challenge outcomes."""
        passed = sum(1 for r in self.records if r.challenge_passed is True)
        failed = sum(1 for r in self.records if r.challenge_passed is False)
        return passed, failed

    def bytes_saved(self) -> int:
        """Response bytes never served because the request was denied."""
        return sum(record.response_size for record in self.records if record.denied)

    def delay_imposed_seconds(self) -> float:
        """Total delay enforced on served-but-paced and tarpitted requests."""
        return sum(record.delay_seconds for record in self.records)

    # ------------------------------------------------------------------
    def by_visitor(self) -> dict[str, list[EnforcementRecord]]:
        """The log grouped by visitor key, order preserved."""
        grouped: dict[str, list[EnforcementRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.visitor_key, []).append(record)
        return grouped

    def first_denial_time(self) -> dict[str, datetime]:
        """Per visitor key: timestamp of the first denied request."""
        first: dict[str, datetime] = {}
        for record in self.records:
            if record.denied and record.visitor_key not in first:
                first[record.visitor_key] = record.timestamp
        return first

    def summary(self) -> dict[str, object]:
        """A JSON-friendly aggregate snapshot (used by the CLI)."""
        passed, failed = self.challenge_counts()
        return {
            "requests": len(self.records),
            "served": self.served_count(),
            "denied": self.denied_count(),
            "actions": self.action_counts(),
            "challenges_passed": passed,
            "challenges_failed": failed,
            "bytes_saved": self.bytes_saved(),
        }
