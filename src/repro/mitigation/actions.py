"""Enforcement actions and decisions.

The closed-loop deployment can do five things with a request, ordered by
severity:

``allow``
    Serve the request normally.
``throttle``
    Serve it, but delay the response to pace the client down.
``challenge``
    Interpose a challenge (CAPTCHA / JavaScript proof-of-browser); the
    request is served only if the client solves it.
``block``
    Reject the request outright (HTTP 403 at the edge).
``tarpit``
    Reject it slowly: hold the connection open before failing it, so the
    attacker's resources are consumed along with ours.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ReproError


class PolicyError(ReproError):
    """Raised for invalid enforcement-policy configurations."""


class Action(enum.Enum):
    """One enforcement action, ordered by severity."""

    ALLOW = "allow"
    THROTTLE = "throttle"
    CHALLENGE = "challenge"
    BLOCK = "block"
    TARPIT = "tarpit"

    @property
    def severity(self) -> int:
        """Position on the escalation scale (``allow`` = 0 ... ``tarpit`` = 4)."""
        return _SEVERITY[self]

    @property
    def denies(self) -> bool:
        """True when the request is rejected rather than served."""
        return self in (Action.BLOCK, Action.TARPIT)

    @classmethod
    def from_string(cls, name: str) -> "Action":
        """Parse an action name (raises :class:`PolicyError` when unknown)."""
        try:
            return cls(name)
        except ValueError as exc:
            valid = [action.value for action in cls]
            raise PolicyError(f"unknown action {name!r}; expected one of {valid}") from exc


_SEVERITY = {
    Action.ALLOW: 0,
    Action.THROTTLE: 1,
    Action.CHALLENGE: 2,
    Action.BLOCK: 3,
    Action.TARPIT: 4,
}


def most_severe(actions: "list[Action]") -> Action:
    """The most severe of several candidate actions (``allow`` when empty)."""
    if not actions:
        return Action.ALLOW
    return max(actions, key=lambda action: action.severity)


def is_served(action: Action, challenge_passed: bool | None) -> bool:
    """Whether a request handled with ``action`` was actually served.

    Denying actions never serve; a challenged request is served only when
    the challenge was solved; everything else is served (throttled
    requests are served after their delay).
    """
    if action.denies:
        return False
    if action is Action.CHALLENGE:
        return bool(challenge_passed)
    return True


@dataclass(frozen=True)
class EnforcementDecision:
    """What the policy engine decided for one request."""

    action: Action
    #: The per-visitor state key the decision was made under.
    visitor_key: str
    #: Name of the rule / mechanism that produced the action.
    reason: str
    #: Enforced delay in seconds (throttle pacing or tarpit stall).
    delay_seconds: float = 0.0
