"""Declarative enforcement policies and the engine that applies them.

A :class:`Policy` maps adjudicated stream verdicts to enforcement
actions.  It is built from four declarative parts:

* an :class:`Allowlist` of known good bots (verified crawler IP ranges
  and user-agent markers) that are never acted against,
* :class:`PolicyRule` entries that map the *shape* of a verdict (how many
  detectors voted, which ones) straight to an action,
* an :class:`EscalationLadder` that turns repeat offenses into
  progressively harsher actions (throttle -> challenge -> block),
* cool-downs: strikes decay after a quiet period, blocks expire, and a
  passed challenge buys the visitor a grace period without re-challenges.

The :class:`PolicyEngine` holds the per-visitor state (strikes,
escalation level, active blocks, challenge verification) and produces an
:class:`~repro.mitigation.actions.EnforcementDecision` per request.  It
never sees ground truth -- only verdicts and the request itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logs.record import LogRecord
from repro.mitigation.actions import Action, EnforcementDecision, PolicyError, most_severe
from repro.obs import names as metric_names
from repro.obs.metrics import resolve_registry
from repro.registry import Registry
from repro.stream.events import RequestVerdict

#: User-agent markers of bots the default allowlist trusts.
GOOD_BOT_AGENT_MARKERS = (
    "Googlebot",
    "bingbot",
    "YandexBot",
    "Baiduspider",
    "Pingdom",
    "UptimeRobot",
)

#: IP prefixes of the verified-crawler ranges in the synthetic IP space
#: (see :data:`repro.traffic.ipspace.CRAWLER_POOL`).
GOOD_BOT_IP_PREFIXES = ("192.168.66.", "192.168.77.")


@dataclass(frozen=True)
class Allowlist:
    """Visitors that are never challenged, throttled or blocked."""

    user_agent_markers: tuple[str, ...] = ()
    ip_prefixes: tuple[str, ...] = ()

    def permits(self, record: LogRecord) -> bool:
        """True when the request's client is on the allowlist."""
        if any(marker in record.user_agent for marker in self.user_agent_markers):
            return True
        return any(record.client_ip.startswith(prefix) for prefix in self.ip_prefixes)


def good_bot_allowlist() -> Allowlist:
    """The default allowlist: verified crawler ranges and agent markers."""
    return Allowlist(
        user_agent_markers=GOOD_BOT_AGENT_MARKERS,
        ip_prefixes=GOOD_BOT_IP_PREFIXES,
    )


@dataclass(frozen=True)
class PolicyRule:
    """Map the shape of an alerted verdict directly to an action."""

    name: str
    action: Action
    #: Detector votes the request needs before the rule applies.
    min_votes: int = 1
    #: When non-empty, at least one of these detectors must have voted.
    detectors: tuple[str, ...] = ()
    #: Strikes (alerted requests, including this one) the visitor needs.
    min_strikes: int = 1

    def __post_init__(self) -> None:
        if self.min_votes < 1:
            raise PolicyError(f"rule {self.name!r}: min_votes must be at least 1")
        if self.min_strikes < 1:
            raise PolicyError(f"rule {self.name!r}: min_strikes must be at least 1")

    def matches(self, verdict: RequestVerdict, strikes: int) -> bool:
        """True when the rule applies to this verdict and visitor history."""
        if strikes < self.min_strikes:
            return False
        if verdict.vote_count < self.min_votes:
            return False
        if self.detectors:
            return any(
                name in verdict.votes and verdict.votes[name].alerted for name in self.detectors
            )
        return True


@dataclass(frozen=True)
class EscalationLadder:
    """Repeat offenses climb a ladder of progressively harsher actions."""

    steps: tuple[Action, ...] = (Action.THROTTLE, Action.CHALLENGE, Action.BLOCK)
    #: Strikes spent on each rung before climbing to the next.
    strikes_per_step: int = 3

    def __post_init__(self) -> None:
        if not self.steps:
            raise PolicyError("an escalation ladder needs at least one step")
        if self.strikes_per_step < 1:
            raise PolicyError("strikes_per_step must be at least 1")

    def action_for(self, strikes: int) -> Action:
        """The rung reached after ``strikes`` alerted requests."""
        if strikes < 1:
            return Action.ALLOW
        rung = min((strikes - 1) // self.strikes_per_step, len(self.steps) - 1)
        return self.steps[rung]


@dataclass(frozen=True)
class Policy:
    """A complete declarative enforcement policy."""

    name: str
    rules: tuple[PolicyRule, ...] = ()
    ladder: EscalationLadder | None = None
    allowlist: Allowlist = field(default_factory=Allowlist)
    #: Quiet seconds after which a visitor's strikes are forgotten.
    cooldown_seconds: float = 1800.0
    #: How long a block (or tarpit) stays active.
    block_seconds: float = 600.0
    #: Enforced delays for the throttle and tarpit actions.
    throttle_delay_seconds: float = 2.0
    tarpit_delay_seconds: float = 8.0
    #: How long a passed challenge exempts the visitor from re-challenges.
    challenge_grace_seconds: float = 1800.0

    def __post_init__(self) -> None:
        if self.cooldown_seconds <= 0 or self.block_seconds <= 0:
            raise PolicyError("cooldown_seconds and block_seconds must be positive")

    @property
    def enforces(self) -> bool:
        """False for a pure pass-through policy (no rules, no ladder)."""
        return bool(self.rules) or self.ladder is not None


@dataclass
class VisitorState:
    """Mutable per-visitor enforcement state."""

    strikes: int = 0
    last_offense: float | None = None
    #: Expiry of an active block/tarpit (unix seconds; 0 = none).
    denied_until: float = 0.0
    denied_action: Action = Action.BLOCK
    #: Expiry of a passed-challenge grace period.
    verified_until: float = 0.0
    challenges_failed: int = 0


class PolicyEngine:
    """Apply a :class:`Policy` to a stream of adjudicated verdicts."""

    def __init__(self, policy: Policy, *, registry=None):
        self.policy = policy
        self._states: dict[str, VisitorState] = {}
        self._registry = resolve_registry(registry)
        self._cooldown_resets = self._registry.counter(
            metric_names.COOLDOWN_RESETS, "Visitor strike states decayed by cool-down."
        )
        self._blocks_expired = self._registry.counter(
            metric_names.BLOCKS_EXPIRED, "Expired blocks lifted by the policy engine."
        )

    # ------------------------------------------------------------------
    @staticmethod
    def visitor_key(record: LogRecord) -> str:
        """The per-visitor state key (the client address, as an edge sees it)."""
        return record.client_ip

    def state_of(self, visitor_key: str) -> VisitorState:
        """The visitor's current state (created on first use)."""
        state = self._states.get(visitor_key)
        if state is None:
            state = self._states[visitor_key] = VisitorState()
        return state

    # ------------------------------------------------------------------
    def decide(self, record: LogRecord, verdict: RequestVerdict) -> EnforcementDecision:
        """Decide the enforcement action for one adjudicated request."""
        key = self.visitor_key(record)
        policy = self.policy
        if not policy.enforces:
            return EnforcementDecision(Action.ALLOW, key, "pass-through")
        if policy.allowlist.permits(record):
            return EnforcementDecision(Action.ALLOW, key, "allowlist")

        now = record.timestamp.timestamp()
        state = self.state_of(key)
        # Strike decay: a long quiet period wipes the slate clean.
        if state.last_offense is not None and now - state.last_offense > policy.cooldown_seconds:
            state.strikes = 0
            state.last_offense = None
            self._cooldown_resets.inc()

        # An active block applies regardless of what the detectors say now.
        if now < state.denied_until:
            delay = (
                policy.tarpit_delay_seconds if state.denied_action is Action.TARPIT else 0.0
            )
            return EnforcementDecision(state.denied_action, key, "active-block", delay)
        if state.denied_until:
            # The block ran out before this request: lift it.
            state.denied_until = 0.0
            self._blocks_expired.inc()

        if not verdict.alerted:
            return EnforcementDecision(Action.ALLOW, key, "no-alert")

        state.strikes += 1
        state.last_offense = now
        candidates = [
            (rule.action, rule.name)
            for rule in policy.rules
            if rule.matches(verdict, state.strikes)
        ]
        if policy.ladder is not None:
            candidates.append((policy.ladder.action_for(state.strikes), "escalation-ladder"))
        action = most_severe([candidate for candidate, _ in candidates])
        reason = next((name for candidate, name in candidates if candidate is action), "no-rule")

        # A recently verified visitor is not re-challenged; pace them instead.
        if action is Action.CHALLENGE and now < state.verified_until:
            action, reason = Action.THROTTLE, "verified-grace"

        delay = 0.0
        if action is Action.THROTTLE:
            delay = policy.throttle_delay_seconds
        elif action.denies:
            state.denied_until = now + policy.block_seconds
            state.denied_action = action
            if action is Action.TARPIT:
                delay = policy.tarpit_delay_seconds
        return EnforcementDecision(action, key, reason, delay)

    # ------------------------------------------------------------------
    def record_challenge(self, visitor_key: str, passed: bool, now: float) -> None:
        """Fold a challenge outcome back into the visitor's state."""
        state = self.state_of(visitor_key)
        if passed:
            state.verified_until = now + self.policy.challenge_grace_seconds
            # Proving personhood buys back credibility, not a blank slate.
            state.strikes //= 2
        else:
            state.challenges_failed += 1
            state.denied_until = now + self.policy.block_seconds
            state.denied_action = Action.BLOCK

    def reset(self) -> None:
        """Forget all per-visitor state (start of a new stream)."""
        self._states.clear()

    @property
    def tracked_visitors(self) -> int:
        """Number of visitors with any enforcement state."""
        return len(self._states)


# ----------------------------------------------------------------------
# Preset policies
# ----------------------------------------------------------------------
def pass_through_policy() -> Policy:
    """Observe-only: every request is allowed (the PR-1 streaming behaviour)."""
    return Policy(name="pass-through")


def standard_policy() -> Policy:
    """The default closed-loop policy.

    Good bots are allowlisted; repeat offenders climb the
    throttle -> challenge -> block ladder; a confident multi-detector
    verdict short-circuits to a challenge, and a near-unanimous one to an
    immediate block.
    """
    return Policy(
        name="standard",
        rules=(
            PolicyRule(name="unanimous-block", action=Action.BLOCK, min_votes=3, min_strikes=2),
            PolicyRule(name="confident-challenge", action=Action.CHALLENGE, min_votes=2, min_strikes=2),
        ),
        ladder=EscalationLadder(
            steps=(Action.THROTTLE, Action.CHALLENGE, Action.BLOCK), strikes_per_step=3
        ),
        allowlist=good_bot_allowlist(),
        cooldown_seconds=1800.0,
        block_seconds=600.0,
    )


def strict_policy() -> Policy:
    """An aggressive variant: fast escalation, long blocks, tarpit at the top."""
    return Policy(
        name="strict",
        rules=(
            PolicyRule(name="multi-detector-block", action=Action.BLOCK, min_votes=2),
        ),
        ladder=EscalationLadder(
            steps=(Action.CHALLENGE, Action.BLOCK, Action.TARPIT), strikes_per_step=2
        ),
        allowlist=good_bot_allowlist(),
        cooldown_seconds=3600.0,
        block_seconds=1800.0,
    )


_POLICY_REGISTRY: Registry[Policy] = Registry("policy", PolicyError)


def register_policy(name: str, factory, *, overwrite: bool = False) -> None:
    """Register a policy factory so specs and the CLI can build it by name."""
    _POLICY_REGISTRY.register(name, factory, overwrite=overwrite)


def list_policies() -> list[str]:
    """Names of the registered policies."""
    return _POLICY_REGISTRY.names()


def get_policy(name: str, **kwargs) -> Policy:
    """Build a registered policy by name (keyword arguments are forwarded).

    Raises :class:`~repro.mitigation.actions.PolicyError` -- with a
    did-you-mean suggestion -- when the name is unknown.
    """
    return _POLICY_REGISTRY.create(name, **kwargs)


register_policy("pass-through", pass_through_policy)
register_policy("standard", standard_policy)
register_policy("strict", strict_policy)
