"""Mitigation metrics: the Table-5-style report.

The paper's tables measure *detection*; a closed-loop deployment is
measured by what enforcement bought and what it cost:

* **time to block** -- how quickly each malicious actor was first denied;
* **time to neutralize** -- how long each malicious actor kept getting
  *any* request served (adaptive attackers push this out by rotating
  identities, which is exactly the evasion the report must surface);
* **attacker cost / yield** -- requests the campaign spent vs. requests
  it actually landed, plus the identities it burned;
* **savings** -- requests and response bytes the backend never served;
* **collateral damage** -- benign requests denied, humans challenged and
  humans driven off the site.

:func:`build_report` computes all of this from a
:class:`~repro.mitigation.simulator.SimulationResult`;
:func:`render_mitigation_report` prints it in the repo's table style.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.reporting import render_table
from repro.mitigation.simulator import SimulationResult
from repro.traffic.labels import is_malicious_class


def _median(values: list[float]) -> float | None:
    return statistics.median(values) if values else None


@dataclass(frozen=True)
class ActorOutcome:
    """Per-actor enforcement accounting."""

    actor_id: str
    actor_class: str
    malicious: bool
    attempted: int
    served: int
    denied: int
    challenged: int
    challenges_failed: int
    #: Seconds from the actor's first request to its first denial.
    time_to_first_block: float | None
    #: Seconds from the actor's first request to its last *served* one.
    time_served: float


@dataclass(frozen=True)
class MitigationReport:
    """The aggregate Table-5-style report of one closed-loop run."""

    policy_name: str
    total_requests: int
    served_requests: int
    denied_requests: int
    action_counts: dict[str, int]
    challenges_passed: int
    challenges_failed: int
    bytes_saved: int
    #: Malicious traffic.
    attacker_attempted: int
    attacker_served: int
    attacker_denied: int
    attacker_actors: int
    attacker_actors_blocked: int
    attacker_identity_rotations: int
    attacker_gave_up: int
    median_time_to_first_block: float | None
    median_time_served: float | None
    #: Benign traffic (collateral damage).
    benign_attempted: int
    benign_denied: int
    humans_challenged: int
    humans_challenges_failed: int
    humans_total: int
    humans_denied_ever: int
    actor_outcomes: tuple[ActorOutcome, ...]

    # ------------------------------------------------------------------
    @property
    def attacker_yield(self) -> float:
        """Fraction of malicious requests that were actually served."""
        if self.attacker_attempted == 0:
            return 0.0
        return self.attacker_served / self.attacker_attempted

    @property
    def requests_saved(self) -> int:
        """Requests the backend never had to serve."""
        return self.denied_requests

    @property
    def false_block_rate(self) -> float:
        """Fraction of benign requests that were denied."""
        if self.benign_attempted == 0:
            return 0.0
        return self.benign_denied / self.benign_attempted

    @property
    def human_lockout_rate(self) -> float:
        """Fraction of human visitors that were ever denied a request."""
        if self.humans_total == 0:
            return 0.0
        return self.humans_denied_ever / self.humans_total


def build_report(result: SimulationResult, *, policy_name: str | None = None) -> MitigationReport:
    """Aggregate a simulation result into the mitigation report."""
    by_actor: dict[str, list] = {}
    for record in result.log:
        actor_id = result.actor_ids[record.request_id]
        by_actor.setdefault(actor_id, []).append(record)

    outcomes: list[ActorOutcome] = []
    for actor_id, records in by_actor.items():
        actor_class = result.actor_classes[records[0].request_id]
        malicious = is_malicious_class(actor_class)
        first_ts = records[0].timestamp
        served_ts = [r.timestamp for r in records if r.served]
        denied_ts = [r.timestamp for r in records if r.denied]
        outcomes.append(
            ActorOutcome(
                actor_id=actor_id,
                actor_class=actor_class,
                malicious=malicious,
                attempted=len(records),
                served=len(served_ts),
                denied=len(denied_ts),
                challenged=sum(1 for r in records if r.challenge_passed is not None),
                challenges_failed=sum(1 for r in records if r.challenge_passed is False),
                time_to_first_block=(
                    (denied_ts[0] - first_ts).total_seconds() if denied_ts else None
                ),
                time_served=(
                    (served_ts[-1] - first_ts).total_seconds() if served_ts else 0.0
                ),
            )
        )

    attackers = [outcome for outcome in outcomes if outcome.malicious]
    benign = [outcome for outcome in outcomes if not outcome.malicious]
    humans = [outcome for outcome in benign if outcome.actor_class == "human"]

    rotations = 0
    gave_up = 0
    for actor in result.population:
        rotations += getattr(actor, "rotations", 0)
        gave_up += 1 if getattr(actor, "gave_up", False) else 0

    passed, failed = result.log.challenge_counts()
    return MitigationReport(
        policy_name=policy_name or "",
        total_requests=len(result.log),
        served_requests=result.log.served_count(),
        denied_requests=result.log.denied_count(),
        action_counts=result.log.action_counts(),
        challenges_passed=passed,
        challenges_failed=failed,
        bytes_saved=result.log.bytes_saved(),
        attacker_attempted=sum(o.attempted for o in attackers),
        attacker_served=sum(o.served for o in attackers),
        attacker_denied=sum(o.denied for o in attackers),
        attacker_actors=len(attackers),
        attacker_actors_blocked=sum(1 for o in attackers if o.denied > 0),
        attacker_identity_rotations=rotations,
        attacker_gave_up=gave_up,
        median_time_to_first_block=_median(
            [o.time_to_first_block for o in attackers if o.time_to_first_block is not None]
        ),
        median_time_served=_median([o.time_served for o in attackers]),
        benign_attempted=sum(o.attempted for o in benign),
        benign_denied=sum(o.denied for o in benign),
        humans_challenged=sum(o.challenged for o in humans),
        humans_challenges_failed=sum(o.challenges_failed for o in humans),
        humans_total=len(humans),
        humans_denied_ever=sum(1 for o in humans if o.denied > 0),
        actor_outcomes=tuple(outcomes),
    )


def _duration(seconds: float | None) -> str:
    if seconds is None:
        return "never"
    if seconds < 90:
        return f"{seconds:.0f} s"
    if seconds < 5400:
        return f"{seconds / 60:.1f} min"
    return f"{seconds / 3600:.1f} h"


def render_mitigation_report(
    report: MitigationReport, *, title: str = "Table 5 - Closed-loop enforcement outcomes"
) -> str:
    """Render the report in the repo's plain-text table style."""
    heading = title if not report.policy_name else f"{title} [{report.policy_name}]"
    rows: list[tuple[str, object]] = [
        ("Requests attempted", report.total_requests),
        ("Requests served", report.served_requests),
        ("Requests saved (denied)", report.requests_saved),
        ("Response bytes saved", report.bytes_saved),
    ]
    for action, count in report.action_counts.items():
        rows.append((f"Action '{action}'", count))
    rows += [
        ("Challenges passed / failed", f"{report.challenges_passed} / {report.challenges_failed}"),
        ("Attacker requests attempted", report.attacker_attempted),
        ("Attacker requests served (yield)", f"{report.attacker_served} ({report.attacker_yield:.1%})"),
        ("Attacker actors blocked", f"{report.attacker_actors_blocked} of {report.attacker_actors}"),
        ("Attacker identity rotations", report.attacker_identity_rotations),
        ("Attacker nodes that gave up", report.attacker_gave_up),
        ("Median time to first block", _duration(report.median_time_to_first_block)),
        ("Median time attacker stayed served", _duration(report.median_time_served)),
        ("False-block rate (benign requests)", f"{report.false_block_rate:.2%}"),
        ("Challenges issued to humans / failed", f"{report.humans_challenged} / {report.humans_challenges_failed}"),
        ("Humans ever denied", f"{report.humans_denied_ever} of {report.humans_total} ({report.human_lockout_rate:.1%})"),
    ]
    return render_table(heading, rows, value_header="Value")


def render_comparison(naive: MitigationReport, adaptive: MitigationReport) -> str:
    """Contrast a scripted campaign with its adaptive variant."""
    rows: list[tuple[str, object]] = [
        (
            "Attacker yield (scripted -> adaptive)",
            f"{naive.attacker_yield:.1%} -> {adaptive.attacker_yield:.1%}",
        ),
        (
            "Median time attacker stayed served",
            f"{_duration(naive.median_time_served)} -> {_duration(adaptive.median_time_served)}",
        ),
        (
            "Requests saved",
            f"{naive.requests_saved:,} -> {adaptive.requests_saved:,}",
        ),
        (
            "Identity rotations burned",
            f"{naive.attacker_identity_rotations:,} -> {adaptive.attacker_identity_rotations:,}",
        ),
    ]
    return render_table("Adaptation: scripted vs adaptive campaign", rows, value_header="Change")
