"""The closed-loop simulator: attackers and defense in the same loop.

The batch generator writes a whole access log, then the detectors read
it.  The :class:`ClosedLoopSimulator` instead advances a population of
:class:`~repro.traffic.stepping.SteppedActor` objects one request at a
time through a single global event queue: the earliest pending request is
emitted, pushed through the :class:`~repro.mitigation.gateway.EnforcementGateway`,
and the resulting :class:`~repro.traffic.stepping.Feedback` is delivered
to the emitting actor *before* it schedules its next request.  Adaptive
attackers can therefore rotate identities, back off or give up in direct
response to the defense -- and humans can bounce off a challenge they
failed.

The run is fully deterministic given the seed (one child random
generator per actor, exactly like the batch
:class:`~repro.traffic.generator.TrafficGenerator`), and produces both a
labelled :class:`~repro.logs.dataset.Dataset` of every *attempted*
request and the gateway's enforcement log, so one simulation feeds the
Tables 1-4 analysis and the Table-5-style mitigation report alike.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.logs.dataset import Dataset, DatasetMetadata, GroundTruth
from repro.mitigation.gateway import EnforcementGateway, EnforcementOutcome, GatewayResult
from repro.mitigation.log import EnforcementLog
from repro.stream.engine import StreamResult
from repro.traffic.actors import TimeWindow
from repro.traffic.generator import _event_to_record
from repro.traffic.labels import actor_label
from repro.traffic.stepping import Feedback, SteppedActor, SteppedPopulation


@dataclass
class SimulationResult:
    """Everything one closed-loop run produced."""

    #: Every *attempted* request, labelled with ground truth (what the
    #: edge logged; denied requests are included, as an edge log would).
    dataset: Dataset
    #: The streaming engine's detection output over the attempted stream.
    stream_result: StreamResult
    #: The gateway's action-by-action account.
    log: EnforcementLog
    #: Per request id: the actor that sent it.
    actor_ids: dict[str, str]
    #: Per request id: the actor class that sent it.
    actor_classes: dict[str, str]
    #: The population that produced the traffic (post-run state intact,
    #: so adaptive-attacker cost counters can be read off the actors).
    population: SteppedPopulation
    window: TimeWindow

    @property
    def total_requests(self) -> int:
        """Total number of attempted requests."""
        return len(self.dataset)


def _outcome_feedback(outcome: EnforcementOutcome) -> Feedback:
    """Translate a gateway outcome into actor-visible feedback."""
    return Feedback(
        action=outcome.decision.action.value,
        served=outcome.served,
        delay_seconds=outcome.decision.delay_seconds,
        challenge_passed=outcome.challenge_passed,
    )


class ClosedLoopSimulator:
    """Couple a stepped population to an enforcement gateway."""

    def __init__(
        self,
        population: SteppedPopulation,
        window: TimeWindow,
        gateway: EnforcementGateway,
        *,
        seed: int = 2018,
    ) -> None:
        self.population = population
        self.window = window
        self.gateway = gateway
        self.seed = seed

    def run(self, *, dataset_name: str = "closed_loop") -> SimulationResult:
        """Run the simulation to completion."""
        master = random.Random(self.seed)
        rngs: dict[SteppedActor, random.Random] = {}
        # (timestamp, sequence, actor): the sequence breaks timestamp ties
        # deterministically, since actors are not orderable.
        queue: list[tuple[object, int, SteppedActor]] = []
        sequence = 0
        for actor in self.population:
            rngs[actor] = random.Random(master.randrange(2**63))
            actor.begin(self.window, rngs[actor])
            upcoming = actor.peek()
            if upcoming is not None:
                heapq.heappush(queue, (upcoming, sequence, actor))
                sequence += 1

        self.gateway.reset()
        records = []
        truth = GroundTruth()
        actor_ids: dict[str, str] = {}
        actor_classes: dict[str, str] = {}
        counter = 0
        while queue:
            _, _, actor = heapq.heappop(queue)
            rng = rngs[actor]
            event = actor.emit()
            record = _event_to_record(f"r{counter}", event)
            counter += 1
            outcome = self.gateway.handle(
                record, challenge_solver=lambda _record: actor.solve_challenge(rng)
            )
            actor.feedback(event, _outcome_feedback(outcome), rng)
            records.append(record)
            truth.set(record.request_id, actor_label(event.actor_class), event.actor_class)
            actor_ids[record.request_id] = event.actor_id
            actor_classes[record.request_id] = event.actor_class
            upcoming = actor.peek()
            if upcoming is not None and self.window.contains(upcoming):
                heapq.heappush(queue, (upcoming, sequence, actor))
                sequence += 1

        gateway_result: GatewayResult = self.gateway.finish()
        metadata = DatasetMetadata(
            name=dataset_name,
            description="closed-loop simulation (attempted requests, incl. denied)",
            source="repro.mitigation",
            seed=self.seed,
        )
        dataset = Dataset(records, ground_truth=truth, metadata=metadata)
        return SimulationResult(
            dataset=dataset,
            stream_result=gateway_result.stream_result,
            log=gateway_result.log,
            actor_ids=actor_ids,
            actor_classes=actor_classes,
            population=self.population,
            window=self.window,
        )
