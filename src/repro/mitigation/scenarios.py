"""Preset closed-loop defense scenarios.

The closed-loop counterpart of :mod:`repro.traffic.scenarios`: build a
stepped population (humans and good bots as responsive scripted actors,
the scraping campaign either scripted or adaptive), couple it to an
enforcement gateway and run the simulation.  :func:`run_defense` is the
one-call entry point shared by the ``repro defend`` CLI subcommand, the
example, the benchmark and the tests.
"""

from __future__ import annotations

import random
from datetime import datetime, timezone

from repro.mitigation.gateway import EnforcementGateway
from repro.mitigation.policy import Policy, standard_policy
from repro.mitigation.simulator import ClosedLoopSimulator, SimulationResult
from repro.stream.adjudicator import WindowedAdjudicator
from repro.stream.detectors import default_online_detectors
from repro.stream.engine import StreamEngine
from repro.traffic.actors import TimeWindow, split_budget
from repro.traffic.adaptive import AdaptiveCampaign
from repro.traffic.botnet import BotnetCampaign
from repro.traffic.goodbots import MonitoringBot, SearchEngineCrawler
from repro.traffic.humans import HumanVisitor
from repro.traffic.ipspace import IPSpace
from repro.traffic.site import SiteModel
from repro.traffic.stepping import ResponsiveSteppedActor, ScriptedSteppedActor, SteppedPopulation
from repro.traffic.useragents import UserAgentCatalog

#: Challenge-solving skill of a human visitor (most pass, a few do not:
#: the residual failures are the defense's irreducible collateral).
HUMAN_CHALLENGE_SKILL = 0.92

#: Traffic composition of the defense demo (fractions of the budget).
DEFENSE_MIX = {
    "attacker": 0.45,
    "human": 0.47,
    "crawler": 0.06,
    "monitoring": 0.02,
}


def build_gateway(
    policy: Policy | None = None,
    *,
    k: int = 2,
    window_seconds: float = 600.0,
    registry=None,
) -> EnforcementGateway:
    """A gateway over the default online detectors with k-out-of-4 voting."""
    detectors = default_online_detectors()
    engine = StreamEngine(
        detectors,
        adjudicator=WindowedAdjudicator(
            [detector.name for detector in detectors], k=k, window_seconds=window_seconds
        ),
        registry=registry,
    )
    return EnforcementGateway(
        engine, policy if policy is not None else standard_policy(), registry=registry
    )


def defense_population(
    *,
    total_requests: int = 8_000,
    adaptive: bool = False,
    seed: int = 314,
    days: int = 1,
    identities_per_node: int = 8,
    site: SiteModel | None = None,
    ip_space: IPSpace | None = None,
    agents: UserAgentCatalog | None = None,
) -> tuple[SteppedPopulation, TimeWindow]:
    """Build the defense-demo population and its time window.

    The benign background (humans, a crawler, a monitoring probe) is
    identical in both variants; only the scraping campaign differs:
    ``adaptive=False`` wraps the classic scripted aggressive botnet,
    ``adaptive=True`` fields the same budget as feedback-driven
    :class:`~repro.traffic.adaptive.AdaptiveScraperNode` actors.
    """
    site = site or SiteModel()
    ip_space = ip_space or IPSpace()
    agents = agents or UserAgentCatalog()
    rng = random.Random(seed)
    window = TimeWindow(
        start=datetime(2018, 3, 14, 0, 0, 0, tzinfo=timezone.utc), days=days
    )
    population = SteppedPopulation()

    attacker_budget = int(round(total_requests * DEFENSE_MIX["attacker"]))
    nodes = max(3, round(attacker_budget / 2_500))
    if adaptive:
        campaign = AdaptiveCampaign(
            name="price-harvest-adaptive",
            total_requests=attacker_budget,
            nodes=nodes,
            identities_per_node=identities_per_node,
        )
        population.extend(campaign.build_actors(site, ip_space, agents, rng))
    else:
        campaign = BotnetCampaign(
            name="price-harvest",
            family="aggressive",
            total_requests=attacker_budget,
            nodes=nodes,
            scripted_agent_fraction=0.5,
        )
        population.extend(
            ScriptedSteppedActor(actor)
            for actor in campaign.build_actors(site, ip_space, agents, rng)
        )

    human_budget = int(round(total_requests * DEFENSE_MIX["human"]))
    visitors = max(5, round(human_budget / 40))
    for index, budget in enumerate(split_budget(human_budget, visitors, rng, jitter=0.5)):
        pool = ip_space.mobile if rng.random() < 0.25 else ip_space.residential
        population.add(
            ResponsiveSteppedActor(
                HumanVisitor(
                    f"human-{index}",
                    site,
                    client_ip=pool.random_address(rng),
                    user_agent=agents.random_browser(rng),
                    request_budget=budget,
                    power_user=rng.random() < 0.05,
                ),
                challenge_skill=HUMAN_CHALLENGE_SKILL,
                abandon_when_denied=True,
            )
        )

    crawler_budget = int(round(total_requests * DEFENSE_MIX["crawler"]))
    if crawler_budget > 0:
        population.add(
            ResponsiveSteppedActor(
                SearchEngineCrawler(
                    "crawler-0",
                    site,
                    client_ip=ip_space.crawler.random_address(rng),
                    user_agent=agents.random_crawler(rng),
                    request_budget=crawler_budget,
                ),
                challenge_skill=0.0,  # crawlers cannot solve challenges
                abandon_when_denied=False,
            )
        )

    monitoring_budget = int(round(total_requests * DEFENSE_MIX["monitoring"]))
    if monitoring_budget > 0:
        total_minutes = window.days * 24 * 60
        population.add(
            ResponsiveSteppedActor(
                MonitoringBot(
                    "monitor-0",
                    site,
                    client_ip=ip_space.crawler.random_address(rng),
                    user_agent=agents.random_crawler(rng),
                    interval_minutes=max(5, round(total_minutes / max(monitoring_budget, 1))),
                ),
                challenge_skill=0.0,
                abandon_when_denied=False,
            )
        )
    return population, window


def run_defense(
    *,
    total_requests: int = 8_000,
    adaptive: bool = False,
    policy: Policy | None = None,
    seed: int = 314,
    k: int = 2,
    identities_per_node: int = 8,
    window_seconds: float = 600.0,
    registry=None,
) -> SimulationResult:
    """Build the demo population and gateway, run the closed loop."""
    population, window = defense_population(
        total_requests=total_requests,
        adaptive=adaptive,
        seed=seed,
        identities_per_node=identities_per_node,
    )
    gateway = build_gateway(policy, k=k, window_seconds=window_seconds, registry=registry)
    simulator = ClosedLoopSimulator(population, window, gateway, seed=seed)
    name = "defense_adaptive" if adaptive else "defense_scripted"
    return simulator.run(dataset_name=name)
