"""The enforcement gateway: detection wired to action.

:class:`EnforcementGateway` sits where a reverse proxy would: every
incoming request is fed to the wrapped
:class:`~repro.stream.engine.StreamEngine` (whose adjudicated verdict is
the detection signal), the :class:`~repro.mitigation.policy.PolicyEngine`
turns the verdict into an :class:`~repro.mitigation.actions.Action`, and
the outcome is appended to the :class:`~repro.mitigation.log.EnforcementLog`
alongside the verdict stream.

Denied requests are still *observed* by the detectors -- a blocked
request reaches the edge and is logged even though it is never served --
so the detection state stays exactly what a batch run over the same
access log would produce.  That is what makes the pass-through
equivalence guarantee possible: with a non-enforcing policy the gateway
is an exact wrapper around ``StreamEngine.run``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.exceptions import DetectorError
from repro.logs.record import LogRecord
from repro.mitigation.actions import Action, EnforcementDecision, is_served
from repro.mitigation.log import EnforcementLog, EnforcementRecord
from repro.mitigation.policy import Policy, PolicyEngine
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.stream.engine import StreamEngine, StreamResult
from repro.stream.events import RequestVerdict

#: Decides whether a challenged client solves the challenge.
ChallengeSolver = Callable[[LogRecord], bool]


@dataclass(frozen=True)
class EnforcementOutcome:
    """Everything the gateway produced for one request."""

    record: LogRecord
    verdict: RequestVerdict
    decision: EnforcementDecision
    challenge_passed: bool | None = None

    @property
    def served(self) -> bool:
        """True when the request was actually served."""
        return is_served(self.decision.action, self.challenge_passed)


@dataclass
class GatewayResult:
    """A finished gateway run: the verdict stream plus the enforcement log."""

    stream_result: StreamResult
    log: EnforcementLog

    def action_counts(self) -> dict[str, int]:
        """Requests per enforcement action."""
        return self.log.action_counts()


class EnforcementGateway:
    """Apply an enforcement policy to every request of a stream.

    Parameters
    ----------
    engine:
        The streaming detection engine producing per-request verdicts.
        The engine must not use a reorder buffer (``max_skew_seconds``
        must be 0): enforcement is a now-or-never decision, so the
        gateway requires its input in arrival order.
    policy:
        The declarative enforcement policy to apply.
    challenge_solver:
        Decides whether a challenged client solves the challenge.  The
        closed-loop simulator passes the emitting actor's solver; when
        ``None`` (e.g. replaying a log with no client in the loop),
        challenges go unanswered and count as failed -- which is exactly
        what happens to a scripted client that cannot execute JavaScript.
    """

    def __init__(
        self,
        engine: StreamEngine,
        policy: Policy,
        *,
        challenge_solver: ChallengeSolver | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if engine.max_skew_seconds != 0.0:
            raise DetectorError(
                "the enforcement gateway needs an engine without a reorder buffer "
                "(max_skew_seconds must be 0): actions cannot be applied retroactively"
            )
        self.engine = engine
        self.registry = resolve_registry(registry)
        self.policy_engine = PolicyEngine(policy, registry=self.registry)
        self.challenge_solver = challenge_solver
        self.log = EnforcementLog()
        self._instrumented = self.registry.enabled
        self._actions = self.registry.counter(
            metric_names.ENFORCEMENT_ACTIONS, "Gateway decisions by enforcement action."
        )
        self._escalations = self.registry.counter(
            metric_names.ESCALATIONS, "Decisions driven by the escalation ladder."
        )
        self._challenges = self.registry.counter(
            metric_names.CHALLENGES, "Challenges issued, by passed/failed outcome."
        )

    @property
    def policy(self) -> Policy:
        """The active enforcement policy."""
        return self.policy_engine.policy

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all engine, policy and log state for a fresh stream."""
        self.engine.reset()
        self.policy_engine.reset()
        self.log = EnforcementLog()

    def handle(
        self, record: LogRecord, *, challenge_solver: ChallengeSolver | None = None
    ) -> EnforcementOutcome:
        """Judge and act on one incoming request."""
        (verdict,) = self.engine.process(record)
        decision = self.policy_engine.decide(record, verdict)
        challenge_passed: bool | None = None
        if decision.action is Action.CHALLENGE:
            solver = challenge_solver or self.challenge_solver
            challenge_passed = bool(solver(record)) if solver is not None else False
            self.policy_engine.record_challenge(
                decision.visitor_key, challenge_passed, record.timestamp.timestamp()
            )
        if self._instrumented:
            self._actions.inc(action=decision.action.value)
            if decision.reason == "escalation-ladder":
                self._escalations.inc()
            if challenge_passed is not None:
                self._challenges.inc(outcome="passed" if challenge_passed else "failed")
        outcome = EnforcementOutcome(record, verdict, decision, challenge_passed)
        self.log.append(
            EnforcementRecord(
                request_id=record.request_id,
                timestamp=record.timestamp,
                client_ip=record.client_ip,
                visitor_key=decision.visitor_key,
                action=decision.action,
                reason=decision.reason,
                alerted=verdict.alerted,
                delay_seconds=decision.delay_seconds,
                challenge_passed=challenge_passed,
                response_size=record.response_size,
            )
        )
        return outcome

    def finish(self) -> GatewayResult:
        """Flush the engine and return the combined result."""
        return GatewayResult(stream_result=self.engine.finish(), log=self.log)

    def run(self, records: Iterable[LogRecord]) -> GatewayResult:
        """Reset, enforce over an entire record stream, and finish."""
        self.reset()
        for record in records:
            self.handle(record)
        return self.finish()
