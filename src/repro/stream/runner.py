"""Sharded multi-worker execution of the streaming engine.

Every stateful signal the engine computes is keyed by visitor (sessions,
rate windows, fingerprints), so the stream partitions cleanly by client
IP: records of one visitor always land on the same shard, each shard
runs an independent :class:`~repro.stream.engine.StreamEngine`, and the
per-shard results merge losslessly at the end (the anomaly port pools
its session features across shards before fitting, so even its global
contamination threshold matches an unsharded run).

Backends
--------
``"serial"``
    One engine per shard, fed inline on the caller's thread.  The
    baseline for correctness tests.
``"thread"``
    One worker thread per shard behind a *bounded* queue: when a shard
    falls behind, ``put`` blocks and the feeder slows down -- classic
    backpressure, so a bursty botnet cannot balloon memory.  Threads
    share the GIL, so this backend is about isolation and flow control,
    not CPU speedup.
``"process"``
    Fork one worker process per shard (near-linear speedup on multi-core
    hosts for this CPU-bound workload).  Records are partitioned before
    forking so the children inherit them copy-free; only the compact
    per-shard exports travel back.  Falls back to ``"thread"`` where
    ``fork`` is unavailable.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue
import threading
import zlib
from typing import Callable, Iterable, Sequence

from repro.core.adjudication import AdjudicationResult
from repro.exceptions import DetectorError
from repro.logs.record import LogRecord
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.stream.engine import StreamEngine, StreamResult
from repro.stream.events import EngineStats

logger = logging.getLogger(__name__)

BACKENDS = ("serial", "thread", "process")

#: Records handed to a shard queue per batch (thread backend).  Batching
#: amortises queue synchronisation without hurting latency measurably.
DEFAULT_BATCH_SIZE = 256


def shard_of(client_ip: str, shards: int) -> int:
    """The shard a visitor belongs to (stable across processes and runs).

    ``zlib.crc32`` rather than ``hash()`` because the latter is salted
    per process, which would scatter one visitor across shards between
    the parent and forked workers.
    """
    return zlib.crc32(client_ip.encode("utf-8")) % shards


# ----------------------------------------------------------------------
# Fork-based worker plumbing.  The partitions and factory are handed to
# the children through module globals set immediately before the fork,
# so nothing but the compact result exports is ever pickled.
# ----------------------------------------------------------------------
_FORK_STATE: tuple[list[list[LogRecord]], Callable[[], StreamEngine]] | None = None


def _run_fork_shard(index: int) -> dict:
    assert _FORK_STATE is not None
    partitions, factory = _FORK_STATE
    engine = factory()
    engine.reset()
    for record in partitions[index]:
        engine.process(record)
    return engine.finish_shard()


class ShardedStreamRunner:
    """Run a record stream through visitor-sharded engine workers.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building one :class:`StreamEngine`; called
        once per shard (plus once in the parent as the merge reference).
        Each call must return a fresh engine -- shards share no state.
    shards:
        Number of worker shards.
    backend:
        One of :data:`BACKENDS`.
    queue_size:
        Bound of each shard's inbound queue, in records (thread backend).
        When a worker lags, feeding blocks: backpressure instead of
        unbounded buffering.
    batch_size:
        Records per queue element (thread backend).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` owned by the
        *runner* (worker engines run unregistered; per-shard counts are
        bulk-added here at merge time, which is also why per-request
        latency histograms are only available on the single-engine path).
        The thread backend additionally samples each shard's queue depth
        and counts feeder blocks on a full queue (backpressure).
    """

    def __init__(
        self,
        engine_factory: Callable[[], StreamEngine],
        *,
        shards: int = 2,
        backend: str = "thread",
        queue_size: int = 8192,
        batch_size: int = DEFAULT_BATCH_SIZE,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if shards < 1:
            raise DetectorError("shards must be at least 1")
        if backend not in BACKENDS:
            raise DetectorError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if queue_size < 1 or batch_size < 1:
            raise DetectorError("queue_size and batch_size must be at least 1")
        self.engine_factory = engine_factory
        self.shards = shards
        self.backend = backend
        self.queue_size = queue_size
        self.batch_size = batch_size
        self.registry = resolve_registry(registry)

    # ------------------------------------------------------------------
    def run(self, records: Iterable[LogRecord]) -> StreamResult:
        """Consume the stream across all shards and merge the results."""
        backend = self.backend
        if backend == "process" and "fork" not in multiprocessing.get_all_start_methods():
            logger.warning(
                "process backend unavailable, falling back",
                extra={"requested": "process", "fallback": "thread"},
            )
            backend = "thread"
        if backend == "process":
            exports = self._run_process(records)
        elif backend == "thread":
            exports = self._run_thread(records)
        else:
            exports = self._run_serial(records)
        return self._merge(exports, concurrent=backend != "serial")

    # ------------------------------------------------------------------
    def _run_serial(self, records: Iterable[LogRecord]) -> list[dict]:
        engines = [self.engine_factory() for _ in range(self.shards)]
        for engine in engines:
            engine.reset()
        for record in records:
            engines[shard_of(record.client_ip, self.shards)].process(record)
        return [engine.finish_shard() for engine in engines]

    def _run_thread(self, records: Iterable[LogRecord]) -> list[dict]:
        max_batches = max(1, self.queue_size // self.batch_size)
        queues: list[queue.Queue] = [queue.Queue(maxsize=max_batches) for _ in range(self.shards)]
        exports: list[dict | None] = [None] * self.shards
        errors: list[BaseException | None] = [None] * self.shards

        def worker(index: int) -> None:
            sentinel_seen = False
            try:
                engine = self.engine_factory()
                engine.reset()
                while True:
                    batch = queues[index].get()
                    if batch is None:
                        sentinel_seen = True
                        exports[index] = engine.finish_shard()
                        return
                    for record in batch:
                        engine.process(record)
            except BaseException as exc:  # surfaced to the caller below
                errors[index] = exc
                # Keep draining until the sentinel: the feeder may be
                # blocked on this shard's bounded queue, and abandoning it
                # would deadlock the whole run.  (Skip once the sentinel
                # was consumed -- nothing more will ever arrive.)
                if not sentinel_seen:
                    while queues[index].get() is not None:
                        pass

        threads = [
            threading.Thread(target=worker, args=(index,), name=f"stream-shard-{index}", daemon=True)
            for index in range(self.shards)
        ]
        for thread in threads:
            thread.start()

        instrumented = self.registry.enabled
        depth_gauge = self.registry.gauge(
            metric_names.QUEUE_DEPTH, "Inbound queue depth per stream shard (batches)."
        )
        backpressure = self.registry.counter(
            metric_names.BACKPRESSURE_WAITS, "Feeder blocks on a full shard queue."
        )

        def feed(index: int, batch: list[LogRecord] | None) -> None:
            if instrumented:
                # full() is a racy hint, which is fine for a counter of
                # "times the feeder (probably) had to wait".
                if queues[index].full():
                    backpressure.inc(shard=str(index))
                queues[index].put(batch)
                depth_gauge.set(queues[index].qsize(), shard=str(index))
            else:
                queues[index].put(batch)

        pending: list[list[LogRecord]] = [[] for _ in range(self.shards)]
        for record in records:
            index = shard_of(record.client_ip, self.shards)
            pending[index].append(record)
            if len(pending[index]) >= self.batch_size:
                feed(index, pending[index])
                pending[index] = []
        for index in range(self.shards):
            if pending[index]:
                feed(index, pending[index])
            feed(index, None)
        for thread in threads:
            thread.join()

        for error in errors:
            if error is not None:
                raise error
        return [export for export in exports if export is not None]

    def _run_process(self, records: Iterable[LogRecord]) -> list[dict]:
        global _FORK_STATE
        partitions: list[list[LogRecord]] = [[] for _ in range(self.shards)]
        for record in records:
            partitions[shard_of(record.client_ip, self.shards)].append(record)
        context = multiprocessing.get_context("fork")
        _FORK_STATE = (partitions, self.engine_factory)
        try:
            with context.Pool(processes=self.shards) as pool:
                return pool.map(_run_fork_shard, range(self.shards))
        finally:
            _FORK_STATE = None

    # ------------------------------------------------------------------
    def _merge(self, exports: Sequence[dict], *, concurrent: bool) -> StreamResult:
        if len(exports) != self.shards:
            raise DetectorError(f"expected {self.shards} shard exports, got {len(exports)}")
        reference = self.engine_factory()
        alert_sets = [
            detector.merge_states([export["states"][column] for export in exports])
            for column, detector in enumerate(reference.detectors)
        ]

        stats = EngineStats(online_alerts={d.name: 0 for d in reference.detectors})
        latencies: list[float] = []
        sessions_evicted = 0
        open_sessions = 0
        shard_records = self.registry.counter(
            metric_names.SHARD_RECORDS, "Records processed per stream shard."
        )
        for shard, export in enumerate(exports):
            shard_stats: EngineStats = export["stats"]
            shard_records.inc(shard_stats.records, shard=str(shard))
            sessions_evicted += export.get("sessions_evicted", 0)
            open_sessions += export.get("open_sessions", 0)
            stats.records += shard_stats.records
            stats.sessions_opened += shard_stats.sessions_opened
            stats.sessions_closed += shard_stats.sessions_closed
            stats.ensemble_alerts += shard_stats.ensemble_alerts
            # Concurrent shards overlap, so wall-clock throughput is bounded
            # by the busiest shard; serial shards run back to back and add up.
            if concurrent:
                stats.busy_seconds = max(stats.busy_seconds, shard_stats.busy_seconds)
            else:
                stats.busy_seconds += shard_stats.busy_seconds
            for name, count in shard_stats.online_alerts.items():
                stats.online_alerts[name] = stats.online_alerts.get(name, 0) + count
            latencies.extend(export["latencies"])

        adjudication = None
        if reference.adjudicator is not None and all(
            export["adjudicated_ids"] is not None for export in exports
        ):
            alerted: set[str] = set()
            for export in exports:
                alerted.update(export["adjudicated_ids"])
            adjudication = AdjudicationResult(
                scheme_name=reference.adjudicator.name,
                detector_names=reference.adjudicator.detector_names,
                alerted_ids=frozenset(alerted),
                total_requests=stats.records,
            )
        result = StreamResult(
            alert_sets=alert_sets,
            stats=stats,
            adjudication=adjudication,
            latencies=latencies,
        )
        if self.registry.enabled:
            reference.export_metrics(
                alert_sets=alert_sets,
                stats=stats,
                registry=self.registry,
                sessions_evicted=sessions_evicted,
                open_sessions=open_sessions,
            )
        return result
