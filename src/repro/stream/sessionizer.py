"""Incremental sessionization with timeout-based eviction.

The batch :class:`~repro.logs.sessionization.Sessionizer` sorts the whole
log and scans it once; a streaming deployment never sees "the whole log".
:class:`IncrementalSessionizer` maintains the open session of every
visitor key and closes sessions in two ways:

* **gap close** -- a new record from the same visitor arrives more than
  ``timeout`` after the session's last request (exactly the batch rule);
* **eviction** -- the stream's watermark (latest timestamp observed)
  moves more than ``timeout`` past a session's last request, so no
  in-order record can ever extend it again.  Eviction is what bounds the
  engine's *session* state on an infinite stream (the final alert sets
  the detectors accumulate still grow with the number of alerts; see
  :mod:`repro.stream.detectors` for the knobs that bound those).

Fed the same records in timestamp order, the incremental sessionizer
produces exactly the partition (and the same ``s<n>`` session ids) as the
batch sessionizer -- the property the batch-equivalence bridge relies on.
Mildly out-of-order records (timestamps earlier than the visitor's
current session end, e.g. from multi-worker log shipping) are inserted in
timestamp order within the open session, so the session's derived metrics
stay correct.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from datetime import datetime, timedelta

from repro.logs.record import LogRecord
from repro.logs.sessionization import DEFAULT_TIMEOUT, Session


@dataclass
class SessionUpdate:
    """What one observed record did to the session state."""

    #: The live session the record was appended to.
    session: Session
    #: True when the record opened a new session.
    opened: bool
    #: Sessions closed by this record (its visitor's previous session
    #: when the inactivity gap was exceeded, plus any evicted sessions).
    closed: list[Session] = field(default_factory=list)


class IncrementalSessionizer:
    """Maintain per-visitor open sessions over a live record stream.

    Parameters
    ----------
    timeout:
        Maximum inactivity gap within one session (the batch default of
        30 minutes).
    eviction_interval:
        Idle sessions are searched for (and evicted) every this many
        observed records.  Eviction timing never changes which session a
        record belongs to -- once a visitor's gap exceeds the timeout the
        next record starts a new session regardless -- it only bounds how
        long finished sessions linger in memory.
    """

    def __init__(
        self,
        timeout: timedelta = DEFAULT_TIMEOUT,
        *,
        eviction_interval: int = 256,
    ) -> None:
        if timeout.total_seconds() <= 0:
            raise ValueError("session timeout must be positive")
        if eviction_interval < 1:
            raise ValueError("eviction_interval must be at least 1")
        self.timeout = timeout
        self.eviction_interval = eviction_interval
        self._open: dict[tuple[str, str], Session] = {}
        self._counter = 0
        self._observed = 0
        self._watermark: datetime | None = None
        #: Total sessions closed by idle eviction (vs. gap close); read
        #: by the stream engine's telemetry export.
        self.sessions_evicted = 0

    # ------------------------------------------------------------------
    @property
    def open_sessions(self) -> int:
        """Number of currently open sessions."""
        return len(self._open)

    @property
    def sessions_started(self) -> int:
        """Total number of sessions opened so far."""
        return self._counter

    @property
    def watermark(self) -> datetime | None:
        """The latest timestamp observed (``None`` before any record)."""
        return self._watermark

    # ------------------------------------------------------------------
    def observe(self, record: LogRecord) -> SessionUpdate:
        """Attribute one record to its session and advance the watermark."""
        self._observed += 1
        if self._watermark is None or record.timestamp > self._watermark:
            self._watermark = record.timestamp

        closed: list[Session] = []
        key = record.actor_key()
        current = self._open.get(key)
        if current is not None and (record.timestamp - current.end) > self.timeout:
            closed.append(self._open.pop(key))
            current = None

        opened = current is None
        if current is None:
            current = Session(
                session_id=f"s{self._counter}",
                client_ip=record.client_ip,
                user_agent=record.user_agent,
            )
            self._counter += 1
            self._open[key] = current
            current.add(record)
        elif record.timestamp >= current.end:
            current.add(record)
        else:
            # Late arrival within the open session: keep records sorted so
            # rate/interarrival metrics match a batch run over sorted input.
            insort(current.records, record, key=lambda r: r.timestamp)

        if self._observed % self.eviction_interval == 0:
            closed.extend(self.evict_idle())
        return SessionUpdate(session=current, opened=opened, closed=closed)

    def evict_idle(self, now: datetime | None = None) -> list[Session]:
        """Close every open session idle for longer than the timeout.

        ``now`` defaults to the watermark; an in-order stream can never
        extend a session whose gap to the watermark exceeds the timeout,
        so eviction is safe (and identical to what the batch scan does).
        """
        now = now or self._watermark
        if now is None:
            return []
        evicted = [
            session for session in self._open.values() if (now - session.end) > self.timeout
        ]
        for session in evicted:
            del self._open[(session.client_ip, session.user_agent)]
        self.sessions_evicted += len(evicted)
        return evicted

    def flush(self) -> list[Session]:
        """Close and return all remaining open sessions (end of stream)."""
        remaining = list(self._open.values())
        self._open.clear()
        return remaining

    def reset(self) -> None:
        """Drop all state (start of a new stream)."""
        self._open.clear()
        self._counter = 0
        self._observed = 0
        self._watermark = None
        self.sessions_evicted = 0
