"""Record sources for the streaming engine.

The engine consumes any iterable of :class:`~repro.logs.record.LogRecord`
objects.  This module provides the three sources named by the roadmap:

* :func:`dataset_replay` -- replay an existing :class:`~repro.logs.dataset.Dataset`
  in arrival (timestamp) order, as the requests would have reached the
  server.  This is the source the batch-equivalence bridge uses.
* :func:`generator_feed` -- generate a :class:`~repro.traffic.scenarios.Scenario`
  and feed its records live, so synthetic botnet bursts can be judged as
  they "happen".
* :func:`tail_log_file` -- follow an Apache access log on disk (the
  classic ``tail -f`` deployment), parsing each appended line with
  :mod:`repro.logs.parser`.  ``.gz`` files are read transparently.
* :func:`trace_replay` -- replay a recorded :mod:`repro.trace` file
  block by block, so traces far larger than memory stream through the
  engine in bounded space.
"""

from __future__ import annotations

import time
from datetime import datetime
from typing import Iterator

from repro.logs.dataset import Dataset
from repro.logs.parser import open_log, parse_line
from repro.logs.record import LogRecord
from repro.exceptions import LogParseError


def dataset_replay(dataset: Dataset) -> Iterator[LogRecord]:
    """Yield the data set's records in timestamp order.

    The sort is stable, so records sharing a timestamp keep their log
    order -- exactly the order the batch :class:`~repro.logs.sessionization.Sessionizer`
    processes them in, which is what makes batch/stream equivalence exact.

    Data sets that are already timestamp-ordered (generated and
    trace-replayed data sets say so at construction; anything else is
    settled by one cached O(n) scan) are yielded as-is, without
    materialising a sorted copy.
    """
    if dataset.is_time_ordered:
        yield from dataset.records
    else:
        yield from sorted(dataset.records, key=lambda record: record.timestamp)


def trace_replay(
    path: str,
    *,
    start: datetime | None = None,
    end: datetime | None = None,
    registry=None,
) -> Iterator[LogRecord]:
    """Replay a recorded trace file in timestamp order, out-of-core.

    This is the trace-backed engine source: blocks are decoded one at a
    time, so the peak footprint is one block regardless of trace size.
    ``start``/``end`` prune whole blocks via the trace's footer index
    before anything is decompressed.  A trace whose footer says it is
    not time-ordered (e.g. imported from an oddly interleaved rotation
    set) is materialised and sorted first -- correctness over memory.
    """
    from repro.trace.store import TraceReader

    reader = TraceReader(path, registry=registry)
    if reader.info.time_ordered:
        yield from reader.iter_records(start=start, end=end)
    else:
        yield from sorted(
            reader.iter_records(start=start, end=end), key=lambda record: record.timestamp
        )


def generator_feed(scenario, *, seed: int | None = None) -> Iterator[LogRecord]:
    """Generate a scenario's traffic and stream it in arrival order.

    The import is local so that :mod:`repro.stream` does not pull the
    whole traffic simulator in for deployments that only tail real logs.
    """
    from repro.traffic.generator import generate_dataset

    yield from dataset_replay(generate_dataset(scenario, seed=seed))


def tail_log_file(
    path: str,
    *,
    follow: bool = False,
    poll_interval: float = 0.2,
    max_idle_polls: int | None = 25,
    skip_malformed: bool = True,
    request_id_prefix: str = "r",
) -> Iterator[LogRecord]:
    """Yield records from an Apache access log, optionally following it.

    Parameters
    ----------
    path:
        The access-log file to read (``.gz`` files are decompressed).
    follow:
        When true, keep polling for appended lines after reaching the end
        of the file (``tail -f``); otherwise stop at EOF.
    poll_interval:
        Seconds to sleep between polls while following.
    max_idle_polls:
        Stop following after this many consecutive empty polls (``None``
        follows forever).  A bounded default keeps tests and demos from
        hanging.
    skip_malformed:
        When true, lines that do not parse are silently skipped (real
        logs always contain a little garbage); otherwise
        :class:`~repro.exceptions.LogParseError` propagates.
    request_id_prefix:
        Prefix for the line-number-derived request ids.
    """
    if poll_interval <= 0:
        raise ValueError("poll_interval must be positive")
    line_number = 0
    emitted = 0
    idle_polls = 0
    pending = ""

    def parse_pending(line: str) -> LogRecord | None:
        nonlocal line_number, emitted
        line_number += 1
        if not line.strip():
            return None
        try:
            # Ids count *parsed* records (same numbering as
            # :func:`repro.logs.parser.parse_lines`), so tailing a
            # dirty log yields the same request ids as a batch parse.
            record = parse_line(
                line,
                request_id=f"{request_id_prefix}{emitted}",
                line_number=line_number,
            )
        except LogParseError:
            if not skip_malformed:
                raise
            return None
        emitted += 1
        return record

    with open_log(path) as handle:
        while True:
            chunk = handle.readline()
            if chunk:
                idle_polls = 0
                pending += chunk
                if follow and not pending.endswith("\n"):
                    # The writer has not finished this line yet; wait for
                    # the rest rather than parsing (and losing) a fragment.
                    continue
                line, pending = pending, ""
                record = parse_pending(line)
                if record is not None:
                    yield record
                continue
            if not follow:
                return
            idle_polls += 1
            if max_idle_polls is not None and idle_polls >= max_idle_polls:
                if pending:
                    record = parse_pending(pending)
                    if record is not None:
                        yield record
                return
            time.sleep(poll_interval)
