"""Event and verdict types of the streaming engine.

The streaming engine communicates in three currencies:

* :class:`OnlineVerdict` -- one online detector's immediate decision on
  one request (the streaming counterpart of an
  :class:`~repro.core.alerts.Alert`, but emitted *before* the visitor's
  session is complete, so it may later be refined at session close).
* :class:`RequestVerdict` -- the engine's combined decision for one
  request: every detector's vote plus the (optionally adjudicated)
  ensemble decision.  This is what a production deployment would act on
  (block, challenge, or let through).
* :class:`EngineStats` -- live counters a dashboard or the CLI can poll
  while the stream is running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping


@dataclass
class OnlineVerdict:
    """One online detector's decision for one request.

    This type intentionally matches the historical
    ``repro.detectors.streaming.StreamingVerdict`` layout so the legacy
    batch-facing adapters can re-export it unchanged.
    """

    request_id: str
    alerted: bool
    reason: str = ""
    score: float = 0.0


@dataclass(frozen=True)
class RequestVerdict:
    """The engine's combined online decision for one request.

    Parameters
    ----------
    request_id, timestamp:
        Identity of the judged request.
    alerted:
        The ensemble decision: the adjudicator's verdict when the engine
        has one, otherwise "any detector alerted".
    votes:
        Each detector's individual :class:`OnlineVerdict`, keyed by
        detector name.
    session_id:
        The live session the request was attributed to.
    """

    request_id: str
    timestamp: datetime
    alerted: bool
    votes: Mapping[str, OnlineVerdict]
    session_id: str = ""

    @property
    def vote_count(self) -> int:
        """Number of detectors alerting on this request."""
        return sum(1 for verdict in self.votes.values() if verdict.alerted)

    def reasons(self) -> tuple[str, ...]:
        """The non-empty reasons of the alerting detectors."""
        return tuple(
            verdict.reason for verdict in self.votes.values() if verdict.alerted and verdict.reason
        )


@dataclass
class EngineStats:
    """Live counters maintained by the engine while the stream runs."""

    records: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    #: Requests each detector has alerted on *online* (provisional votes).
    online_alerts: dict[str, int] = field(default_factory=dict)
    #: Requests the ensemble (adjudicated when configured) alerted on.
    ensemble_alerts: int = 0
    #: Wall-clock seconds spent inside the engine (processing only).
    busy_seconds: float = 0.0

    def records_per_second(self) -> float:
        """Observed processing throughput (0.0 before any work was done)."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.records / self.busy_seconds

    def as_dict(self) -> dict[str, object]:
        """A JSON-friendly snapshot (used by the CLI progress output)."""
        return {
            "records": self.records,
            "sessions_open": self.sessions_opened - self.sessions_closed,
            "sessions_closed": self.sessions_closed,
            "online_alerts": dict(self.online_alerts),
            "ensemble_alerts": self.ensemble_alerts,
        }
