"""Windowed adjudication of live detector votes.

The paper's Section-V schemes (1-out-of-2, 2-out-of-2, and the serial
confirm/escalate deployments modelled in
:mod:`repro.core.configurations`) are defined over a finished alert
matrix.  :class:`WindowedAdjudicator` applies the same schemes *online*:
every request's detector votes are combined into one ensemble decision
the moment the request is observed, and a sliding time window of recent
decisions is maintained for live alert-rate dashboards.

The serial modes also track the second tool's *workload* -- how many
requests actually needed its verdict -- which is the cost the paper's
serial configurations try to save.  (Online detectors still observe
every request to keep their session state correct; the workload counts
measure how many requests needed the second tool's decision.)

The accumulated decisions convert back into a
:class:`~repro.core.adjudication.AdjudicationResult` via
:meth:`WindowedAdjudicator.to_result`, so adjudicated streaming runs can
be evaluated with the same machinery as the batch schemes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Mapping, Sequence

from repro.core.adjudication import AdjudicationResult
from repro.exceptions import AdjudicationError
from repro.logs.record import LogRecord
from repro.stream.events import OnlineVerdict

#: Valid adjudication modes.
MODES = ("parallel", "serial-confirm", "serial-escalate")


@dataclass(frozen=True)
class AdjudicatedVerdict:
    """The ensemble decision for one request."""

    request_id: str
    alerted: bool
    votes: int
    detectors: int
    scheme: str


class WindowedAdjudicator:
    """Combine per-request detector votes into live ensemble decisions.

    Parameters
    ----------
    detector_names:
        The detectors whose votes are adjudicated, in priority order
        (the serial modes treat the first name as the filtering tool).
    k:
        Votes required to alert in ``parallel`` mode (``k=1`` is the
        paper's 1-out-of-2, ``k=len(detector_names)`` its 2-out-of-2).
    mode:
        ``"parallel"`` applies k-out-of-n voting.  ``"serial-confirm"``
        alerts when the first detector alerts *and* any later detector
        confirms; ``"serial-escalate"`` alerts when the first detector
        alerts *or*, failing that, any later detector does.
    window_seconds:
        Width of the trailing decision window kept for live statistics.
    """

    def __init__(
        self,
        detector_names: Sequence[str],
        *,
        k: int = 1,
        mode: str = "parallel",
        window_seconds: float = 300.0,
    ) -> None:
        if not detector_names:
            raise AdjudicationError("an adjudicator needs at least one detector name")
        if len(set(detector_names)) != len(detector_names):
            raise AdjudicationError(f"detector names must be unique, got {list(detector_names)}")
        if mode not in MODES:
            raise AdjudicationError(f"unknown adjudication mode {mode!r}; expected one of {MODES}")
        if mode.startswith("serial") and len(detector_names) < 2:
            raise AdjudicationError("serial adjudication needs at least two detectors")
        if not 1 <= k <= len(detector_names):
            raise AdjudicationError(f"k must be between 1 and {len(detector_names)}")
        if window_seconds <= 0:
            raise AdjudicationError("window_seconds must be positive")
        self.detector_names = tuple(detector_names)
        self.k = k
        self.mode = mode
        self.window_seconds = window_seconds
        if mode == "parallel":
            self.name = f"{k}-out-of-{len(detector_names)}"
        else:
            rest = "+".join(self.detector_names[1:])
            self.name = f"{mode}({self.detector_names[0]}->{rest})"
        self._alerted_ids: set[str] = set()
        self._processed = 0
        self._window: Deque[tuple[float, bool]] = deque()
        self._workload: dict[str, int] = {name: 0 for name in self.detector_names}

    # ------------------------------------------------------------------
    def observe(self, record: LogRecord, votes: Mapping[str, OnlineVerdict]) -> AdjudicatedVerdict:
        """Combine one request's votes into the ensemble decision."""
        missing = [name for name in self.detector_names if name not in votes]
        if missing:
            raise AdjudicationError(f"missing votes from {missing}")
        flags = [votes[name].alerted for name in self.detector_names]
        first, rest = flags[0], flags[1:]

        if self.mode == "parallel":
            alerted = sum(flags) >= self.k
            for name in self.detector_names:
                self._workload[name] += 1
        elif self.mode == "serial-confirm":
            # Later tools only need consulting when the first tool alerts.
            self._workload[self.detector_names[0]] += 1
            if first:
                for name in self.detector_names[1:]:
                    self._workload[name] += 1
            alerted = first and any(rest)
        else:  # serial-escalate
            self._workload[self.detector_names[0]] += 1
            if not first:
                for name in self.detector_names[1:]:
                    self._workload[name] += 1
            alerted = first or any(rest)

        self._processed += 1
        if alerted:
            self._alerted_ids.add(record.request_id)
        now = record.timestamp.timestamp()
        self._window.append((now, alerted))
        cutoff = now - self.window_seconds
        while self._window and self._window[0][0] < cutoff:
            self._window.popleft()
        return AdjudicatedVerdict(
            request_id=record.request_id,
            alerted=alerted,
            votes=sum(flags),
            detectors=len(flags),
            scheme=self.name,
        )

    # ------------------------------------------------------------------
    # Live statistics
    # ------------------------------------------------------------------
    def window_counts(self) -> tuple[int, int]:
        """(alerted, total) decisions inside the trailing window."""
        alerted = sum(1 for _, flag in self._window if flag)
        return alerted, len(self._window)

    def window_alert_rate(self) -> float:
        """Fraction of alerted decisions inside the trailing window."""
        alerted, total = self.window_counts()
        return alerted / total if total else 0.0

    @property
    def alerted_ids(self) -> frozenset[str]:
        """All request ids the ensemble has alerted on so far."""
        return frozenset(self._alerted_ids)

    @property
    def processed(self) -> int:
        """Number of requests adjudicated so far."""
        return self._processed

    def workload(self) -> dict[str, int]:
        """Requests that needed each tool's decision (serial-mode savings)."""
        return dict(self._workload)

    # ------------------------------------------------------------------
    def to_result(self, total_requests: int | None = None) -> AdjudicationResult:
        """The accumulated decisions as a batch-style adjudication result."""
        return AdjudicationResult(
            scheme_name=self.name,
            detector_names=self.detector_names,
            alerted_ids=frozenset(self._alerted_ids),
            total_requests=self._processed if total_requests is None else total_requests,
        )

    def reset(self) -> None:
        """Drop all state (start of a new stream)."""
        self._alerted_ids.clear()
        self._processed = 0
        self._window.clear()
        self._workload = {name: 0 for name in self.detector_names}
