"""The :class:`OnlineDetector` protocol and online ports of batch detectors.

An online detector lives inside a :class:`~repro.stream.engine.StreamEngine`
and sees the traffic one request at a time.  It produces two kinds of
output:

* an **immediate verdict** per request (:meth:`OnlineDetector.observe`),
  based on the visitor's session *so far* -- this is what a deployment
  blocks or challenges on;
* a **final alert set** (:meth:`OnlineDetector.final_alert_set`),
  accumulated from per-request alerts, session-close judgements
  (:meth:`OnlineDetector.on_session_close`) and an end-of-stream
  :meth:`OnlineDetector.finalize` step.

The final alert set is the bridge back to the paper's batch analysis: for
each port below it reproduces the corresponding batch detector's alert
set *exactly* when the stream replays the same records in timestamp
order, so streaming runs plug straight into the existing
:class:`~repro.core.alerts.AlertMatrix` machinery.

Ports
-----
* :class:`OnlineRequestRateLimiter` -- per-request sliding-window rate
  limiting with a penalty period (the production-style limiter the
  legacy ``repro.detectors.streaming`` module exposed).
* :class:`OnlineRateLimitDetector` -- port of
  :class:`~repro.detectors.ratelimit.RateLimitDetector`.
* :class:`OnlineFingerprintDetector` -- port of
  :class:`~repro.detectors.fingerprint.UserAgentFingerprintDetector`.
* :class:`OnlineInHouseDetector` -- port of
  :class:`~repro.detectors.inhouse.InHouseHeuristicDetector` (or any
  :class:`~repro.detectors.heuristic.HeuristicRuleDetector`).
* :class:`OnlineAnomalyDetector` -- incremental anomaly scorer backed by
  the :mod:`repro.anomaly` models, port of
  :class:`~repro.detectors.anomaly_detector.AnomalySessionDetector`.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Deque, Mapping, Sequence

import numpy as np

from repro.anomaly.base import AnomalyModel
from repro.anomaly.zscore import RobustZScoreModel
from repro.core.alerts import AlertSet
from repro.detectors.anomaly_detector import alert_anomalous_groups
from repro.detectors.features import extract_features
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.heuristic import HeuristicRuleDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.ratelimit import RateLimitDetector
from repro.exceptions import DetectorError
from repro.logs.record import LogRecord
from repro.logs.sessionization import Session
from repro.registry import Registry
from repro.stream.events import OnlineVerdict
from repro.traffic.useragents import is_scripted_agent


class OnlineDetector(abc.ABC):
    """Base class for detectors that judge a live request stream."""

    #: Unique, human-readable detector name (used as the alert-set name).
    name: str = "online-detector"

    def __init__(self, *, name: str | None = None) -> None:
        if name is not None:
            self.name = name
        self._alerts = AlertSet(self.name)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def observe(self, record: LogRecord, session: Session | None = None) -> OnlineVerdict:
        """Judge one request immediately, given its visitor's session so far."""

    def on_session_close(self, session: Session) -> None:
        """React to a finished session (gap-closed, evicted or flushed)."""

    def finalize(self) -> None:
        """End-of-stream hook (e.g. fit a global model over all sessions)."""

    # ------------------------------------------------------------------
    def final_alert_set(self) -> AlertSet:
        """The accumulated (batch-equivalent) alerts of this detector."""
        return self._alerts

    def reset(self) -> None:
        """Drop all state (start of a new stream)."""
        self._alerts = AlertSet(self.name)
        self._reset_state()

    def _reset_state(self) -> None:
        """Subclass hook invoked by :meth:`reset`."""

    # ------------------------------------------------------------------
    # Sharded-runner support: detector state must cross worker boundaries
    # as plain picklable data, and per-shard partial results must merge
    # into one global alert set.
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """A picklable summary of this detector's final output."""
        return {
            "alerts": [
                (alert.request_id, alert.score, alert.reasons)
                for alert in self._alerts.alerts()
            ]
        }

    def merge_states(self, states: Sequence[Mapping]) -> AlertSet:
        """Merge exported per-shard states into one alert set.

        The default implementation unions the per-shard alerts, which is
        correct for every detector whose verdicts depend only on
        per-visitor state (visitors never span shards).  Detectors with
        global state (e.g. the anomaly port) override this.
        """
        merged = AlertSet(self.name)
        for state in states:
            for request_id, score, reasons in state["alerts"]:
                merged.add(request_id, score=score, reasons=reasons)
        return merged

    def describe(self) -> str:
        """A one-line description (defaults to the class docstring's first line)."""
        doc = (self.__class__.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Request-level ports
# ----------------------------------------------------------------------
class _VisitorWindow:
    """Sliding-window state for one visitor key."""

    __slots__ = ("timestamps", "alerted_until")

    def __init__(self) -> None:
        self.timestamps: Deque[float] = deque()
        self.alerted_until = 0.0


class OnlineRequestRateLimiter(OnlineDetector):
    """Per-visitor sliding-window rate limiting with a penalty period.

    A request is flagged when its visitor has issued more than
    ``max_requests`` requests within the last ``window_seconds``.  Once a
    visitor trips the limit it stays flagged for ``penalty_seconds`` (the
    way production rate limiters and bot-mitigation challenges behave).
    Verdicts are final at observe time, so the alert set needs no
    session-close step.

    The accumulated alert set is what bridges back to the batch
    analysis, but it grows with every flagged request.  An indefinitely
    running deployment that only acts on the per-request verdicts should
    pass ``record_alerts=False``; run inside a
    :class:`~repro.stream.engine.StreamEngine` the per-visitor window
    state is then bounded too, because idle visitors are dropped when
    their session closes.
    """

    name = "streaming-rate"

    def __init__(
        self,
        *,
        name: str | None = None,
        max_requests: int = 30,
        window_seconds: float = 60.0,
        penalty_seconds: float = 300.0,
        flag_scripted_agents: bool = True,
        record_alerts: bool = True,
    ) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be at least 1")
        if window_seconds <= 0 or penalty_seconds < 0:
            raise ValueError("window_seconds must be positive and penalty_seconds non-negative")
        super().__init__(name=name)
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self.penalty_seconds = penalty_seconds
        self.flag_scripted_agents = flag_scripted_agents
        self.record_alerts = record_alerts
        self._state: dict[tuple[str, str], _VisitorWindow] = {}

    def _reset_state(self) -> None:
        self._state.clear()

    def observe(self, record: LogRecord, session: Session | None = None) -> OnlineVerdict:
        verdict = self._judge(record)
        if verdict.alerted and self.record_alerts:
            self._alerts.add(record.request_id, score=verdict.score, reasons=(verdict.reason,))
        return verdict

    def on_session_close(self, session: Session) -> None:
        # The visitor has been idle past the session timeout; drop its
        # window unless a longer penalty is still running, so per-visitor
        # state stays bounded on an infinite stream with IP churn.
        key = (session.client_ip, session.user_agent)
        window = self._state.get(key)
        if window is not None and session.end.timestamp() >= window.alerted_until:
            del self._state[key]

    def _judge(self, record: LogRecord) -> OnlineVerdict:
        if self.flag_scripted_agents and is_scripted_agent(record.user_agent):
            return OnlineVerdict(
                request_id=record.request_id,
                alerted=True,
                reason="scripted client user agent",
                score=1.0,
            )

        key = record.actor_key()
        window = self._state.get(key)
        if window is None:
            window = self._state[key] = _VisitorWindow()
        now = record.timestamp.timestamp()

        if now < window.alerted_until:
            return OnlineVerdict(
                request_id=record.request_id,
                alerted=True,
                reason="visitor in rate-limit penalty period",
                score=0.8,
            )

        window.timestamps.append(now)
        cutoff = now - self.window_seconds
        while window.timestamps and window.timestamps[0] < cutoff:
            window.timestamps.popleft()

        if len(window.timestamps) > self.max_requests:
            window.alerted_until = now + self.penalty_seconds
            rate = len(window.timestamps)
            return OnlineVerdict(
                request_id=record.request_id,
                alerted=True,
                reason=f"{rate} requests in {self.window_seconds:.0f}s exceeds {self.max_requests}",
                score=min(1.0, 0.5 + 0.5 * (rate - self.max_requests) / self.max_requests),
            )
        return OnlineVerdict(request_id=record.request_id, alerted=False)


class OnlineFingerprintDetector(OnlineDetector):
    """Online port of the user-agent / client fingerprint detector.

    Fingerprint verdicts depend only on the (user agent, client IP) pair,
    so the online decision is final immediately and identical to the
    batch :class:`~repro.detectors.fingerprint.UserAgentFingerprintDetector`.
    """

    name = "ua-fingerprint"

    def __init__(
        self,
        batch: UserAgentFingerprintDetector | None = None,
        *,
        name: str | None = None,
        **batch_kwargs,
    ) -> None:
        if batch is not None and batch_kwargs:
            raise ValueError("pass either a batch detector or its keyword arguments, not both")
        resolved_name = name or (batch.name if batch is not None else self.name)
        super().__init__(name=resolved_name)
        self.batch = batch or UserAgentFingerprintDetector(name=resolved_name, **batch_kwargs)
        self._cache: dict[tuple[str, str], tuple[float, str] | None] = {}

    def _reset_state(self) -> None:
        self._cache.clear()

    def observe(self, record: LogRecord, session: Session | None = None) -> OnlineVerdict:
        key = (record.user_agent, record.client_ip)
        if key not in self._cache:
            self._cache[key] = self.batch.judge_request(record.user_agent, record.client_ip)
        verdict = self._cache[key]
        if verdict is None:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        score, reason = verdict
        self._alerts.add(record.request_id, score=score, reasons=(reason,))
        return OnlineVerdict(request_id=record.request_id, alerted=True, reason=reason, score=score)

    def on_session_close(self, session: Session) -> None:
        # Fingerprint verdicts are pure functions of (user agent, IP); the
        # cache entry is cheap to recompute, so drop it with the session to
        # keep memory bounded under visitor churn.
        self._cache.pop((session.user_agent, session.client_ip), None)


# ----------------------------------------------------------------------
# Session-level ports
# ----------------------------------------------------------------------
class _SessionRateState:
    """Incremental per-session rate counters (peak window + averages)."""

    __slots__ = ("window", "peak")

    def __init__(self) -> None:
        self.window: Deque[float] = deque()
        self.peak = 1

    def update(self, timestamp: float, window_seconds: float) -> None:
        self.window.append(timestamp)
        cutoff = timestamp - window_seconds
        while self.window and self.window[0] < cutoff:
            self.window.popleft()
        if len(self.window) > self.peak:
            self.peak = len(self.window)


class OnlineRateLimitDetector(OnlineDetector):
    """Online port of the session rate-limit detector.

    Per request, the visitor's session *so far* is judged with the same
    average/peak-rate rule as the batch
    :class:`~repro.detectors.ratelimit.RateLimitDetector`, using O(1)
    incremental counters.  At session close the full session is judged
    once more with the batch rule and every request of a flagged session
    is alerted -- which makes the final alert set identical to the batch
    detector's.  Because the peak one-minute window can only grow as a
    session extends, an online alert is never retracted at close.
    """

    name = "rate-limit"

    def __init__(
        self,
        *,
        name: str | None = None,
        threshold_rpm: float = 60.0,
        min_requests: int = 10,
        use_peak_rate: bool = True,
    ) -> None:
        super().__init__(name=name)
        self.batch = RateLimitDetector(
            name=self.name,
            threshold_rpm=threshold_rpm,
            min_requests=min_requests,
            use_peak_rate=use_peak_rate,
        )
        self._state: dict[str, _SessionRateState] = {}

    def _reset_state(self) -> None:
        self._state.clear()

    def observe(self, record: LogRecord, session: Session | None = None) -> OnlineVerdict:
        if session is None:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        state = self._state.get(session.session_id)
        if state is None:
            state = self._state[session.session_id] = _SessionRateState()
        state.update(record.timestamp.timestamp(), 60.0)

        count = session.request_count
        if count < self.batch.min_requests:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        rate = session.requests_per_minute()
        if self.batch.use_peak_rate:
            rate = max(rate, float(state.peak))
        threshold = self.batch.threshold_rpm
        if rate <= threshold:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        score = min(1.0, 0.5 + 0.5 * (rate - threshold) / threshold)
        return OnlineVerdict(
            request_id=record.request_id,
            alerted=True,
            reason=f"session rate {rate:.0f} req/min exceeds {threshold:.0f}",
            score=score,
        )

    def on_session_close(self, session: Session) -> None:
        self._state.pop(session.session_id, None)
        verdict = self.batch.judge_session(session)
        if verdict is None:
            return
        score, reasons = verdict
        for request_id in session.request_ids():
            self._alerts.add(request_id, score=score, reasons=reasons)


class OnlineInHouseDetector(OnlineDetector):
    """Online port of the in-house heuristic rule engine.

    The authoritative judgement happens at session close, where the full
    session is run through the batch rule set (including the
    verified-crawler whitelist), so the final alert set matches
    :class:`~repro.detectors.inhouse.InHouseHeuristicDetector` exactly.
    Online, sessions are re-judged whenever their request count doubles
    (1, 2, 4, 8, ...), which keeps the per-request cost amortised O(1)
    while still tripping on rule violations shortly after they appear.
    """

    name = "inhouse"

    def __init__(
        self,
        batch: HeuristicRuleDetector | None = None,
        *,
        name: str | None = None,
    ) -> None:
        resolved_name = name or (batch.name if batch is not None else self.name)
        super().__init__(name=resolved_name)
        self.batch = batch or InHouseHeuristicDetector(name=resolved_name)
        #: session_id -> (request count at last evaluation, cached verdict)
        self._provisional: dict[str, tuple[int, tuple[float, Sequence[str]] | None]] = {}

    def _reset_state(self) -> None:
        self._provisional.clear()

    def observe(self, record: LogRecord, session: Session | None = None) -> OnlineVerdict:
        if session is None:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        count = session.request_count
        cached = self._provisional.get(session.session_id)
        if cached is None or count >= 2 * cached[0]:
            verdict = self.batch.judge_session(session)
            self._provisional[session.session_id] = (count, verdict)
        else:
            verdict = cached[1]
        if verdict is None:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        score, reasons = verdict
        return OnlineVerdict(
            request_id=record.request_id,
            alerted=True,
            reason="; ".join(reasons),
            score=score,
        )

    def on_session_close(self, session: Session) -> None:
        self._provisional.pop(session.session_id, None)
        verdict = self.batch.judge_session(session)
        if verdict is None:
            return
        score, reasons = verdict
        for request_id in session.request_ids():
            self._alerts.add(request_id, score=score, reasons=reasons)


class OnlineAnomalyDetector(OnlineDetector):
    """Incremental anomaly scorer backed by the :mod:`repro.anomaly` models.

    Closed sessions are folded into a feature store; every
    ``refit_interval`` closed sessions the model is refitted so live
    verdicts track the evolving traffic.  Online, a session is flagged
    when its features score above the current contamination threshold.

    At end of stream :meth:`finalize` refits on *all* sessions and
    re-derives the threshold exactly like the batch
    :class:`~repro.detectors.anomaly_detector.AnomalySessionDetector`,
    which makes the final alert set identical for order-independent
    models such as :class:`~repro.anomaly.zscore.RobustZScoreModel` (the
    default).  Models that subsample rows (e.g. the isolation forest)
    reproduce the batch results only approximately.
    """

    name = "anomaly"

    def __init__(
        self,
        model_factory: Callable[[], AnomalyModel] = RobustZScoreModel,
        *,
        name: str | None = None,
        contamination: float = 0.3,
        refit_interval: int = 64,
    ) -> None:
        if not 0.0 < contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        if refit_interval < 2:
            raise ValueError("refit_interval must be at least 2")
        super().__init__(name=name)
        self.model_factory = model_factory
        self.contamination = contamination
        self.refit_interval = refit_interval
        #: (session start ISO timestamp, session id, feature vector, request ids)
        self._closed: list[tuple[str, str, np.ndarray, tuple[str, ...]]] = []
        self._live_model: AnomalyModel | None = None
        self._live_threshold = float("inf")
        #: session_id -> (request count at last scoring, alerted, score)
        self._provisional: dict[str, tuple[int, bool, float]] = {}

    def _reset_state(self) -> None:
        self._closed.clear()
        self._live_model = None
        self._live_threshold = float("inf")
        self._provisional.clear()

    # ------------------------------------------------------------------
    def observe(self, record: LogRecord, session: Session | None = None) -> OnlineVerdict:
        if session is None or self._live_model is None:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        count = session.request_count
        cached = self._provisional.get(session.session_id)
        if cached is None or count >= 2 * cached[0]:
            vector = extract_features(session).vector().reshape(1, -1)
            score = float(self._live_model.score(vector)[0])
            alerted = score >= self._live_threshold
            self._provisional[session.session_id] = (count, alerted, score)
        else:
            _, alerted, score = cached
        if not alerted:
            return OnlineVerdict(request_id=record.request_id, alerted=False)
        return OnlineVerdict(
            request_id=record.request_id,
            alerted=True,
            reason=f"session anomaly score {score:.3f} above threshold",
            score=min(1.0, score / (self._live_threshold or 1.0)),
        )

    def on_session_close(self, session: Session) -> None:
        self._provisional.pop(session.session_id, None)
        self._closed.append(
            (
                session.start.isoformat(),
                session.session_id,
                extract_features(session).vector(),
                tuple(session.request_ids()),
            )
        )
        if len(self._closed) % self.refit_interval == 0:
            self._refit_live_model()

    def _refit_live_model(self) -> None:
        matrix = np.vstack([entry[2] for entry in self._closed])
        model = self.model_factory()
        scores = model.fit_score(matrix)
        self._live_model = model
        self._live_threshold = model.threshold_for_contamination(scores, self.contamination)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        self._alerts = self._score_closed_sessions(self._closed)

    def _score_closed_sessions(
        self, closed: Sequence[tuple[str, str, np.ndarray, tuple[str, ...]]]
    ) -> AlertSet:
        """The batch-identical global fit/threshold/alert computation."""
        alert_set = AlertSet(self.name)
        if len(closed) < 2:
            return alert_set
        # Sort by session start for reproducibility (the batch detector
        # scores sessions in start order; order only matters to models
        # that subsample rows).
        ordered = sorted(closed, key=lambda entry: (entry[0], entry[1]))
        matrix = np.vstack([entry[2] for entry in ordered])
        alert_anomalous_groups(
            alert_set,
            self.model_factory(),
            matrix,
            [entry[3] for entry in ordered],
            self.contamination,
        )
        return alert_set

    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        # Export the raw per-session features instead of per-shard alerts:
        # the contamination threshold is a quantile over *all* sessions, so
        # merging must pool features and refit globally.
        return {"alerts": [], "sessions": list(self._closed)}

    def merge_states(self, states: Sequence[Mapping]) -> AlertSet:
        pooled: list[tuple[str, str, np.ndarray, tuple[str, ...]]] = []
        for state in states:
            pooled.extend(state["sessions"])
        return self._score_closed_sessions(pooled)


def default_online_detectors(
    *,
    contamination: float = 0.3,
    model_factory: Callable[[], AnomalyModel] = RobustZScoreModel,
) -> list[OnlineDetector]:
    """The standard four-detector online ensemble (one port per family)."""
    return [
        OnlineRateLimitDetector(),
        OnlineFingerprintDetector(),
        OnlineInHouseDetector(),
        OnlineAnomalyDetector(model_factory, contamination=contamination),
    ]


# ----------------------------------------------------------------------
# Online-detector registry
# ----------------------------------------------------------------------
_ONLINE_REGISTRY: Registry[OnlineDetector] = Registry("online detector", DetectorError)


def register_online_detector(
    name: str, factory: Callable[..., OnlineDetector], *, overwrite: bool = False
) -> None:
    """Register an online-detector factory under ``name``."""
    _ONLINE_REGISTRY.register(name, factory, overwrite=overwrite)


def available_online_detectors() -> list[str]:
    """Names of all registered online detectors."""
    return _ONLINE_REGISTRY.names()


def create_online_detector(name: str, **kwargs) -> OnlineDetector:
    """Instantiate a registered online detector by name.

    Raises :class:`~repro.exceptions.DetectorError` -- with a
    did-you-mean suggestion -- when the name is unknown.
    """
    return _ONLINE_REGISTRY.create(name, **kwargs)


def _online_anomaly_factory(*, contamination: float = 0.3) -> OnlineDetector:
    return OnlineAnomalyDetector(RobustZScoreModel, contamination=contamination)


register_online_detector("rate-limit", OnlineRateLimitDetector)
register_online_detector("ua-fingerprint", OnlineFingerprintDetector)
register_online_detector("inhouse", OnlineInHouseDetector)
register_online_detector("anomaly", _online_anomaly_factory)
register_online_detector("request-rate", OnlineRequestRateLimiter)
