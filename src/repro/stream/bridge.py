"""Batch/stream equivalence bridge.

The streaming engine is only trustworthy if it reaches the *same
conclusions* as the paper's retrospective analysis.  This module pairs
each online detector port with its batch counterpart, replays a
:class:`~repro.logs.dataset.Dataset` through the engine, and verifies
that the final streaming alert sets match a batch
:class:`~repro.detectors.pipeline.DetectionPipeline` run request-for-request.

A matching report means streaming results can be fed straight into the
existing analysis (Tables 1-4, diversity metrics, adjudication schemes)
via :meth:`~repro.stream.engine.StreamResult.to_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.anomaly.zscore import RobustZScoreModel
from repro.detectors.anomaly_detector import AnomalySessionDetector
from repro.detectors.base import Detector
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import DetectionPipeline
from repro.detectors.ratelimit import RateLimitDetector
from repro.logs.dataset import Dataset
from repro.stream.detectors import (
    OnlineAnomalyDetector,
    OnlineDetector,
    OnlineFingerprintDetector,
    OnlineInHouseDetector,
    OnlineRateLimitDetector,
)
from repro.stream.engine import StreamEngine, StreamResult
from repro.stream.runner import ShardedStreamRunner
from repro.stream.sources import dataset_replay


def ported_detector_pairs(
    *,
    contamination: float = 0.3,
) -> list[tuple[Callable[[], OnlineDetector], Callable[[], Detector]]]:
    """Factory pairs (online port, batch counterpart) proven equivalent.

    The anomaly pair uses the robust z-score model: its column statistics
    are independent of row order, which is what makes the stream's
    incrementally-pooled fit reproduce the batch fit exactly.
    """
    return [
        (OnlineRateLimitDetector, RateLimitDetector),
        (OnlineFingerprintDetector, UserAgentFingerprintDetector),
        (OnlineInHouseDetector, InHouseHeuristicDetector),
        (
            lambda: OnlineAnomalyDetector(RobustZScoreModel, contamination=contamination),
            lambda: AnomalySessionDetector(RobustZScoreModel(), contamination=contamination),
        ),
    ]


def replay(
    dataset: Dataset,
    engine: StreamEngine | ShardedStreamRunner | None = None,
) -> StreamResult:
    """Replay a data set through an engine (default: the four ported detectors)."""
    if engine is None:
        from repro.stream.detectors import default_online_detectors

        engine = StreamEngine(default_online_detectors())
    return engine.run(dataset_replay(dataset))


@dataclass(frozen=True)
class DetectorEquivalence:
    """Batch-vs-stream comparison of one detector's alerted request ids."""

    detector_name: str
    batch_alerts: int
    stream_alerts: int
    #: Request ids alerted by the batch detector but not the stream.
    missing: frozenset[str]
    #: Request ids alerted by the stream but not the batch detector.
    extra: frozenset[str]

    @property
    def equivalent(self) -> bool:
        """True when the alerted id sets are identical."""
        return not self.missing and not self.extra


@dataclass(frozen=True)
class EquivalenceReport:
    """The full batch/stream comparison over one data set."""

    dataset_name: str
    total_requests: int
    entries: tuple[DetectorEquivalence, ...]

    @property
    def equivalent(self) -> bool:
        """True when every detector matched exactly."""
        return all(entry.equivalent for entry in self.entries)

    def summary(self) -> str:
        """A short human-readable report (used by tests and the CLI)."""
        lines = [
            f"batch/stream equivalence on {self.dataset_name!r} "
            f"({self.total_requests:,} requests):"
        ]
        for entry in self.entries:
            status = "OK" if entry.equivalent else (
                f"MISMATCH (missing {len(entry.missing)}, extra {len(entry.extra)})"
            )
            lines.append(
                f"  {entry.detector_name}: batch={entry.batch_alerts:,} "
                f"stream={entry.stream_alerts:,} -> {status}"
            )
        return "\n".join(lines)


def verify_equivalence(
    dataset: Dataset,
    pairs: Sequence[tuple[Callable[[], OnlineDetector], Callable[[], Detector]]] | None = None,
    *,
    shards: int = 1,
    backend: str = "serial",
) -> EquivalenceReport:
    """Run batch and stream over ``dataset`` and compare alert sets.

    Parameters
    ----------
    dataset:
        The data set to replay.
    pairs:
        (online factory, batch factory) pairs; defaults to
        :func:`ported_detector_pairs`.
    shards, backend:
        When ``shards > 1`` the stream side runs through a
        :class:`~repro.stream.runner.ShardedStreamRunner`, proving the
        sharded deployment equivalent too.
    """
    pairs = list(pairs) if pairs is not None else ported_detector_pairs()
    batch_detectors = [batch_factory() for _, batch_factory in pairs]
    batch_result = DetectionPipeline(batch_detectors).run(dataset)

    def engine_factory() -> StreamEngine:
        return StreamEngine([online_factory() for online_factory, _ in pairs])

    if shards > 1:
        runner = ShardedStreamRunner(engine_factory, shards=shards, backend=backend)
        stream_result = runner.run(dataset_replay(dataset))
    else:
        stream_result = engine_factory().run(dataset_replay(dataset))

    entries = []
    for batch_detector, stream_set in zip(batch_detectors, stream_result.alert_sets):
        batch_ids = batch_result.alert_set(batch_detector.name).request_ids()
        stream_ids = stream_set.request_ids()
        entries.append(
            DetectorEquivalence(
                detector_name=batch_detector.name,
                batch_alerts=len(batch_ids),
                stream_alerts=len(stream_ids),
                missing=frozenset(batch_ids - stream_ids),
                extra=frozenset(stream_ids - batch_ids),
            )
        )
    return EquivalenceReport(
        dataset_name=dataset.metadata.name,
        total_requests=len(dataset),
        entries=tuple(entries),
    )
