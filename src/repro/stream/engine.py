"""The event-driven streaming detection engine.

:class:`StreamEngine` consumes :class:`~repro.logs.record.LogRecord`
objects one at a time -- from a dataset replay, a live traffic-generator
feed or a tailed access log (see :mod:`repro.stream.sources`) -- and for
each record:

1. attributes it to its visitor session via the
   :class:`~repro.stream.sessionizer.IncrementalSessionizer` (closing any
   sessions whose inactivity timeout passed),
2. collects an immediate :class:`~repro.stream.events.OnlineVerdict`
   from every :class:`~repro.stream.detectors.OnlineDetector`,
3. combines the votes through the optional
   :class:`~repro.stream.adjudicator.WindowedAdjudicator` into the
   ensemble decision a deployment would block or challenge on.

Out-of-order arrival (common when several front-ends ship logs) is
absorbed by a bounded reorder buffer: with ``max_skew_seconds > 0``
records are released to the pipeline in timestamp order as long as they
arrive within the skew bound.

:meth:`StreamEngine.finish` flushes all remaining state and returns a
:class:`StreamResult` whose per-detector alert sets are, for the ported
detectors, identical to a batch
:class:`~repro.detectors.pipeline.DetectionPipeline` run over the same
records (see :mod:`repro.stream.bridge`).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from datetime import timedelta
from typing import Iterable, Sequence

from repro.core.adjudication import AdjudicationResult
from repro.core.alerts import AlertMatrix, AlertSet
from repro.exceptions import DetectorError
from repro.logs.record import LogRecord
from repro.logs.sessionization import DEFAULT_TIMEOUT, Session
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.stream.adjudicator import WindowedAdjudicator
from repro.stream.detectors import OnlineDetector
from repro.stream.events import EngineStats, OnlineVerdict, RequestVerdict
from repro.stream.sessionizer import IncrementalSessionizer


@dataclass
class StreamResult:
    """Everything a finished streaming run produced."""

    #: Final, batch-equivalent alert sets (one per detector).
    alert_sets: list[AlertSet]
    stats: EngineStats
    #: The adjudicated ensemble decisions (when an adjudicator was set).
    adjudication: AdjudicationResult | None = None
    #: Per-request decision latencies in seconds (when tracking was on).
    latencies: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    def alert_set(self, detector_name: str) -> AlertSet:
        """The final alert set of one detector."""
        for alert_set in self.alert_sets:
            if alert_set.detector_name == detector_name:
                return alert_set
        raise DetectorError(f"no alert set for detector {detector_name!r}")

    def alert_counts(self) -> dict[str, int]:
        """Alerted-request totals per detector (a Table-1-style summary)."""
        return {alert_set.detector_name: len(alert_set) for alert_set in self.alert_sets}

    def to_matrix(self, dataset, *, strict: bool = True) -> AlertMatrix:
        """The final alerts as a request x detector matrix over ``dataset``.

        This is the hand-off point to the paper's analysis: the matrix
        feeds Tables 1-4, the diversity metrics and every batch
        adjudication scheme.
        """
        return AlertMatrix.from_alert_sets(dataset, self.alert_sets, strict=strict)

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99/max of the per-request decision latency, in seconds."""
        if not self.latencies:
            return {}
        ordered = sorted(self.latencies)

        def at(quantile: float) -> float:
            index = min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
            return ordered[index]

        return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99), "max": ordered[-1]}


class StreamEngine:
    """Consume a record stream and produce online verdicts.

    Parameters
    ----------
    detectors:
        The online detectors to run (names must be unique).
    timeout:
        Session inactivity timeout (the batch default of 30 minutes).
    adjudicator:
        Optional :class:`~repro.stream.adjudicator.WindowedAdjudicator`;
        without one the ensemble decision is "any detector alerted".
    max_skew_seconds:
        Size of the reorder buffer.  ``0`` (the default) processes
        records exactly in arrival order; a positive value holds records
        back until the watermark passed them by the skew, releasing them
        in timestamp order.
    track_latency:
        Record the wall-clock processing time of every request (used by
        the latency benchmark; off by default to keep the hot path lean).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When set,
        every request feeds per-request (and per-detector) verdict
        latency histograms, and :meth:`finish` exports the engine's
        counters (records, sessions opened/closed/evicted, alerts) into
        the registry.  ``None`` keeps the hot path uninstrumented.
    """

    def __init__(
        self,
        detectors: Sequence[OnlineDetector],
        *,
        timeout: timedelta = DEFAULT_TIMEOUT,
        adjudicator: WindowedAdjudicator | None = None,
        max_skew_seconds: float = 0.0,
        track_latency: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not detectors:
            raise DetectorError("a stream engine needs at least one online detector")
        names = [detector.name for detector in detectors]
        if len(set(names)) != len(names):
            raise DetectorError(f"detector names must be unique, got {names}")
        if max_skew_seconds < 0:
            raise DetectorError("max_skew_seconds must be non-negative")
        self.detectors = list(detectors)
        self.adjudicator = adjudicator
        self.max_skew_seconds = max_skew_seconds
        self.track_latency = track_latency
        self.sessionizer = IncrementalSessionizer(timeout)
        self.stats = EngineStats(online_alerts={name: 0 for name in names})
        self._buffer: list[tuple[float, int, LogRecord]] = []
        self._sequence = 0
        self._latencies: list[float] = []
        self._finished = False
        self.registry = resolve_registry(registry)
        # Per-record instrumentation is gated on one cached bool and uses
        # cached instrument handles, so the disabled path stays lean.
        self._timed = self.registry.enabled
        self._verdict_hist = self.registry.histogram(
            metric_names.VERDICT_SECONDS, "Per-request ensemble decision latency."
        )
        self._detector_hist = self.registry.histogram(
            metric_names.DETECTOR_VERDICT_SECONDS,
            "Per-request detector decision latency.",
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all state so the engine can consume a fresh stream."""
        for detector in self.detectors:
            detector.reset()
        if self.adjudicator is not None:
            self.adjudicator.reset()
        self.sessionizer.reset()
        self.stats = EngineStats(online_alerts={d.name: 0 for d in self.detectors})
        self._buffer = []
        self._sequence = 0
        self._latencies = []
        self._finished = False

    # ------------------------------------------------------------------
    def process(self, record: LogRecord) -> list[RequestVerdict]:
        """Feed one record; return the verdicts it released.

        With no reorder buffer this is always exactly one verdict (for
        the record itself).  With ``max_skew_seconds > 0`` a record may
        release zero or more *older* buffered records instead.
        """
        if self._finished:
            raise DetectorError("engine already finished; call reset() to start a new stream")
        if self.max_skew_seconds == 0.0:
            return [self._ingest(record)]

        heapq.heappush(
            self._buffer, (record.timestamp.timestamp(), self._sequence, record)
        )
        self._sequence += 1
        horizon = record.timestamp.timestamp() - self.max_skew_seconds
        released: list[RequestVerdict] = []
        while self._buffer and self._buffer[0][0] <= horizon:
            released.append(self._ingest(heapq.heappop(self._buffer)[2]))
        return released

    def run(self, records: Iterable[LogRecord]) -> StreamResult:
        """Consume an entire stream and return the finished result."""
        self.reset()
        for record in records:
            self.process(record)
        return self.finish()

    def finish(self) -> StreamResult:
        """Flush all buffered and session state; finalize the detectors."""
        if self._finished:
            raise DetectorError("engine already finished")
        while self._buffer:
            self._ingest(heapq.heappop(self._buffer)[2])
        for session in self.sessionizer.flush():
            self._close_session(session)
        for detector in self.detectors:
            detector.finalize()
        self._finished = True
        adjudication = (
            self.adjudicator.to_result(self.stats.records) if self.adjudicator else None
        )
        result = StreamResult(
            alert_sets=[detector.final_alert_set() for detector in self.detectors],
            stats=self.stats,
            adjudication=adjudication,
            latencies=self._latencies,
        )
        if self._timed:
            self.export_metrics(alert_sets=result.alert_sets)
        return result

    def finish_shard(self) -> dict:
        """Flush and export state for a sharded runner (no global finalize).

        Unlike :meth:`finish`, the detectors' :meth:`~repro.stream.detectors.OnlineDetector.finalize`
        step is *not* run: detectors with global state (the anomaly port's
        contamination threshold is a quantile over all sessions) must be
        merged across shards first.  The returned dictionary is picklable
        so process-backend workers can ship it to the parent.
        """
        if self._finished:
            raise DetectorError("engine already finished")
        while self._buffer:
            self._ingest(heapq.heappop(self._buffer)[2])
        for session in self.sessionizer.flush():
            self._close_session(session)
        self._finished = True
        return {
            "states": [detector.export_state() for detector in self.detectors],
            "stats": self.stats,
            "adjudicated_ids": (
                sorted(self.adjudicator.alerted_ids) if self.adjudicator is not None else None
            ),
            "latencies": self._latencies,
            "sessions_evicted": self.sessionizer.sessions_evicted,
            "open_sessions": self.sessionizer.open_sessions,
        }

    # ------------------------------------------------------------------
    def export_metrics(
        self,
        *,
        alert_sets: Sequence[AlertSet] = (),
        stats: EngineStats | None = None,
        registry: MetricsRegistry | None = None,
        sessions_evicted: int | None = None,
        open_sessions: int | None = None,
    ) -> None:
        """Bulk-add the engine's counters into a registry.

        Called automatically by :meth:`finish`; the sharded runner calls
        it with each worker's merged ``stats`` instead (worker engines
        run unregistered, so per-shard counts aggregate here).  The
        counter names are the shared logical vocabulary of
        :mod:`repro.obs.names`, identical to the batch pipeline's.
        """
        registry = self.registry if registry is None else registry
        stats = self.stats if stats is None else stats
        registry.counter(
            metric_names.RECORDS_INGESTED, "Records fed into a detection engine."
        ).inc(stats.records)
        registry.counter(metric_names.SESSIONS_OPENED, "Visitor sessions opened.").inc(
            stats.sessions_opened
        )
        registry.counter(metric_names.SESSIONS_CLOSED, "Visitor sessions closed.").inc(
            stats.sessions_closed
        )
        if sessions_evicted is None:
            sessions_evicted = self.sessionizer.sessions_evicted
        registry.counter(
            metric_names.SESSIONS_EVICTED, "Idle sessions closed by the stream evictor."
        ).inc(sessions_evicted)
        if open_sessions is None:
            open_sessions = self.sessionizer.open_sessions
        registry.gauge(
            metric_names.SESSIONS_OPEN, "Sessions still open (sampled at finish)."
        ).set(open_sessions)
        registry.counter(
            metric_names.ENSEMBLE_ALERTS, "Requests alerted by the adjudicated ensemble."
        ).inc(stats.ensemble_alerts)
        verdicts = registry.counter(
            metric_names.DETECTOR_VERDICTS, "Online verdicts emitted per detector."
        )
        for name in stats.online_alerts:
            verdicts.inc(stats.records, detector=name)
        alerts = registry.counter(
            metric_names.DETECTOR_ALERTS, "Requests alerted per detector."
        )
        for alert_set in alert_sets:
            alerts.inc(len(alert_set), detector=alert_set.detector_name)

    # ------------------------------------------------------------------
    def _ingest(self, record: LogRecord) -> RequestVerdict:
        started = time.perf_counter()
        update = self.sessionizer.observe(record)
        if update.opened:
            self.stats.sessions_opened += 1
        for session in update.closed:
            self._close_session(session)

        votes: dict[str, OnlineVerdict] = {}
        timed = self._timed
        for detector in self.detectors:
            if timed:
                detector_started = time.perf_counter()
                verdict = detector.observe(record, update.session)
                self._detector_hist.observe(
                    time.perf_counter() - detector_started, detector=detector.name
                )
            else:
                verdict = detector.observe(record, update.session)
            votes[detector.name] = verdict
            if verdict.alerted:
                self.stats.online_alerts[detector.name] += 1

        if self.adjudicator is not None:
            alerted = self.adjudicator.observe(record, votes).alerted
        else:
            alerted = any(verdict.alerted for verdict in votes.values())
        if alerted:
            self.stats.ensemble_alerts += 1
        self.stats.records += 1

        elapsed = time.perf_counter() - started
        self.stats.busy_seconds += elapsed
        if timed:
            self._verdict_hist.observe(elapsed)
        if self.track_latency:
            self._latencies.append(elapsed)
        return RequestVerdict(
            request_id=record.request_id,
            timestamp=record.timestamp,
            alerted=alerted,
            votes=votes,
            session_id=update.session.session_id,
        )

    def _close_session(self, session: Session) -> None:
        self.stats.sessions_closed += 1
        for detector in self.detectors:
            detector.on_session_close(session)
