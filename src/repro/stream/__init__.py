"""repro.stream -- real-time streaming detection.

The batch pipeline answers the paper's retrospective question ("which
requests *were* malicious?"); this package answers the production one
("is *this* request malicious, right now?").  It consumes
:class:`~repro.logs.record.LogRecord` streams -- dataset replays, live
traffic-generator feeds or tailed Apache logs -- and produces per-request
verdicts online:

* :mod:`repro.stream.sessionizer` -- incremental sessionization with
  timeout-based eviction, mirroring the batch semantics exactly;
* :mod:`repro.stream.detectors` -- the :class:`OnlineDetector` protocol
  and online ports of the rate-limit, fingerprint, in-house-heuristic
  and anomaly detectors;
* :mod:`repro.stream.adjudicator` -- the paper's 1oo2/2oo2 and
  serial confirm/escalate schemes applied to live votes over a sliding
  window;
* :mod:`repro.stream.engine` -- the event-driven engine tying the above
  together;
* :mod:`repro.stream.runner` -- visitor-sharded multi-worker execution
  with bounded queues and backpressure;
* :mod:`repro.stream.bridge` -- proof that replaying a data set through
  the engine reproduces the batch pipeline's alert sets exactly.

Quickstart::

    from repro.stream import StreamEngine, WindowedAdjudicator, default_online_detectors
    from repro.stream.sources import dataset_replay

    detectors = default_online_detectors()
    engine = StreamEngine(
        detectors,
        adjudicator=WindowedAdjudicator([d.name for d in detectors], k=2),
    )
    result = engine.run(dataset_replay(dataset))
    print(result.alert_counts(), result.adjudication.alert_count)
"""

from repro.stream.adjudicator import AdjudicatedVerdict, WindowedAdjudicator
from repro.stream.bridge import (
    DetectorEquivalence,
    EquivalenceReport,
    ported_detector_pairs,
    replay,
    verify_equivalence,
)
from repro.stream.detectors import (
    OnlineAnomalyDetector,
    OnlineDetector,
    OnlineFingerprintDetector,
    OnlineInHouseDetector,
    OnlineRateLimitDetector,
    OnlineRequestRateLimiter,
    default_online_detectors,
)
from repro.stream.engine import StreamEngine, StreamResult
from repro.stream.events import EngineStats, OnlineVerdict, RequestVerdict
from repro.stream.runner import ShardedStreamRunner, shard_of
from repro.stream.sessionizer import IncrementalSessionizer, SessionUpdate
from repro.stream.sources import dataset_replay, generator_feed, tail_log_file, trace_replay

__all__ = [
    "AdjudicatedVerdict",
    "DetectorEquivalence",
    "EngineStats",
    "EquivalenceReport",
    "IncrementalSessionizer",
    "OnlineAnomalyDetector",
    "OnlineDetector",
    "OnlineFingerprintDetector",
    "OnlineInHouseDetector",
    "OnlineRateLimitDetector",
    "OnlineRequestRateLimiter",
    "OnlineVerdict",
    "RequestVerdict",
    "SessionUpdate",
    "ShardedStreamRunner",
    "StreamEngine",
    "StreamResult",
    "WindowedAdjudicator",
    "dataset_replay",
    "default_online_detectors",
    "generator_feed",
    "ported_detector_pairs",
    "replay",
    "shard_of",
    "tail_log_file",
    "trace_replay",
    "verify_equivalence",
]
