"""repro -- diverse detectors for detecting malicious web scraping activity.

A from-scratch reproduction of Marques et al., "Using Diverse Detectors
for Detecting Malicious Web Scraping Activity" (DSN 2018), grown into a
full synthetic deployment: traffic generation, batch and real-time
detection, diversity analysis, and a closed-loop enforcement gateway.

The front door is :mod:`repro.runspec`: every workload -- the paper's
batch tables, the labelled evaluation, real-time streaming, the
closed-loop defense -- is described by one declarative, JSON-serializable
:class:`RunSpec` and executed by one :func:`execute` call returning a
uniform :class:`RunResult`::

    from repro import RunSpec, TrafficSpec, execute, load_runspec

    spec = RunSpec(mode="tables", traffic=TrafficSpec(scale=0.02, seed=2018))
    result = execute(spec)
    print(result.render())        # the paper's Tables 1-4
    print(result.alert_counts)    # {'commercial': ..., 'inhouse': ...}

    spec.save("spec.json")        # specs are data: queue, sweep, diff, replay
    result2 = execute(load_runspec("spec.json"))

Switching workload is a one-field change -- ``mode="stream"`` replays
the same traffic through the real-time engine, ``mode="defend"`` runs a
scraping campaign against the enforcement gateway.  Detectors,
scenarios, policies and adjudication schemes are referenced by
registry name, so third-party components plug in without touching this
package (see :mod:`repro.registry`).

The underlying subsystems remain directly usable:

* :mod:`repro.logs` -- Apache access-log parsing, writing, data sets,
  sessionization.
* :mod:`repro.columns` -- the columnar in-memory substrate the batch
  pipeline runs on by default: numpy record frames with
  dictionary-encoded strings, vectorized sessionization and batched
  feature extraction, bit-identical to the record-object path.
* :mod:`repro.traffic` -- a synthetic e-commerce traffic generator with
  human visitors, legitimate crawlers and several scraper families,
  calibrated to the structure of the paper's data set.
* :mod:`repro.detectors` -- a family of scraping detectors, including the
  commercial-product and in-house-tool stand-ins the reproduction uses in
  place of the paper's proprietary Distil and Arcane tools.
* :mod:`repro.anomaly` / :mod:`repro.ml` -- from-scratch anomaly-detection
  and classification algorithms used by the statistical detectors.
* :mod:`repro.core` -- the diversity analysis itself: alert matrices,
  the paper's Tables 1-4, diversity metrics, adjudication schemes,
  parallel/serial deployment configurations and labelled evaluation.
* :mod:`repro.stream` -- the real-time counterpart of the batch
  pipeline: an event-driven engine with incremental sessionization,
  online ports of the detectors, windowed 1oo2/2oo2 adjudication of live
  votes, and visitor-sharded multi-worker execution.
* :mod:`repro.mitigation` -- the closed loop on top of the stream: a
  policy-driven enforcement gateway, feedback-driven adaptive attackers,
  and a Table-5-style report of time-to-block, attacker cost, savings
  and collateral damage.
* :mod:`repro.trace` -- the persistence layer: a chunked columnar trace
  format that records any traffic stream once and replays it at I/O
  speed (out-of-core, labels included), the content-addressed
  generation cache behind ``TrafficSpec(cache=True)``, trace
  composition operators, and an importer for real (gzipped, rotated)
  Apache access logs.
* :mod:`repro.obs` -- unified observability: the injectable
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  histograms with quantile estimates), nested tracing spans, the
  Prometheus text exposition and ``/metrics`` server, and structured
  key=value logging.  Every workload takes ``execute(spec,
  registry=...)``; with no registry the instrumentation is a no-op.
* :mod:`repro.runstore` -- the persistent control plane: a SQLite run
  store recording every executed spec/result/telemetry (content-hash
  keyed, so re-runs form longitudinal series), run diffing with
  regression thresholds, and a stdlib web dashboard.  ``execute(spec,
  store="runs.db")`` records; ``repro runs`` browses, diffs and serves.
* :mod:`repro.prof` -- the sampling profiler: a low-overhead
  background-thread stack sampler plus per-span memory attribution
  (resident-set by default, tracemalloc-exact on request), all
  correlated against the live span tree, with
  collapsed-stack / speedscope exports and run-store persistence.
  ``execute(spec, profile=True)`` captures; ``repro profile`` reports.
"""

from repro.columns import FeatureMatrix, FrameSessions, RecordFrame, sessionize_frame
from repro.core.adjudication import register_adjudication_scheme
from repro.core.experiment import ExperimentResult, PaperExperiment
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.registry import register_detector
from repro.logs.dataset import Dataset
from repro.mitigation.policy import register_policy
from repro.obs import MetricsRegistry, logging_setup, serve_metrics, trace_span
from repro.prof import Profile, ProfileOptions, Profiler, profile_run
from repro.stream.detectors import register_online_detector
from repro.mitigation import (
    Action,
    ClosedLoopSimulator,
    EnforcementGateway,
    Policy,
    build_report,
    pass_through_policy,
    render_mitigation_report,
    run_defense,
    standard_policy,
)
from repro.runspec import (
    AdjudicationSpec,
    DetectorSpec,
    ExecutionSpec,
    PolicySpec,
    RunResult,
    RunSpec,
    TrafficSpec,
    execute,
    load_runspec,
)
from repro.runstore import RunStore, diff_runs, serve_dashboard
from repro.stream import (
    ShardedStreamRunner,
    StreamEngine,
    WindowedAdjudicator,
    default_online_detectors,
)
from repro.trace import (
    GenerationCache,
    TraceReader,
    TraceWriter,
    read_trace,
    trace_info,
    write_trace,
)
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import (
    amadeus_march_2018,
    balanced_small,
    get_scenario,
    register_scenario,
    stealth_heavy,
)

__version__ = "1.10.0"

__all__ = [
    "Action",
    "AdjudicationSpec",
    "ClosedLoopSimulator",
    "CommercialBotDefenceDetector",
    "Dataset",
    "DetectorSpec",
    "EnforcementGateway",
    "ExecutionSpec",
    "ExperimentResult",
    "FeatureMatrix",
    "FrameSessions",
    "GenerationCache",
    "InHouseHeuristicDetector",
    "MetricsRegistry",
    "PaperExperiment",
    "Policy",
    "PolicySpec",
    "Profile",
    "ProfileOptions",
    "Profiler",
    "RecordFrame",
    "RunResult",
    "RunSpec",
    "RunStore",
    "ShardedStreamRunner",
    "StreamEngine",
    "TraceReader",
    "TraceWriter",
    "TrafficSpec",
    "WindowedAdjudicator",
    "__version__",
    "amadeus_march_2018",
    "balanced_small",
    "build_report",
    "default_online_detectors",
    "diff_runs",
    "execute",
    "generate_dataset",
    "get_scenario",
    "load_runspec",
    "logging_setup",
    "pass_through_policy",
    "profile_run",
    "read_trace",
    "register_adjudication_scheme",
    "register_detector",
    "register_online_detector",
    "register_policy",
    "register_scenario",
    "render_mitigation_report",
    "run_defense",
    "serve_dashboard",
    "serve_metrics",
    "sessionize_frame",
    "standard_policy",
    "stealth_heavy",
    "trace_info",
    "trace_span",
    "write_trace",
]
