"""repro -- diverse detectors for detecting malicious web scraping activity.

A from-scratch reproduction of Marques et al., "Using Diverse Detectors
for Detecting Malicious Web Scraping Activity" (DSN 2018), together with
every substrate the study depends on:

* :mod:`repro.logs` -- Apache access-log parsing, writing, data sets,
  sessionization.
* :mod:`repro.traffic` -- a synthetic e-commerce traffic generator with
  human visitors, legitimate crawlers and several scraper families,
  calibrated to the structure of the paper's data set.
* :mod:`repro.detectors` -- a family of scraping detectors, including the
  commercial-product and in-house-tool stand-ins the reproduction uses in
  place of the paper's proprietary Distil and Arcane tools.
* :mod:`repro.anomaly` / :mod:`repro.ml` -- from-scratch anomaly-detection
  and classification algorithms used by the statistical detectors.
* :mod:`repro.core` -- the diversity analysis itself: alert matrices,
  the paper's Tables 1-4, diversity metrics, adjudication schemes,
  parallel/serial deployment configurations and labelled evaluation.
* :mod:`repro.stream` -- the real-time counterpart of the batch
  pipeline: an event-driven engine with incremental sessionization,
  online ports of the detectors, windowed 1oo2/2oo2 adjudication of live
  votes, and visitor-sharded multi-worker execution.  Replaying a data
  set through the engine reproduces the batch alert sets exactly, so
  streaming runs feed the same Tables 1-4 analysis.
* :mod:`repro.mitigation` -- the closed loop on top of the stream: a
  policy-driven enforcement gateway (allow/throttle/challenge/block/
  tarpit with escalation ladders, cool-downs and a good-bot allowlist),
  feedback-driven adaptive attackers, and a Table-5-style report of
  time-to-block, attacker cost, savings and collateral damage.

Quickstart::

    from repro import PaperExperiment, amadeus_march_2018

    experiment = PaperExperiment()
    result = experiment.run_scenario(amadeus_march_2018(scale=0.02))
    print(result.render_all())

Streaming quickstart::

    from repro import StreamEngine, default_online_detectors, generate_dataset, balanced_small
    from repro.stream import dataset_replay

    dataset = generate_dataset(balanced_small())
    result = StreamEngine(default_online_detectors()).run(dataset_replay(dataset))
    print(result.alert_counts())
"""

from repro.core.experiment import ExperimentResult, PaperExperiment
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.logs.dataset import Dataset
from repro.mitigation import (
    Action,
    ClosedLoopSimulator,
    EnforcementGateway,
    Policy,
    build_report,
    pass_through_policy,
    render_mitigation_report,
    run_defense,
    standard_policy,
)
from repro.stream import (
    ShardedStreamRunner,
    StreamEngine,
    WindowedAdjudicator,
    default_online_detectors,
)
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import amadeus_march_2018, balanced_small, get_scenario, stealth_heavy

__version__ = "1.2.0"

__all__ = [
    "Action",
    "ClosedLoopSimulator",
    "CommercialBotDefenceDetector",
    "Dataset",
    "EnforcementGateway",
    "ExperimentResult",
    "InHouseHeuristicDetector",
    "PaperExperiment",
    "Policy",
    "ShardedStreamRunner",
    "StreamEngine",
    "WindowedAdjudicator",
    "__version__",
    "amadeus_march_2018",
    "balanced_small",
    "build_report",
    "default_online_detectors",
    "generate_dataset",
    "get_scenario",
    "pass_through_policy",
    "render_mitigation_report",
    "run_defense",
    "standard_policy",
    "stealth_heavy",
]
