"""Shared benchmark harness.

Generating the calibrated data set and running both tools takes a few
tens of seconds at the default benchmark scale; doing that once per
benchmark file would dominate the run.  This module memoises the
scenario data set and the full experiment result per (scale, seed) so all
table benchmarks reuse the same run, exactly as the paper's tables are
all derived from one analysed week of traffic.
"""

from __future__ import annotations

import functools
import os

from repro.core.experiment import ExperimentResult, PaperExperiment
from repro.logs.dataset import Dataset
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import amadeus_march_2018

#: Default scale of the benchmark data set, overridable via the
#: ``REPRO_BENCH_SCALE`` environment variable (1.0 regenerates the paper's
#: full 1.47M-request volume).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))

#: Seed used by all benchmarks (overridable via ``REPRO_BENCH_SEED``).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2018"))


@functools.lru_cache(maxsize=4)
def scenario_dataset(scale: float = BENCH_SCALE, seed: int = BENCH_SEED) -> Dataset:
    """The calibrated March-2018 data set at the benchmark scale (memoised)."""
    return generate_dataset(amadeus_march_2018(scale=scale, seed=seed))


@functools.lru_cache(maxsize=4)
def experiment_result(scale: float = BENCH_SCALE, seed: int = BENCH_SEED) -> ExperimentResult:
    """The full paper experiment on the benchmark data set (memoised)."""
    return PaperExperiment().run_on(scenario_dataset(scale, seed))
