"""Shared benchmark harness.

Generating the calibrated data set and running both tools takes a few
tens of seconds at the default benchmark scale; doing that once per
benchmark file would dominate the run.  This module memoises the
scenario data set and the full experiment result per (scale, seed) so all
table benchmarks reuse the same run, exactly as the paper's tables are
all derived from one analysed week of traffic.

Since the :mod:`repro.runspec` redesign the harness is spec-driven: each
memoised run is described by a declarative
:class:`~repro.runspec.spec.RunSpec` (see :func:`bench_spec`) and
executed through :func:`~repro.runspec.execute.execute`, so benchmarks
exercise exactly the code path the CLI and sweep scripts use.
"""

from __future__ import annotations

import functools
import os

from repro.core.experiment import ExperimentResult
from repro.logs.dataset import Dataset
from repro.runspec import RunResult, RunSpec, TrafficSpec, build_dataset, execute

#: Default scale of the benchmark data set, overridable via the
#: ``REPRO_BENCH_SCALE`` environment variable (1.0 regenerates the paper's
#: full 1.47M-request volume).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))

#: Seed used by all benchmarks (overridable via ``REPRO_BENCH_SEED``).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2018"))


def bench_spec(scale: float = BENCH_SCALE, seed: int = BENCH_SEED, *, mode: str = "tables") -> RunSpec:
    """The declarative spec of the shared benchmark run."""
    return RunSpec(
        mode=mode,
        traffic=TrafficSpec(scenario="amadeus_march_2018", scale=scale, seed=seed),
        label=f"bench-{mode}",
    )


@functools.lru_cache(maxsize=4)
def scenario_dataset(scale: float = BENCH_SCALE, seed: int = BENCH_SEED) -> Dataset:
    """The calibrated March-2018 data set at the benchmark scale (memoised)."""
    return build_dataset(bench_spec(scale, seed).traffic)


@functools.lru_cache(maxsize=4)
def run_result(scale: float = BENCH_SCALE, seed: int = BENCH_SEED) -> RunResult:
    """The executed benchmark spec's uniform result (memoised).

    Reuses the memoised data set so benchmarks that consume both the
    raw traffic and the experiment result pay for one generation.
    """
    return execute(bench_spec(scale, seed), dataset=scenario_dataset(scale, seed))


def experiment_result(scale: float = BENCH_SCALE, seed: int = BENCH_SEED) -> ExperimentResult:
    """The full paper experiment on the benchmark data set (memoised)."""
    return run_result(scale, seed).raw
