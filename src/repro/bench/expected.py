"""The paper's published numbers (Tables 1-4 of Marques et al., DSN 2018).

These constants are the reference the benchmark harness compares against.
Absolute counts cannot be matched (the paper's tools and data are
proprietary); the comparisons in :mod:`repro.bench.comparison` therefore
work on fractions and orderings.

Naming: the paper's commercial tool (Distil) corresponds to the
``"commercial"`` stand-in detector and the in-house tool (Arcane) to the
``"inhouse"`` stand-in.
"""

from __future__ import annotations

from typing import Mapping

#: Table 1 -- total HTTP requests and per-tool alert counts.
PAPER_TABLE1: Mapping[str, int] = {
    "total": 1_469_744,
    "commercial": 1_275_056,  # Distil
    "inhouse": 1_240_713,  # Arcane
}

#: Table 2 -- diversity in the alerting behaviour of the two tools.
PAPER_TABLE2: Mapping[str, int] = {
    "both": 1_231_408,
    "neither": 185_383,
    "inhouse_only": 9_305,  # Arcane only
    "commercial_only": 43_648,  # Distil only
}

#: Table 3 -- alerted requests by HTTP status, overall counts per tool.
PAPER_TABLE3: Mapping[str, Mapping[int, int]] = {
    "inhouse": {  # Arcane
        200: 1_204_241,
        302: 34_561,
        204: 1_560,
        400: 256,
        304: 76,
        500: 11,
        404: 8,
    },
    "commercial": {  # Distil
        200: 1_239_079,
        302: 34_832,
        204: 1_018,
        400: 73,
        404: 32,
        304: 15,
        500: 6,
        403: 1,
    },
}

#: Table 4 -- alerted requests by HTTP status for requests alerted by only one tool.
PAPER_TABLE4: Mapping[str, Mapping[int, int]] = {
    "inhouse": {  # Arcane only
        200: 7_693,
        204: 956,
        302: 321,
        400: 247,
        304: 76,
        404: 7,
        500: 5,
    },
    "commercial": {  # Distil only
        200: 42_531,
        302: 592,
        204: 414,
        400: 64,
        404: 31,
        304: 15,
        403: 1,
    },
}


def paper_fractions_table2() -> dict[str, float]:
    """Table 2 expressed as fractions of the total request count."""
    total = PAPER_TABLE1["total"]
    return {key: value / total for key, value in PAPER_TABLE2.items()}


def paper_alert_fraction(tool: str) -> float:
    """Fraction of all requests a tool alerted on (from Table 1)."""
    return PAPER_TABLE1[tool] / PAPER_TABLE1["total"]


def paper_status_fractions(table: Mapping[str, Mapping[int, int]], tool: str) -> dict[int, float]:
    """A tool's Table 3/4 column expressed as fractions of its own total."""
    counts = table[tool]
    total = sum(counts.values())
    return {status: count / total for status, count in counts.items()}
