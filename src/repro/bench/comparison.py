"""Shape comparisons between measured and published results.

The reproduction cannot (and does not try to) match the paper's absolute
counts -- the traffic is synthetic and the tools are stand-ins.  What the
benchmarks check instead is the *shape* the paper reports:

* which quantity is larger than which (orderings),
* roughly what fraction of traffic falls in each cell (fractions within a
  tolerance factor),
* which categories dominate a breakdown.

:class:`ShapeCheck` collects the individual comparisons so a benchmark can
print a readable paper-vs-measured report and assert that every check
passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass
class CheckResult:
    """One shape comparison."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.name}: {self.detail}"


@dataclass
class ShapeCheck:
    """A collection of shape comparisons with a printable report."""

    title: str
    results: list[CheckResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, name: str, passed: bool, detail: str) -> None:
        """Record one comparison."""
        self.results.append(CheckResult(name=name, passed=passed, detail=detail))

    def check_fraction(
        self,
        name: str,
        measured: float,
        expected: float,
        *,
        tolerance_factor: float = 2.0,
        absolute_slack: float = 0.02,
    ) -> None:
        """Check that a measured fraction is within a factor of the paper's.

        The comparison passes when the measured value lies within
        ``[expected / tolerance_factor - slack, expected * tolerance_factor + slack]``.
        The additive slack keeps very small fractions (fractions of a
        percent) from failing on sampling noise.
        """
        low = expected / tolerance_factor - absolute_slack
        high = expected * tolerance_factor + absolute_slack
        passed = low <= measured <= high
        self.add(name, passed, f"measured {measured:.4f} vs paper {expected:.4f} (allowed {low:.4f}..{high:.4f})")

    def check_greater(self, name: str, larger: float, smaller: float, *, larger_label: str = "a", smaller_label: str = "b") -> None:
        """Check an ordering relation (``larger > smaller``)."""
        passed = larger > smaller
        self.add(name, passed, f"{larger_label}={larger:,.4g} vs {smaller_label}={smaller:,.4g}")

    def check_dominant(self, name: str, counts: Mapping[object, int], expected_top: object) -> None:
        """Check that ``expected_top`` is the largest category of a breakdown."""
        if not counts:
            self.add(name, False, "empty breakdown")
            return
        top = max(counts.items(), key=lambda item: item[1])[0]
        self.add(name, top == expected_top, f"dominant category {top!r} (expected {expected_top!r})")

    # ------------------------------------------------------------------
    @property
    def passed(self) -> bool:
        """True when every comparison passed."""
        return all(result.passed for result in self.results)

    def failures(self) -> list[CheckResult]:
        """The comparisons that failed."""
        return [result for result in self.results if not result.passed]

    def report(self) -> str:
        """A printable paper-vs-measured report."""
        lines = [self.title, "=" * len(self.title)]
        lines.extend(str(result) for result in self.results)
        summary = "ALL CHECKS PASSED" if self.passed else f"{len(self.failures())} CHECK(S) FAILED"
        lines.append(summary)
        return "\n".join(lines)


def compare_fractions(
    title: str,
    measured: Mapping[str, float],
    expected: Mapping[str, float],
    *,
    tolerance_factor: float = 2.0,
) -> ShapeCheck:
    """Compare two fraction dictionaries key by key."""
    check = ShapeCheck(title)
    for key, expected_value in expected.items():
        check.check_fraction(key, measured.get(key, 0.0), expected_value, tolerance_factor=tolerance_factor)
    return check


def compare_ordering(title: str, measured: Mapping[str, float], expected_order: Sequence[str]) -> ShapeCheck:
    """Check that the measured values follow the expected descending order."""
    check = ShapeCheck(title)
    for first, second in zip(expected_order, expected_order[1:]):
        check.check_greater(
            f"{first} >= {second}",
            measured.get(first, 0.0) + 1e-12,
            measured.get(second, 0.0),
            larger_label=first,
            smaller_label=second,
        )
    return check
