"""Shared support for the benchmark harness.

The benchmarks under ``benchmarks/`` regenerate every table of the paper;
this package holds the paper's published numbers
(:mod:`repro.bench.expected`), shape-comparison helpers
(:mod:`repro.bench.comparison`) and the cached experiment runner shared by
all benchmark modules (:mod:`repro.bench.harness`).
"""

from repro.bench.comparison import ShapeCheck, compare_fractions, compare_ordering
from repro.bench.expected import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    paper_fractions_table2,
)
from repro.bench.harness import BENCH_SCALE, BENCH_SEED, experiment_result, scenario_dataset

__all__ = [
    "BENCH_SCALE",
    "BENCH_SEED",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "ShapeCheck",
    "compare_fractions",
    "compare_ordering",
    "experiment_result",
    "paper_fractions_table2",
    "scenario_dataset",
]
