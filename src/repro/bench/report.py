"""Markdown report of paper-vs-measured results (EXPERIMENTS.md generator).

The repository's ``EXPERIMENTS.md`` records, for every table of the paper,
the published values next to the values measured on the calibrated
synthetic scenario.  That file is generated (and can be regenerated at any
scale) by :func:`generate_experiments_report`, which the
``scripts/generate_experiments_report.py`` helper and the documentation
tests both use.
"""

from __future__ import annotations

from typing import Mapping

from repro.bench.expected import PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3, PAPER_TABLE4
from repro.core.experiment import ExperimentResult, PaperExperiment
from repro.core.metrics import cohens_kappa, disagreement_measure, yules_q
from repro.core.diversity import DiversityBreakdown
from repro.logs.statuses import describe_status
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import amadeus_march_2018

#: Display names of the stand-in detectors next to the paper's tool names.
TOOL_LABELS: Mapping[str, str] = {
    "commercial": "Distil → commercial stand-in",
    "inhouse": "Arcane → in-house stand-in",
}


def _fraction(count: int, total: int) -> str:
    if total == 0:
        return "0.0%"
    return f"{100.0 * count / total:.2f}%"


def _table1_section(result: ExperimentResult) -> list[str]:
    total = result.total_requests
    paper_total = PAPER_TABLE1["total"]
    lines = [
        "## Table 1 — HTTP requests alerted by the two tools",
        "",
        "| Quantity | Paper (count) | Paper (fraction) | Measured (count) | Measured (fraction) |",
        "|---|---|---|---|---|",
        f"| Total HTTP requests | {paper_total:,} | 100% | {total:,} | 100% |",
    ]
    for tool in ("commercial", "inhouse"):
        measured = result.alert_counts[tool]
        lines.append(
            f"| Alerted by {TOOL_LABELS[tool]} | {PAPER_TABLE1[tool]:,} | "
            f"{_fraction(PAPER_TABLE1[tool], paper_total)} | {measured:,} | {_fraction(measured, total)} |"
        )
    lines.append("")
    return lines


def _table2_section(result: ExperimentResult) -> list[str]:
    breakdown = result.breakdown
    total = breakdown.total
    paper_total = PAPER_TABLE1["total"]
    rows = [
        ("Both tools", PAPER_TABLE2["both"], breakdown.both),
        ("Neither", PAPER_TABLE2["neither"], breakdown.neither),
        ("In-house only (Arcane only)", PAPER_TABLE2["inhouse_only"], breakdown.second_only),
        ("Commercial only (Distil only)", PAPER_TABLE2["commercial_only"], breakdown.first_only),
    ]
    lines = [
        "## Table 2 — Diversity in the alerting behaviour",
        "",
        "| Alerted by | Paper (count) | Paper (fraction) | Measured (count) | Measured (fraction) |",
        "|---|---|---|---|---|",
    ]
    for label, paper_count, measured_count in rows:
        lines.append(
            f"| {label} | {paper_count:,} | {_fraction(paper_count, paper_total)} | "
            f"{measured_count:,} | {_fraction(measured_count, total)} |"
        )
    lines.append("")
    return lines


def _status_section(
    title: str,
    paper_table: Mapping[str, Mapping[int, int]],
    measured_tables: Mapping[str, Mapping[str, int]],
) -> list[str]:
    lines = [title, ""]
    for tool in ("inhouse", "commercial"):
        paper_counts = paper_table[tool]
        paper_total = sum(paper_counts.values())
        measured_counts = measured_tables[tool]
        measured_total = sum(measured_counts.values()) or 1
        lines.append(f"### {TOOL_LABELS[tool]}")
        lines.append("")
        lines.append("| HTTP status | Paper (count) | Paper (share) | Measured (count) | Measured (share) |")
        lines.append("|---|---|---|---|---|")
        statuses = list(paper_counts)
        for status in statuses:
            label = describe_status(status)
            measured = measured_counts.get(label, 0)
            lines.append(
                f"| {label} | {paper_counts[status]:,} | {_fraction(paper_counts[status], paper_total)} | "
                f"{measured:,} | {_fraction(measured, measured_total)} |"
            )
        extra = [label for label in measured_counts if label not in {describe_status(s) for s in statuses}]
        for label in sorted(extra):
            lines.append(
                f"| {label} | — | — | {measured_counts[label]:,} | {_fraction(measured_counts[label], measured_total)} |"
            )
        lines.append("")
    return lines


def _extension_sections(result: ExperimentResult) -> list[str]:
    lines = ["## Extension experiments (the paper's Section V next steps)", ""]

    if result.tool_evaluations:
        lines.append("### Labelled evaluation of each tool")
        lines.append("")
        lines.append("| Tool | Sensitivity | Specificity | Precision | F1 |")
        lines.append("|---|---|---|---|---|")
        for evaluation in result.tool_evaluations:
            lines.append(
                f"| {evaluation.name} | {evaluation.sensitivity:.4f} | {evaluation.specificity:.4f} | "
                f"{evaluation.precision:.4f} | {evaluation.f1:.4f} |"
            )
        lines.append("")

    if result.adjudication_evaluations:
        lines.append("### Adjudication schemes (1-out-of-2 vs 2-out-of-2)")
        lines.append("")
        lines.append("| Scheme | Sensitivity | Specificity | Precision | F1 |")
        lines.append("|---|---|---|---|---|")
        for evaluation in result.adjudication_evaluations:
            lines.append(
                f"| {evaluation.name} | {evaluation.sensitivity:.4f} | {evaluation.specificity:.4f} | "
                f"{evaluation.precision:.4f} | {evaluation.f1:.4f} |"
            )
        lines.append("")

    metrics = result.diversity_metrics
    paper_breakdown = DiversityBreakdown(
        first_detector="commercial",
        second_detector="inhouse",
        both=PAPER_TABLE2["both"],
        neither=PAPER_TABLE2["neither"],
        first_only=PAPER_TABLE2["commercial_only"],
        second_only=PAPER_TABLE2["inhouse_only"],
    )
    lines.append("### Pairwise diversity metrics")
    lines.append("")
    lines.append("| Metric | Paper (from Table 2 counts) | Measured |")
    lines.append("|---|---|---|")
    lines.append(f"| Cohen's kappa | {cohens_kappa(paper_breakdown):.4f} | {metrics.kappa:.4f} |")
    lines.append(f"| Yule's Q | {yules_q(paper_breakdown):.4f} | {metrics.q_statistic:.4f} |")
    lines.append(
        f"| Disagreement | {disagreement_measure(paper_breakdown):.4f} | {metrics.disagreement:.4f} |"
    )
    if metrics.double_fault is not None:
        lines.append(f"| Double fault (needs labels) | n/a | {metrics.double_fault:.4f} |")
    lines.append("")
    return lines


def generate_experiments_report(*, scale: float = 0.05, seed: int = 2018) -> str:
    """Run the full paper experiment and render EXPERIMENTS.md content."""
    dataset = generate_dataset(amadeus_march_2018(scale=scale, seed=seed))
    result = PaperExperiment().run_on(dataset)
    return render_experiments_report(result, scale=scale, seed=seed)


def render_experiments_report(result: ExperimentResult, *, scale: float, seed: int) -> str:
    """Render an already-computed experiment result as the EXPERIMENTS.md text."""
    measured_table3 = {name: table.as_dict() for name, table in result.status_tables.items()}
    measured_table4 = {name: table.as_dict() for name, table in result.exclusive_status_tables.items()}

    lines: list[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of Marques et al., *Using Diverse Detectors for Detecting Malicious Web",
        "Scraping Activity* (DSN 2018).  The paper's data set and both tools are proprietary, so",
        "the measured numbers come from the calibrated synthetic scenario",
        f"(`amadeus_march_2018`, scale={scale}, seed={seed}; {result.total_requests:,} requests) analysed by the",
        "commercial-style and in-house-style stand-in detectors (see DESIGN.md §2 for the",
        "substitutions).  Absolute counts are therefore not comparable; the reproduction targets",
        "the **shape** of each result — which tool alerts more, how the agreement splits, which",
        "status codes dominate each breakdown — and those comparisons are what the benchmark",
        "suite under `benchmarks/` asserts.",
        "",
        "Regenerate this file with `python scripts/generate_experiments_report.py`, or rerun the",
        "benchmarks with `pytest benchmarks/ --benchmark-only` for the pass/fail shape checks.",
        "",
        "The paper contains four tables and no figures; each table below lists the paper's values",
        "next to the measured ones.  The extension sections cover the analyses the paper defines",
        "as next steps (Section V), which require the ground-truth labels only the synthetic data",
        "set has.",
        "",
    ]
    lines.extend(_table1_section(result))
    lines.extend(_table2_section(result))
    lines.extend(
        _status_section("## Table 3 — Alerted requests by HTTP status (overall counts)", PAPER_TABLE3, measured_table3)
    )
    lines.extend(
        _status_section(
            "## Table 4 — Alerted requests by HTTP status (requests alerted by only one tool)",
            PAPER_TABLE4,
            measured_table4,
        )
    )
    lines.extend(_extension_sections(result))
    lines.extend(
        [
            "## Reading the comparison",
            "",
            "* **Table 1/2 shape holds.** Both tools alert on the large majority of the traffic, they",
            "  agree on the bulk of it, a double-digit share is alerted by neither, and the",
            "  commercial tool's exclusive alerts outnumber the in-house tool's several times over —",
            "  the same ordering and rough magnitudes the paper reports.",
            "* **Table 3 shape holds.** Alerted traffic is dominated by status 200, with 302 a distant",
            "  second and a long tail of 204/400/304/404/500.",
            "* **Table 4 shape holds.** The in-house tool's exclusive alerts are markedly richer in",
            "  204/400/304 probe responses, while the commercial tool's exclusive alerts are almost",
            "  entirely ordinary 200/302 traffic — the asymmetry the paper highlights.",
            "* **Extensions.** With labels, 1-out-of-2 adjudication dominates either tool on",
            "  sensitivity and 2-out-of-2 dominates on specificity; serial deployments trade a small",
            "  amount of one or the other for a large reduction in the second tool's workload.",
            "",
        ]
    )
    return "\n".join(lines)
