"""repro.columns -- the columnar in-memory substrate of the batch pipeline.

Three layers, each a vectorized counterpart of a record-object API:

* :class:`RecordFrame` -- a data set as numpy column arrays with
  dictionary-encoded strings (counterpart of a list of
  :class:`~repro.logs.record.LogRecord`); built from a
  :class:`~repro.logs.dataset.Dataset`, straight from a trace file
  (:meth:`repro.trace.store.TraceReader.read_frame`, zero per-record
  decode), or record by record.
* :func:`sessionize_frame` / :class:`FrameSessions` -- vectorized
  group-by-visitor sessionization producing session index spans
  (counterpart of :class:`~repro.logs.sessionization.Sessionizer`,
  equivalent record for record and id for id).
* :class:`FeatureMatrix` -- the whole data set's session features as one
  ``sessions x FEATURE_NAMES`` array computed by batched numpy
  reductions (counterpart of per-session
  :func:`~repro.detectors.features.extract_features`, which itself runs
  on these kernels so the two paths agree bit for bit).

The record-object APIs remain as thin compatibility layers
(:meth:`RecordFrame.iter_records`, :meth:`FrameSessions.to_sessions`,
:meth:`FeatureMatrix.row`), so stream and mitigation code keeps working
unchanged while the batch hot path runs columnar end to end.
"""

from repro.columns.alertframe import AlertFrame, DetectorAlerts, ReasonEncoder
from repro.columns.features import (
    FEATURE_NAMES,
    FeatureMatrix,
    SessionArrays,
    SessionFeatures,
)
from repro.columns.frame import STRING_COLUMNS, RecordFrame, encode_column
from repro.columns.sessions import FrameSessions, sessionize_frame, timeout_microseconds

__all__ = [
    "AlertFrame",
    "DetectorAlerts",
    "FEATURE_NAMES",
    "FeatureMatrix",
    "FrameSessions",
    "ReasonEncoder",
    "RecordFrame",
    "SessionArrays",
    "SessionFeatures",
    "STRING_COLUMNS",
    "encode_column",
    "sessionize_frame",
    "timeout_microseconds",
]
