"""The :class:`RecordFrame`: a data set as numpy column arrays.

A frame holds the same information as a list of
:class:`~repro.logs.record.LogRecord` objects, laid out for vector
processing instead of object traversal:

* timestamps as int64 microseconds since the epoch (plus a per-record
  UTC-offset column in microseconds, so wall-clock features such as the
  night fraction survive exotic timezones),
* statuses and response sizes as packed int64 columns,
* every string column (client IP, method, path, protocol, referrer,
  user agent, ident, auth user) dictionary-encoded: an integer *code*
  per record into a frame-global *table* of distinct values.

Dictionary encoding is what makes the batch hot path cheap: predicates
that depend only on the string value -- "is this path a static asset?",
"is this user agent a scripted client?" -- are evaluated once per
*distinct* value and gathered through the code arrays, instead of once
per record.  Those derived columns are cached on the frame.

Frames are immutable by convention: nothing in the library mutates a
frame after construction, so derived columns and views can be shared
freely.

The record-object API remains available as a thin compatibility layer:
:meth:`RecordFrame.iter_records` rebuilds validated ``LogRecord``
objects through the same fast slot-filling path the trace reader uses,
and :meth:`RecordFrame.to_dataset` materialises a full
:class:`~repro.logs.dataset.Dataset` (ground truth included).
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone
from typing import Iterator, Mapping, Sequence
from urllib.parse import urlsplit

import numpy as np

from repro.exceptions import ColumnsError, LabelError
from repro.logs.dataset import MALICIOUS, Dataset, DatasetMetadata, GroundTruth
from repro.logs.record import ASSET_SUFFIXES, LogRecord, RequestMethod
from repro.obs.names import FRAME_ROWS

#: The dictionary-encoded string columns, in canonical order (matches
#: the trace format's on-disk order).
STRING_COLUMNS = (
    "client_ip",
    "method",
    "path",
    "protocol",
    "referrer",
    "user_agent",
    "ident",
    "auth_user",
)

#: Fixed label table (code 0 / 1 in the label column); mirrors
#: :data:`repro.trace.format.LABEL_NAMES`.
LABEL_NAMES = ("benign", "malicious")

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)
_ONE_US = timedelta(microseconds=1)

def encode_column(values) -> tuple[np.ndarray, list]:
    """Dictionary-encode a value column: ``(codes, table)``.

    ``dict.fromkeys`` deduplicates at C speed in first-appearance order;
    the per-record pass is then a C-level ``map`` through the finished
    dictionary.  The single encoding helper -- every dictionary column
    in the library (frame strings, URL-path factorization, reputation
    prefixes) goes through here.
    """
    table = dict.fromkeys(values)
    for code, key in enumerate(table):
        table[key] = code
    codes = np.fromiter(map(table.__getitem__, values), np.int64, len(values))
    return codes, list(table)

def _split_path(path: str) -> str:
    """The path component of a request line, without the query string.

    Exactly :attr:`repro.logs.record.LogRecord.url_path`, evaluated once
    per distinct path-table entry instead of once per record.  Origin-form
    targets (a single leading ``/``, the overwhelming majority in access
    logs) take a fast path; anything that could carry a scheme or netloc
    falls back to ``urlsplit``.
    """
    if path.startswith("/") and not path.startswith("//"):
        cut = path.find("?")
        if cut == -1:
            cut = len(path)
        fragment = path.find("#", 0, cut)
        if fragment != -1:
            cut = fragment
        return path[:cut]
    return urlsplit(path).path


class RecordFrame:
    """An immutable columnar view of a sequence of log records."""

    def __init__(
        self,
        *,
        request_ids: Sequence[str],
        timestamps_us: np.ndarray,
        tz_offsets_us: np.ndarray,
        statuses: np.ndarray,
        sizes: np.ndarray,
        codes: Mapping[str, np.ndarray],
        tables: Mapping[str, Sequence[str]],
        labels: np.ndarray | None = None,
        actor_codes: np.ndarray | None = None,
        actor_table: Sequence[str] = (),
        extras: Sequence[Mapping] | None = None,
        metadata: DatasetMetadata | None = None,
        time_ordered: bool | None = None,
    ) -> None:
        self.request_ids = list(request_ids)
        n = len(self.request_ids)
        self.timestamps_us = np.asarray(timestamps_us, dtype=np.int64)
        self.tz_offsets_us = np.asarray(tz_offsets_us, dtype=np.int64)
        self.statuses = np.asarray(statuses, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.codes = {name: np.asarray(codes[name], dtype=np.int64) for name in STRING_COLUMNS}
        self.tables = {name: list(tables[name]) for name in STRING_COLUMNS}
        self.labels = None if labels is None else np.asarray(labels, dtype=np.int64)
        self.actor_codes = (
            None if actor_codes is None else np.asarray(actor_codes, dtype=np.int64)
        )
        self.actor_table = list(actor_table)
        self.extras = None if extras is None else list(extras)
        self.metadata = metadata or DatasetMetadata()
        self._time_ordered = time_ordered
        self._derived: dict[str, np.ndarray] = {}
        self._url_paths: list[str] | None = None
        self._row_index: dict[str, int] | None = None

        lengths = {
            len(self.timestamps_us),
            len(self.tz_offsets_us),
            len(self.statuses),
            len(self.sizes),
            *(len(self.codes[name]) for name in STRING_COLUMNS),
        }
        if lengths != {n}:
            raise ColumnsError(f"inconsistent column lengths in frame (expected {n})")
        if self.labels is not None and len(self.labels) != n:
            raise ColumnsError("label column length does not match the frame")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.request_ids)

    @property
    def is_labelled(self) -> bool:
        """True when the frame carries a ground-truth label per record."""
        return self.labels is not None

    def string(self, column: str, code: int) -> str:
        """The string value behind one dictionary code."""
        return self.tables[column][code]

    def row_index(self) -> dict[str, int]:
        """``{request_id: row}`` for the frame, built once and cached.

        The bridge between id-keyed APIs (:class:`~repro.core.alerts.AlertSet`)
        and row-indexed alert arrays; do not mutate the returned mapping.
        """
        if self._row_index is None:
            self._row_index = {rid: i for i, rid in enumerate(self.request_ids)}
        return self._row_index

    def status_dictionary(self) -> tuple[np.ndarray, np.ndarray]:
        """Dictionary-encode the status column: ``(values, codes)``, cached.

        ``values`` holds the distinct status codes in ascending order and
        ``codes`` maps each record to its index in ``values`` -- the
        substrate for the vectorized per-status breakdown kernels.
        """
        values = self._derived.get("status_values")
        if values is None:
            values, codes = np.unique(self.statuses, return_inverse=True)
            self._derived["status_values"] = values
            self._derived["status_codes"] = np.asarray(codes, dtype=np.int64).reshape(-1)
        return self._derived["status_values"], self._derived["status_codes"]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: Dataset, *, registry=None) -> "RecordFrame":
        """Columnarise a materialised data set (labels carried when complete)."""
        return cls.from_records(
            dataset.records,
            ground_truth=dataset.ground_truth,
            metadata=dataset.metadata,
            time_ordered=True if dataset.is_time_ordered else None,
            registry=registry,
            source="dataset",
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[LogRecord],
        *,
        ground_truth: GroundTruth | None = None,
        metadata: DatasetMetadata | None = None,
        time_ordered: bool | None = None,
        registry=None,
        source: str = "records",
    ) -> "RecordFrame":
        """Columnarise a sequence of records.

        One list comprehension per column (slot access runs close to C
        speed) followed by per-column dictionary encoding -- dictionary
        code order is an implementation detail, only the decoded strings
        are contractual.  When ``ground_truth`` does not cover every
        record (``Dataset.is_labelled`` false) the frame is unlabelled,
        like every other label consumer in the library.
        """
        n = len(records)
        request_ids = [record.request_id for record in records]
        moments = [record.timestamp for record in records]

        epoch = _EPOCH
        one_us = _ONE_US
        tz_cache: dict[object, int] = {}
        timestamps = np.fromiter(
            ((moment - epoch) // one_us for moment in moments), np.int64, n
        )

        def offset_of(moment: datetime) -> int:
            tzinfo = moment.tzinfo
            # Only datetime.timezone is fixed-offset by construction; a
            # zoneinfo/pytz zone answers utcoffset() per moment (DST), so
            # it must never be cached per tzinfo object.
            if type(tzinfo) is timezone:
                cached = tz_cache.get(tzinfo)
                if cached is None:
                    cached = moment.utcoffset() // one_us
                    tz_cache[tzinfo] = cached
                return cached
            offset = moment.utcoffset()
            return 0 if offset is None else offset // one_us

        tz_offsets = np.fromiter((offset_of(moment) for moment in moments), np.int64, n)

        code_arrays: dict[str, np.ndarray] = {}
        tables: dict[str, list[str]] = {}
        code_arrays["client_ip"], tables["client_ip"] = encode_column(
            [record.client_ip for record in records]
        )
        code_arrays["path"], tables["path"] = encode_column([record.path for record in records])
        code_arrays["protocol"], tables["protocol"] = encode_column(
            [record.protocol for record in records]
        )
        code_arrays["referrer"], tables["referrer"] = encode_column(
            [record.referrer for record in records]
        )
        code_arrays["user_agent"], tables["user_agent"] = encode_column(
            [record.user_agent for record in records]
        )
        code_arrays["ident"], tables["ident"] = encode_column([record.ident for record in records])
        code_arrays["auth_user"], tables["auth_user"] = encode_column(
            [record.auth_user for record in records]
        )
        # Methods are dictionary-encoded as enum members (hashable), so
        # ``.value`` runs once per distinct method, not once per record.
        code_arrays["method"], method_members = encode_column(
            [record.method for record in records]
        )
        tables["method"] = [member.value for member in method_members]

        extras: list[Mapping] | None = None
        if any(record.extra for record in records):
            extras = [dict(record.extra) if record.extra else {} for record in records]

        labels: np.ndarray | None = None
        actor_codes: np.ndarray | None = None
        actor_table: list[str] = []
        if ground_truth is not None:
            try:
                label_values, actor_values = ground_truth.label_columns(request_ids)
            except LabelError:  # repro-lint: allow[REP007] unlabelled frame is the documented fallback
                pass  # incomplete ground truth: the frame is unlabelled
            else:
                labels = np.fromiter(
                    (value == MALICIOUS for value in label_values), np.int64, n
                )
                actor_codes, actor_table = encode_column(actor_values)

        if registry is not None:
            registry.counter(FRAME_ROWS, "Rows loaded into a RecordFrame.").inc(
                n, source=source
            )
        return cls(
            request_ids=request_ids,
            timestamps_us=timestamps,
            tz_offsets_us=tz_offsets,
            statuses=np.fromiter((record.status for record in records), np.int64, n),
            sizes=np.fromiter((record.response_size for record in records), np.int64, n),
            codes=code_arrays,
            tables=tables,
            labels=labels,
            actor_codes=actor_codes,
            actor_table=actor_table,
            extras=extras,
            metadata=metadata,
            time_ordered=time_ordered,
        )

    # ------------------------------------------------------------------
    # Derived columns (computed once per distinct value, then gathered)
    # ------------------------------------------------------------------
    def _table_flags(self, key: str, column: str, predicate) -> np.ndarray:
        """Per-table boolean flags for ``predicate``, cached under ``key``."""
        cached = self._derived.get(key)
        if cached is None:
            cached = np.fromiter(
                (predicate(value) for value in self.tables[column]),
                dtype=bool,
                count=len(self.tables[column]),
            )
            self._derived[key] = cached
        return cached

    def url_paths(self) -> list[str]:
        """The query-stripped URL path behind each entry of the path table."""
        if self._url_paths is None:
            self._url_paths = [_split_path(value) for value in self.tables["path"]]
        return self._url_paths

    def url_path_codes(self) -> np.ndarray:
        """Per-record integer codes where equal codes mean equal URL paths."""
        cached = self._derived.get("url_path_codes")
        if cached is None:
            table_codes, url_path_table = encode_column(self.url_paths())
            self._derived["n_url_paths"] = np.int64(len(url_path_table))
            cached = table_codes[self.codes["path"]]
            self._derived["url_path_codes"] = cached
        return cached

    @property
    def n_url_paths(self) -> int:
        """Number of distinct query-stripped URL paths in the frame."""
        self.url_path_codes()
        return int(self._derived["n_url_paths"])

    def path_is_asset(self) -> np.ndarray:
        """Per-record flags: does the path look like a static asset?"""
        flags = self._derived.get("asset")
        if flags is None:
            flags = np.array(
                [path.lower().endswith(ASSET_SUFFIXES) for path in self.url_paths()],
                dtype=bool,
            )
            self._derived["asset"] = flags
        return flags[self.codes["path"]]

    def path_is_robots(self) -> np.ndarray:
        """Per-record flags: is the URL path exactly ``/robots.txt``?"""
        flags = self._derived.get("robots")
        if flags is None:
            flags = np.array(
                [path == "/robots.txt" for path in self.url_paths()], dtype=bool
            )
            self._derived["robots"] = flags
        return flags[self.codes["path"]]

    def has_referrer(self) -> np.ndarray:
        """Per-record flags: a non-empty, non-``-`` Referer header."""
        flags = self._table_flags(
            "referrer_present", "referrer", lambda value: bool(value) and value != "-"
        )
        return flags[self.codes["referrer"]]

    def method_is(self, method: str) -> np.ndarray:
        """Per-record flags: method equals ``method`` (e.g. ``"HEAD"``)."""
        flags = self._table_flags(f"method_{method}", "method", lambda value: value == method)
        return flags[self.codes["method"]]

    def night_flags(self) -> np.ndarray:
        """Per-record flags: local wall-clock hour before 06:00."""
        cached = self._derived.get("night")
        if cached is None:
            local_us = self.timestamps_us + self.tz_offsets_us
            hours = (local_us // 3_600_000_000) % 24
            cached = hours < 6
            self._derived["night"] = cached
        return cached

    # ------------------------------------------------------------------
    # Row-subset views (the multi-process shard substrate)
    # ------------------------------------------------------------------
    def take(self, rows: np.ndarray) -> "RecordFrame":
        """A row-subset frame **sharing** this frame's dictionary tables.

        The string tables (and the table-level derived flags computed so
        far) are shared, not copied -- frames are immutable by
        convention, so a shard worker forked from this process reads the
        parent's tables zero-copy.  Only the per-row arrays are gathered.
        Row order follows ``rows``; the time-ordered marker survives only
        when ``rows`` is ascending.
        """
        rows = np.asarray(rows, dtype=np.int64)
        ascending = len(rows) < 2 or bool(np.all(rows[1:] >= rows[:-1]))
        sub = object.__new__(RecordFrame)
        ids = self.request_ids
        sub.request_ids = [ids[i] for i in rows.tolist()]
        sub.timestamps_us = self.timestamps_us[rows]
        sub.tz_offsets_us = self.tz_offsets_us[rows]
        sub.statuses = self.statuses[rows]
        sub.sizes = self.sizes[rows]
        sub.codes = {name: array[rows] for name, array in self.codes.items()}
        sub.tables = self.tables
        sub.labels = None if self.labels is None else self.labels[rows]
        sub.actor_codes = None if self.actor_codes is None else self.actor_codes[rows]
        sub.actor_table = self.actor_table
        sub.extras = None if self.extras is None else [self.extras[i] for i in rows.tolist()]
        sub.metadata = self.metadata
        sub._time_ordered = self._time_ordered if ascending else None
        sub._url_paths = self._url_paths
        # Table-level derived flags transfer (they index the shared
        # tables); row-level caches (night, url path codes) do not.
        sub._derived = {
            key: flags
            for key, flags in self._derived.items()
            if key in ("asset", "robots", "referrer_present") or key.startswith("method_")
        }
        sub._row_index = None
        return sub

    # ------------------------------------------------------------------
    # Compatibility layer: back to record objects
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[LogRecord]:
        """Yield the frame's records as validated :class:`LogRecord` objects.

        Every record admitted into a frame came from a validated
        ``LogRecord`` (or a trace of them), so the constructor checks are
        skipped via the same slot-filling path the trace reader uses.
        """
        delta = timedelta
        epoch_for: dict[int, datetime] = {
            int(offset): _EPOCH.astimezone(timezone(delta(microseconds=int(offset))))
            for offset in np.unique(self.tz_offsets_us)
        } or {0: _EPOCH}
        tables = self.tables
        methods = [RequestMethod(value) for value in tables["method"]]
        ips = tables["client_ip"]
        paths = tables["path"]
        protocols = tables["protocol"]
        referrers = tables["referrer"]
        agents = tables["user_agent"]
        idents = tables["ident"]
        auth_users = tables["auth_user"]
        codes = self.codes
        extras = self.extras
        timestamps_us = self.timestamps_us.tolist()
        tz_offsets = self.tz_offsets_us.tolist()
        statuses = self.statuses.tolist()
        sizes = self.sizes.tolist()

        new = object.__new__
        fill = object.__setattr__
        cls = LogRecord
        for index, request_id in enumerate(self.request_ids):
            record = new(cls)
            fill(record, "request_id", request_id)
            fill(
                record,
                "timestamp",
                epoch_for[tz_offsets[index]] + delta(microseconds=timestamps_us[index]),
            )
            fill(record, "client_ip", ips[codes["client_ip"][index]])
            fill(record, "method", methods[codes["method"][index]])
            fill(record, "path", paths[codes["path"][index]])
            fill(record, "protocol", protocols[codes["protocol"][index]])
            fill(record, "status", statuses[index])
            fill(record, "response_size", sizes[index])
            fill(record, "referrer", referrers[codes["referrer"][index]])
            fill(record, "user_agent", agents[codes["user_agent"][index]])
            fill(record, "ident", idents[codes["ident"][index]])
            fill(record, "auth_user", auth_users[codes["auth_user"][index]])
            fill(record, "extra", dict(extras[index]) if extras is not None else {})
            yield record

    def ground_truth(self) -> GroundTruth | None:
        """The frame's labels as a :class:`GroundTruth` (``None`` if unlabelled)."""
        if self.labels is None:
            return None
        label_values = [LABEL_NAMES[code] for code in self.labels.tolist()]
        if self.actor_codes is not None and self.actor_table:
            actors = [self.actor_table[code] for code in self.actor_codes.tolist()]
        else:
            actors = [""] * len(self)
        return GroundTruth.from_columns(self.request_ids, label_values, actors)

    def to_dataset(self) -> Dataset:
        """Materialise the frame as a full :class:`Dataset` (labels included)."""
        return Dataset(
            list(self.iter_records()),
            ground_truth=self.ground_truth(),
            metadata=self.metadata,
            time_ordered=self._time_ordered,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RecordFrame(records={len(self)}, labelled={self.is_labelled}, "
            f"distinct_paths={len(self.tables['path'])})"
        )
