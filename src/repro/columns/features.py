"""Batched session-feature extraction: the :class:`FeatureMatrix`.

This module is the single source of truth for the session feature
schema: :data:`FEATURE_NAMES` defines the column order, the
:class:`SessionFeatures` record mirrors it field for field, and
:meth:`FeatureMatrix.row` converts between the two.  A property test
pins the three against each other so they can never drift.

Every feature is computed as a numpy segment reduction over records
arranged session by session (a :class:`~repro.columns.sessions.FrameSessions`
index).  Crucially, the *same kernels* back both the batched path and
the one-session record path
(:func:`repro.detectors.features.extract_features` builds a one-segment
:class:`SessionArrays` and calls into here), so the two paths produce
bit-identical floats: ``np.add.reduceat`` results depend only on the
segment contents, which makes "columnar run == record-object run" an
exact equality rather than a tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import ColumnsError
from repro.traffic.useragents import is_headless_agent, is_known_crawler_agent, is_scripted_agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns.frame import RecordFrame
    from repro.columns.sessions import FrameSessions
    from repro.logs.record import LogRecord

#: Order of the numeric feature vector produced by
#: :meth:`SessionFeatures.vector` and of the :class:`FeatureMatrix`
#: columns.  THE single definition -- everything else derives from it.
FEATURE_NAMES: tuple[str, ...] = (
    "request_count",
    "requests_per_minute",
    "mean_interarrival",
    "interarrival_cv",
    "error_rate",
    "no_content_fraction",
    "not_modified_fraction",
    "asset_fraction",
    "referrer_fraction",
    "unique_path_ratio",
    "head_fraction",
    "robots_hits",
    "night_fraction",
    "scripted_agent",
    "headless_agent",
    "crawler_claim",
)

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)
_ONE_US = timedelta(microseconds=1)


@dataclass(frozen=True)
class SessionFeatures:
    """Numeric description of one session."""

    session_id: str
    request_count: int
    requests_per_minute: float
    mean_interarrival: float
    interarrival_cv: float
    error_rate: float
    no_content_fraction: float
    not_modified_fraction: float
    asset_fraction: float
    referrer_fraction: float
    unique_path_ratio: float
    head_fraction: float
    robots_hits: int
    night_fraction: float
    scripted_agent: bool
    headless_agent: bool
    crawler_claim: bool

    def vector(self) -> np.ndarray:
        """The features as a float vector in :data:`FEATURE_NAMES` order."""
        return np.array(
            [float(getattr(self, name)) for name in FEATURE_NAMES],
            dtype=float,
        )

    def as_dict(self) -> dict[str, float]:
        """The features keyed by name."""
        return dict(zip(FEATURE_NAMES, self.vector().tolist()))


# ----------------------------------------------------------------------
# Guarded segment reductions
# ----------------------------------------------------------------------
def _segment_reduce(ufunc, values: np.ndarray, starts: np.ndarray, counts: np.ndarray, fill):
    """Per-segment ``ufunc`` reduction that tolerates empty segments.

    ``np.ufunc.reduceat`` mishandles zero-length segments (it returns the
    element at the segment start), so the reduction runs over non-empty
    segments only and empty ones receive ``fill``.  Because consecutive
    non-empty segments are contiguous in ``values``, dropping the empty
    starts does not change any non-empty segment's boundaries.
    """
    result = np.full(len(counts), fill, dtype=values.dtype if values.size else np.float64)
    nonempty = counts > 0
    if values.size and np.any(nonempty):
        result[nonempty] = ufunc.reduceat(values, starts[:-1][nonempty])
    return result


def _segment_sum(values: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    return _segment_reduce(np.add, values, starts, counts, 0)


def _segment_count(flags: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    return _segment_sum(flags.astype(np.int64), starts, counts)


def _min_delta_exceeding(window_seconds: float) -> int:
    """Smallest integer microsecond delta whose float seconds exceed the window."""
    delta = max(int(math.floor(window_seconds * 1e6)) - 2, 0)
    while not delta / 1e6 > window_seconds:
        delta += 1
    return delta


# ----------------------------------------------------------------------
# Kernel inputs
# ----------------------------------------------------------------------
@dataclass
class SessionArrays:
    """Per-record arrays in session-grouped order, plus per-session flags.

    ``starts`` holds ``n_sessions + 1`` offsets; all per-record arrays
    are aligned with each other and arranged session by session.
    ``url_path_codes`` may use any integer coding in which equal codes
    mean equal query-stripped URL paths.
    """

    starts: np.ndarray
    ts_us: np.ndarray
    night: np.ndarray
    statuses: np.ndarray
    is_asset: np.ndarray
    has_referrer: np.ndarray
    is_head: np.ndarray
    is_robots: np.ndarray
    url_path_codes: np.ndarray
    n_url_paths: int
    scripted: np.ndarray
    headless: np.ndarray
    crawler_claim: np.ndarray
    session_ids: list[str]

    # ------------------------------------------------------------------
    @classmethod
    def from_frame(cls, frame: "RecordFrame", sessions: "FrameSessions") -> "SessionArrays":
        """Gather a frame's columns into session-grouped order."""
        order = sessions.order
        agent_tables = frame.tables["user_agent"]
        scripted_table = np.fromiter(
            (is_scripted_agent(agent) for agent in agent_tables), bool, len(agent_tables)
        )
        headless_table = np.fromiter(
            (is_headless_agent(agent) for agent in agent_tables), bool, len(agent_tables)
        )
        crawler_table = np.fromiter(
            (is_known_crawler_agent(agent) for agent in agent_tables), bool, len(agent_tables)
        )
        return cls(
            starts=sessions.starts,
            ts_us=frame.timestamps_us[order],
            night=frame.night_flags()[order],
            statuses=frame.statuses[order],
            is_asset=frame.path_is_asset()[order],
            has_referrer=frame.has_referrer()[order],
            is_head=frame.method_is("HEAD")[order],
            is_robots=frame.path_is_robots()[order],
            url_path_codes=frame.url_path_codes()[order],
            n_url_paths=frame.n_url_paths,
            scripted=scripted_table[sessions.agent_codes],
            headless=headless_table[sessions.agent_codes],
            crawler_claim=crawler_table[sessions.agent_codes],
            session_ids=list(sessions.session_ids),
        )

    @classmethod
    def from_session_records(
        cls, records: Sequence["LogRecord"], *, user_agent: str, session_id: str
    ) -> "SessionArrays":
        """One-segment arrays for a single session's records.

        This is the record-object path: it feeds the same kernels as the
        batched path, so a session's features come out bit-identical
        either way.
        """
        from repro.columns.frame import encode_column

        n = len(records)
        url_codes, url_path_table = encode_column([record.url_path for record in records])
        return cls(
            starts=np.array([0, n], dtype=np.int64),
            ts_us=np.fromiter(
                ((record.timestamp - _EPOCH) // _ONE_US for record in records), np.int64, n
            ),
            night=np.fromiter((record.timestamp.hour < 6 for record in records), bool, n),
            statuses=np.fromiter((record.status for record in records), np.int64, n),
            is_asset=np.fromiter((record.is_asset_request for record in records), bool, n),
            has_referrer=np.fromiter((record.has_referrer for record in records), bool, n),
            is_head=np.fromiter(
                (record.method.value == "HEAD" for record in records), bool, n
            ),
            is_robots=np.fromiter(
                (record.url_path == "/robots.txt" for record in records), bool, n
            ),
            url_path_codes=url_codes,
            n_url_paths=len(url_path_table),
            scripted=np.array([is_scripted_agent(user_agent)]),
            headless=np.array([is_headless_agent(user_agent)]),
            crawler_claim=np.array([is_known_crawler_agent(user_agent)]),
            session_ids=[session_id],
        )


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
class FeatureMatrix:
    """Sessions x :data:`FEATURE_NAMES` feature values, plus extras.

    The ``values`` array is the input format of the anomaly and
    classification models; the extras (exact integer request and
    distinct-path counts, durations, peak window rates) serve the rule
    and rate detectors, which need more than the 16 canonical features.
    """

    names = FEATURE_NAMES

    def __init__(
        self,
        values: np.ndarray,
        session_ids: list[str],
        *,
        counts: np.ndarray,
        unique_paths: np.ndarray,
        duration_seconds: np.ndarray,
        ts_grouped: np.ndarray,
        starts: np.ndarray,
    ) -> None:
        if values.shape != (len(session_ids), len(FEATURE_NAMES)):
            raise ColumnsError(
                f"feature values shape {values.shape} does not match "
                f"{len(session_ids)} sessions x {len(FEATURE_NAMES)} features"
            )
        self.values = values
        self.session_ids = session_ids
        self.counts = counts
        self.unique_paths = unique_paths
        self.duration_seconds = duration_seconds
        self._ts_grouped = ts_grouped
        self._starts = starts
        self._peak_cache: dict[float, np.ndarray] = {}
        self._column_index = {name: j for j, name in enumerate(FEATURE_NAMES)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.session_ids)

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    def column(self, name: str) -> np.ndarray:
        """One feature column, by name."""
        try:
            return self.values[:, self._column_index[name]]
        except KeyError as exc:
            raise ColumnsError(f"unknown feature {name!r}; have {FEATURE_NAMES}") from exc

    def row(self, index: int) -> SessionFeatures:
        """One session's features as a :class:`SessionFeatures` record."""
        vector = self.values[index]
        get = self._column_index.__getitem__
        return SessionFeatures(
            session_id=self.session_ids[index],
            request_count=int(vector[get("request_count")]),
            requests_per_minute=float(vector[get("requests_per_minute")]),
            mean_interarrival=float(vector[get("mean_interarrival")]),
            interarrival_cv=float(vector[get("interarrival_cv")]),
            error_rate=float(vector[get("error_rate")]),
            no_content_fraction=float(vector[get("no_content_fraction")]),
            not_modified_fraction=float(vector[get("not_modified_fraction")]),
            asset_fraction=float(vector[get("asset_fraction")]),
            referrer_fraction=float(vector[get("referrer_fraction")]),
            unique_path_ratio=float(vector[get("unique_path_ratio")]),
            head_fraction=float(vector[get("head_fraction")]),
            robots_hits=int(vector[get("robots_hits")]),
            night_fraction=float(vector[get("night_fraction")]),
            scripted_agent=bool(vector[get("scripted_agent")] != 0.0),
            headless_agent=bool(vector[get("headless_agent")] != 0.0),
            crawler_claim=bool(vector[get("crawler_claim")] != 0.0),
        )

    def to_features(self) -> list[SessionFeatures]:
        """All sessions as :class:`SessionFeatures` records (compat layer)."""
        return [self.row(index) for index in range(len(self))]

    # ------------------------------------------------------------------
    def peak_rpm(self, window_seconds: float = 60.0) -> np.ndarray:
        """Per-session peak sliding-window request rate, per minute.

        Exactly :meth:`repro.logs.sessionization.Session.peak_requests_per_minute`
        for every session at once (memoised per window).
        """
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        cached = self._peak_cache.get(window_seconds)
        if cached is None:
            cached = _peak_rpm(self._ts_grouped, self._starts, self.counts, window_seconds)
            self._peak_cache[window_seconds] = cached
        return cached

    # ------------------------------------------------------------------
    @classmethod
    def from_frame(
        cls, frame: "RecordFrame", sessions: "FrameSessions", *, registry=None
    ) -> "FeatureMatrix":
        """Compute the whole data set's feature matrix in one batch."""
        matrix = cls.from_arrays(SessionArrays.from_frame(frame, sessions))
        if registry is not None:
            from repro.obs.names import FEATURE_ROWS

            registry.counter(
                FEATURE_ROWS, "Feature-matrix rows (sessions) computed."
            ).inc(len(matrix))
        return matrix

    @classmethod
    def from_arrays(cls, arrays: SessionArrays) -> "FeatureMatrix":
        """Run the shared kernels over session-grouped arrays."""
        starts = np.asarray(arrays.starts, dtype=np.int64)
        counts = np.diff(starts)
        n_sessions = len(counts)
        ts = arrays.ts_us
        total = len(ts)
        safe_counts = np.maximum(counts, 1)

        if total:
            clamp = np.minimum(starts[:-1], total - 1)
            first_ts = ts[clamp]
            last_ts = ts[np.minimum(np.maximum(starts[1:] - 1, 0), total - 1)]
        else:
            first_ts = np.zeros(n_sessions, dtype=np.int64)
            last_ts = np.zeros(n_sessions, dtype=np.int64)
        duration_s = np.where(counts > 0, (last_ts - first_ts) / 1e6, 0.0)

        # Average rate; single-request sessions count as their size.
        minutes = np.maximum(duration_s / 60.0, 1.0 / 60.0)
        rpm = np.where(counts <= 1, counts.astype(np.float64), counts / minutes)

        # Inter-arrival gaps (seconds), segmented per session.
        if total > 1:
            diffs = np.diff(ts)
            valid = np.ones(total - 1, dtype=bool)
            boundaries = starts[1:-1]
            boundaries = boundaries[(boundaries > 0) & (boundaries < total)]
            valid[boundaries - 1] = False
            gaps_s = diffs[valid] / 1e6
        else:
            gaps_s = np.empty(0, dtype=np.float64)
        gap_counts = np.maximum(counts - 1, 0)
        gap_starts = np.empty(n_sessions + 1, dtype=np.int64)
        gap_starts[0] = 0
        np.cumsum(gap_counts, out=gap_starts[1:])
        safe_gap_counts = np.maximum(gap_counts, 1)

        gap_sums = _segment_sum(gaps_s, gap_starts, gap_counts)
        mean_gap = gap_sums / safe_gap_counts
        mean_interarrival = np.where(counts <= 1, 0.0, mean_gap)

        deviations = (gaps_s - np.repeat(mean_gap, gap_counts)) ** 2
        variance = _segment_sum(deviations, gap_starts, gap_counts) / safe_gap_counts
        cv_raw = np.sqrt(variance) / np.where(mean_gap > 0, mean_gap, 1.0)
        interarrival_cv = np.where(
            gap_counts < 2, 1.0, np.where(mean_gap <= 0, 0.0, cv_raw)
        )

        statuses = arrays.statuses
        error_rate = _segment_count(statuses >= 400, starts, counts) / safe_counts
        no_content = _segment_count(statuses == 204, starts, counts) / safe_counts
        not_modified = _segment_count(statuses == 304, starts, counts) / safe_counts
        asset_fraction = _segment_count(arrays.is_asset, starts, counts) / safe_counts
        referrer_fraction = _segment_count(arrays.has_referrer, starts, counts) / safe_counts
        head_fraction = _segment_count(arrays.is_head, starts, counts) / safe_counts
        robots_hits = _segment_count(arrays.is_robots, starts, counts)
        night_fraction = _segment_count(arrays.night, starts, counts) / safe_counts

        # Distinct URL paths per session: unique (session, path) pairs.
        if total:
            base = np.int64(arrays.n_url_paths + 1)
            session_of_record = np.repeat(np.arange(n_sessions, dtype=np.int64), counts)
            pairs = session_of_record * base + arrays.url_path_codes
            unique_pairs = np.unique(pairs)
            unique_paths = np.bincount(
                (unique_pairs // base).astype(np.intp), minlength=n_sessions
            ).astype(np.int64)
        else:
            unique_paths = np.zeros(n_sessions, dtype=np.int64)
        unique_ratio = np.where(counts > 0, unique_paths / safe_counts, 0.0)

        values = np.column_stack(
            [
                counts.astype(np.float64),
                rpm,
                mean_interarrival,
                interarrival_cv,
                error_rate,
                no_content,
                not_modified,
                asset_fraction,
                referrer_fraction,
                unique_ratio,
                head_fraction,
                robots_hits.astype(np.float64),
                night_fraction,
                arrays.scripted.astype(np.float64),
                arrays.headless.astype(np.float64),
                arrays.crawler_claim.astype(np.float64),
            ]
        )
        return cls(
            values,
            list(arrays.session_ids),
            counts=counts,
            unique_paths=unique_paths,
            duration_seconds=duration_s,
            ts_grouped=ts,
            starts=starts,
        )


# ----------------------------------------------------------------------
# Peak sliding-window rate
# ----------------------------------------------------------------------
def _peak_rpm(
    ts: np.ndarray, starts: np.ndarray, counts: np.ndarray, window_seconds: float
) -> np.ndarray:
    result = counts.astype(np.float64)
    multi = counts > 1
    if not np.any(multi):
        return result
    total = len(ts)
    threshold = _min_delta_exceeding(window_seconds)
    span = int(ts.max() - ts.min())
    offset_step = span + threshold + 2
    n_sessions = len(counts)

    if n_sessions * offset_step < 2**62:
        # Offset every session into its own disjoint time band so one
        # global searchsorted finds, for every record, the earliest
        # same-session record within the window.
        session_of_record = np.repeat(np.arange(n_sessions, dtype=np.int64), counts)
        shifted = (ts - ts.min()) + session_of_record * np.int64(offset_step)
        earliest = np.searchsorted(shifted, shifted - (threshold - 1), side="left")
        window_counts = np.arange(total, dtype=np.int64) - earliest + 1
        best = _segment_reduce(np.maximum, window_counts, starts, counts, 1)
    else:  # pragma: no cover - astronomically large frames only
        best = np.ones(n_sessions, dtype=np.int64)
        for index in np.flatnonzero(multi):
            segment = ts[starts[index] : starts[index + 1]]
            earliest = np.searchsorted(segment, segment - (threshold - 1), side="left")
            best[index] = int(
                (np.arange(len(segment), dtype=np.int64) - earliest).max()
            ) + 1
    result[multi] = best[multi] * (60.0 / window_seconds)
    return result
