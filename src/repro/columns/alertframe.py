"""Columnar alerts: per-detector flag/score/reason arrays over a frame.

The dict path represents a detector's verdicts as an
:class:`~repro.core.alerts.AlertSet` -- one ``Alert`` object per alerted
request id.  At scale that representation dominates a ``tables`` run:
every downstream consumer (matrix assembly, breakdowns, confusion
counts) walks Python dicts row by row.

:class:`DetectorAlerts` is the columnar counterpart: three arrays over
the :class:`~repro.columns.frame.RecordFrame` row index --

* ``flags``        -- ``bool[n]``, did the detector alert on this row,
* ``scores``       -- ``float64[n]``, the alert score where flagged
  (unspecified elsewhere),
* ``reason_codes`` -- ``int64[n]`` dictionary codes into
  ``reason_table`` (``-1`` where not flagged),

plus ``reason_table``, a list of distinct reason *tuples*.  Reasons are
dictionary-encoded exactly like the frame's string columns: detectors
emit a handful of distinct reason tuples (one per distinct user agent,
session verdict, layer combination...), so encoding once per distinct
tuple and gathering through codes removes the per-alert Python.

:class:`AlertFrame` bundles one ``DetectorAlerts`` per detector over a
shared frame; :meth:`~repro.core.alerts.AlertMatrix.from_alert_frame`
stacks the flag columns into the boolean matrix with no per-alert
iteration.  The dict path stays available through
:meth:`DetectorAlerts.to_alert_set` / :meth:`from_alert_set` -- the
bridge the equivalence suite uses to prove both representations carry
identical ids, scores and reasons.

Shard merge: :meth:`DetectorAlerts.scatter` writes a sub-frame's arrays
back into a global frame's arrays at the shard's row positions,
remapping reason codes through a shared :class:`ReasonEncoder` -- the
join step of the multi-process frame pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.exceptions import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.columns.frame import RecordFrame
    from repro.columns.sessions import FrameSessions


class ReasonEncoder:
    """Dictionary-encode reason tuples: distinct tuple -> small int code."""

    def __init__(self) -> None:
        self._codes: dict[tuple[str, ...], int] = {}
        self.table: list[tuple[str, ...]] = []

    def code(self, reasons: tuple[str, ...]) -> int:
        """The code for ``reasons``, allocating a new one on first sight."""
        code = self._codes.get(reasons)
        if code is None:
            code = len(self.table)
            self._codes[reasons] = code
            self.table.append(reasons)
        return code


class DetectorAlerts:
    """One detector's verdicts as arrays over a frame's row index."""

    __slots__ = ("detector_name", "flags", "scores", "reason_codes", "reason_table")

    def __init__(
        self,
        detector_name: str,
        flags: np.ndarray,
        scores: np.ndarray,
        reason_codes: np.ndarray,
        reason_table: Sequence[tuple[str, ...]],
    ) -> None:
        self.detector_name = detector_name
        self.flags = np.asarray(flags, dtype=bool)
        self.scores = np.asarray(scores, dtype=np.float64)
        self.reason_codes = np.asarray(reason_codes, dtype=np.int64)
        self.reason_table = list(reason_table)
        n = len(self.flags)
        if len(self.scores) != n or len(self.reason_codes) != n:
            raise AnalysisError(
                f"detector {detector_name!r}: alert column lengths disagree"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, detector_name: str, n: int) -> "DetectorAlerts":
        """All-quiet alerts over an ``n``-row frame."""
        return cls(
            detector_name,
            np.zeros(n, dtype=bool),
            np.zeros(n, dtype=np.float64),
            np.full(n, -1, dtype=np.int64),
            [],
        )

    @classmethod
    def from_sessions(
        cls,
        detector_name: str,
        frame: "RecordFrame",
        sessions: "FrameSessions",
        session_flags: np.ndarray,
        session_scores: np.ndarray,
        session_codes: np.ndarray,
        reason_table: Sequence[tuple[str, ...]],
    ) -> "DetectorAlerts":
        """Broadcast per-session verdict arrays onto the frame's rows.

        One scatter per array: ``rows[order] = repeat(per_session,
        counts)`` -- the vectorized counterpart of a session detector
        applying its verdict to every request id in the session.
        """
        n = len(frame)
        flags = np.zeros(n, dtype=bool)
        scores = np.zeros(n, dtype=np.float64)
        codes = np.full(n, -1, dtype=np.int64)
        if len(sessions.starts) > 1:
            counts = sessions.counts
            order = sessions.order
            flags[order] = np.repeat(np.asarray(session_flags, dtype=bool), counts)
            scores[order] = np.repeat(np.asarray(session_scores, dtype=np.float64), counts)
            codes[order] = np.repeat(np.asarray(session_codes, dtype=np.int64), counts)
        return cls(detector_name, flags, scores, codes, reason_table)

    @classmethod
    def from_alert_set(
        cls, frame: "RecordFrame", alert_set: AlertSet
    ) -> "DetectorAlerts":
        """Columnarise a dict-path :class:`AlertSet` (the fallback bridge).

        Unknown request ids are an error, mirroring the strict mode of
        :meth:`~repro.core.alerts.AlertMatrix.from_alert_sets`.
        """
        alerts = cls.empty(alert_set.detector_name, len(frame))
        row_of = frame.row_index()
        encoder = ReasonEncoder()
        for alert in alert_set.alerts():
            row = row_of.get(alert.request_id)
            if row is None:
                raise AnalysisError(
                    f"detector {alert_set.detector_name!r} alerted on unknown "
                    f"request id {alert.request_id!r}"
                )
            alerts.flags[row] = True
            alerts.scores[row] = alert.score
            alerts.reason_codes[row] = encoder.code(alert.reasons)
        alerts.reason_table = encoder.table
        return alerts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.flags)

    def alert_count(self) -> int:
        """Number of alerted rows."""
        return int(np.count_nonzero(self.flags))

    def reasons_of(self, row: int) -> tuple[str, ...]:
        """The reason tuple attached to one alerted row."""
        code = int(self.reason_codes[row])
        return self.reason_table[code] if code >= 0 else ()

    # ------------------------------------------------------------------
    # Bridges and merging
    # ------------------------------------------------------------------
    def to_alert_set(self, request_ids: Sequence[str]) -> AlertSet:
        """The dict-path view of these alerts (the equivalence oracle)."""
        table = self.reason_table
        scores = self.scores
        codes = self.reason_codes
        scored: dict[str, tuple[float, tuple[str, ...]]] = {}
        for row in np.flatnonzero(self.flags).tolist():
            code = codes[row]
            scored[request_ids[row]] = (
                float(scores[row]),
                table[code] if code >= 0 else (),
            )
        return AlertSet.from_scored(self.detector_name, scored)

    def scatter(
        self,
        rows: np.ndarray,
        shard: "DetectorAlerts",
        encoder: ReasonEncoder,
    ) -> None:
        """Merge a shard's alerts into this (global) alert column set.

        ``rows`` maps the shard's row index to global rows (disjoint
        across shards, so scatters never collide); reason codes are
        remapped through the shared ``encoder`` so equal reason tuples
        keep one code regardless of which shard produced them.
        """
        self.flags[rows] = shard.flags
        self.scores[rows] = shard.scores
        if shard.reason_table:
            remap = np.fromiter(
                (encoder.code(reasons) for reasons in shard.reason_table),
                np.int64,
                len(shard.reason_table),
            )
            remapped = np.where(
                shard.reason_codes >= 0,
                remap[np.maximum(shard.reason_codes, 0)],
                np.int64(-1),
            )
        else:
            remapped = shard.reason_codes
        self.reason_codes[rows] = remapped
        self.reason_table = encoder.table


class AlertFrame:
    """Every detector's columnar alerts over one shared frame."""

    __slots__ = ("frame", "detectors")

    def __init__(self, frame: "RecordFrame", detectors: Sequence[DetectorAlerts]) -> None:
        names = [alerts.detector_name for alerts in detectors]
        if len(set(names)) != len(names):
            raise AnalysisError("duplicate detector names in alert frame")
        for alerts in detectors:
            if len(alerts) != len(frame):
                raise AnalysisError(
                    f"detector {alerts.detector_name!r}: alert columns cover "
                    f"{len(alerts)} rows, frame has {len(frame)}"
                )
        self.frame = frame
        self.detectors = list(detectors)

    @property
    def detector_names(self) -> list[str]:
        return [alerts.detector_name for alerts in self.detectors]

    def alerts_for(self, name: str) -> DetectorAlerts:
        """The alert columns of one detector by name."""
        for alerts in self.detectors:
            if alerts.detector_name == name:
                return alerts
        raise AnalysisError(
            f"unknown detector {name!r}; alert frame has {self.detector_names}"
        )

    def to_alert_sets(self) -> list[AlertSet]:
        """Dict-path views of every detector's alerts (oracle bridge)."""
        ids = self.frame.request_ids
        return [alerts.to_alert_set(ids) for alerts in self.detectors]


def whitelist_row_mask(
    frame: "RecordFrame",
    sessions: "FrameSessions",
    is_whitelisted_pair,
) -> np.ndarray:
    """Rows whose session's ``(user agent, client ip)`` pair is whitelisted.

    ``is_whitelisted_pair(agent, ip)`` is evaluated once per distinct
    pair (cached), then broadcast session -> rows by scatter.
    """
    n = len(frame)
    mask = np.zeros(n, dtype=bool)
    n_sessions = len(sessions.starts) - 1
    if n_sessions <= 0:
        return mask
    agents = frame.tables["user_agent"]
    ips = frame.tables["client_ip"]
    pair_cache: dict[tuple[int, int], bool] = {}
    session_flags = np.zeros(n_sessions, dtype=bool)
    agent_codes = sessions.agent_codes.tolist()
    ip_codes = sessions.ip_codes.tolist()
    for index in range(n_sessions):
        pair = (agent_codes[index], ip_codes[index])
        verdict = pair_cache.get(pair)
        if verdict is None:
            verdict = bool(is_whitelisted_pair(agents[pair[0]], ips[pair[1]]))
            pair_cache[pair] = verdict
        session_flags[index] = verdict
    mask[sessions.order] = np.repeat(session_flags, sessions.counts)
    return mask


def encode_session_reasons(
    verdict_reasons: Iterable[tuple[str, ...]],
) -> tuple[np.ndarray, list[tuple[str, ...]]]:
    """Dictionary-encode an iterable of per-session reason tuples."""
    encoder = ReasonEncoder()
    codes = np.fromiter(
        (encoder.code(reasons) for reasons in verdict_reasons), np.int64
    )
    return codes, encoder.table


def merge_scored_rows(
    detector_name: str,
    n: int,
    scored_rows: Mapping[int, tuple[float, tuple[str, ...]]],
) -> DetectorAlerts:
    """Alert columns from a ``{row: (score, reasons)}`` mapping."""
    alerts = DetectorAlerts.empty(detector_name, n)
    encoder = ReasonEncoder()
    for row, (score, reasons) in scored_rows.items():
        alerts.flags[row] = True
        alerts.scores[row] = score
        alerts.reason_codes[row] = encoder.code(tuple(reasons))
    alerts.reason_table = encoder.table
    return alerts
