"""Vectorized sessionization over a :class:`~repro.columns.frame.RecordFrame`.

:func:`sessionize_frame` reproduces, record for record and id for id,
what :meth:`repro.logs.sessionization.Sessionizer.sessionize` computes
from record objects -- the same visitor grouping, the same timeout
splits, the same ``s{counter}`` naming and the same final ordering
(including the tie-breaking that falls out of the legacy scan order) --
but as a handful of numpy sorts and scans instead of a per-record Python
loop.  The result is a :class:`FrameSessions` index: a permutation of
the frame's rows grouped session by session plus span offsets, rather
than materialised :class:`~repro.logs.sessionization.Session` objects.

The equivalence is pinned by tests (including a hypothesis suite over
adversarial timestamp ties), because downstream analyses depend on the
exact session order: the anomaly models are seeded RNG consumers of the
feature-matrix rows, so "the same sessions in a different order" would
not reproduce the legacy alert sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta
from typing import Sequence

import numpy as np

from repro.columns.frame import RecordFrame
from repro.logs.record import LogRecord
from repro.logs.sessionization import DEFAULT_TIMEOUT, Session
from repro.obs.names import FRAME_SESSIONS

_ONE_US = timedelta(microseconds=1)


@dataclass
class FrameSessions:
    """Session spans over a frame: who, when, and which rows belong where.

    ``order`` is a permutation of the frame's row indices arranged
    session by session (sessions in final output order, records within a
    session in time order); ``starts`` holds ``n_sessions + 1`` offsets
    into it, so session ``j`` covers ``order[starts[j]:starts[j+1]]``.
    """

    frame: RecordFrame
    order: np.ndarray
    starts: np.ndarray
    session_ids: list[str]
    ip_codes: np.ndarray
    agent_codes: np.ndarray
    _record_session: np.ndarray | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.session_ids)

    @property
    def counts(self) -> np.ndarray:
        """Requests per session."""
        return np.diff(self.starts)

    def span(self, index: int) -> np.ndarray:
        """The frame row indices of one session, in session-record order."""
        return self.order[self.starts[index] : self.starts[index + 1]]

    def record_session_index(self) -> np.ndarray:
        """Per frame row: the index of the session the record belongs to."""
        if self._record_session is None:
            mapping = np.empty(len(self.order), dtype=np.int64)
            mapping[self.order] = np.repeat(
                np.arange(len(self), dtype=np.int64), self.counts
            )
            self._record_session = mapping
        return self._record_session

    def user_agent(self, index: int) -> str:
        """The session's user-agent string."""
        return self.frame.tables["user_agent"][self.agent_codes[index]]

    def client_ip(self, index: int) -> str:
        """The session's client IP string."""
        return self.frame.tables["client_ip"][self.ip_codes[index]]

    def request_id_groups(self) -> list[list[str]]:
        """Per session: the request ids, in session-record order."""
        request_ids = self.frame.request_ids
        starts = self.starts
        order = self.order
        return [
            [request_ids[row] for row in order[starts[j] : starts[j + 1]]]
            for j in range(len(self))
        ]

    def to_sessions(self, records: Sequence[LogRecord] | None = None) -> list[Session]:
        """Materialise legacy :class:`Session` objects (compatibility layer).

        ``records`` must be the frame's records in frame order (e.g.
        ``dataset.records``); when omitted they are rebuilt from the
        frame itself.
        """
        if records is None:
            records = list(self.frame.iter_records())
        starts = self.starts
        order = self.order
        sessions: list[Session] = []
        for j, session_id in enumerate(self.session_ids):
            session = Session(
                session_id=session_id,
                client_ip=self.client_ip(j),
                user_agent=self.user_agent(j),
            )
            session.records = [records[row] for row in order[starts[j] : starts[j + 1]]]
            sessions.append(session)
        return sessions


def timeout_microseconds(timeout: timedelta = DEFAULT_TIMEOUT) -> int:
    """A session timeout as exact integer microseconds."""
    return timeout // _ONE_US


def sessionize_frame(
    frame: RecordFrame, *, timeout: timedelta = DEFAULT_TIMEOUT, registry=None
) -> FrameSessions:
    """Group a frame's rows into visitor sessions (vectorized).

    Exactly equivalent to sorting the records by timestamp and scanning
    them through :class:`~repro.logs.sessionization.Sessionizer`: same
    sessions, same ``s{counter}`` ids, same output order.
    """
    if timeout.total_seconds() <= 0:
        raise ValueError("session timeout must be positive")
    timeout_us = timeout_microseconds(timeout)
    n = len(frame)
    if n == 0:
        if registry is not None:
            registry.counter(
                FRAME_SESSIONS, "Session spans produced by vectorized sessionization."
            ).inc(0)
        return FrameSessions(
            frame=frame,
            order=np.empty(0, dtype=np.int64),
            starts=np.zeros(1, dtype=np.int64),
            session_ids=[],
            ip_codes=np.empty(0, dtype=np.int64),
            agent_codes=np.empty(0, dtype=np.int64),
        )

    ts = frame.timestamps_us
    ip_codes = frame.codes["client_ip"]
    agent_codes = frame.codes["user_agent"]
    # One integer per (client IP, user agent) visitor key.
    key = ip_codes * np.int64(len(frame.tables["user_agent"]) + 1) + agent_codes

    # Arrange records by (visitor, time); both sorts are stable, so ties
    # keep original record order -- exactly the legacy scan's ordering.
    perm = np.lexsort((ts, key))
    key_sorted = key[perm]
    ts_sorted = ts[perm]

    # A session starts where the visitor changes or the gap exceeds the
    # timeout (strictly greater, like the legacy comparison).
    new_session = np.empty(n, dtype=bool)
    new_session[0] = True
    new_session[1:] = (key_sorted[1:] != key_sorted[:-1]) | (
        (ts_sorted[1:] - ts_sorted[:-1]) > timeout_us
    )
    first_positions = np.flatnonzero(new_session)
    n_sessions = len(first_positions)
    session_of_sorted = np.cumsum(new_session) - 1

    # Rank every record in the stable time order; a session's *creation
    # rank* (the legacy ``s{counter}``) is the time rank of its first
    # record, because the scan creates each session when it first meets
    # that record.
    time_rank = np.empty(n, dtype=np.int64)
    time_rank[np.argsort(ts, kind="stable")] = np.arange(n, dtype=np.int64)
    first_time_rank = time_rank[perm[first_positions]]
    creation_rank = np.empty(n_sessions, dtype=np.int64)
    creation_rank[np.argsort(first_time_rank)] = np.arange(n_sessions, dtype=np.int64)

    # The legacy scan appends a session to its output list either when a
    # later session of the same visitor supersedes it (at the successor's
    # creation) or, for each visitor's last session, at the end in
    # visitor-first-seen order.  The final ordering then sorts by start
    # time with that list order breaking ties, so reproduce it exactly.
    session_key = key_sorted[first_positions]
    has_successor = np.zeros(n_sessions, dtype=bool)
    if n_sessions > 1:
        has_successor[:-1] = session_key[:-1] == session_key[1:]
    pre_sort_rank = np.empty(n_sessions, dtype=np.int64)
    successor_index = np.flatnonzero(has_successor) + 1
    pre_sort_rank[has_successor] = first_time_rank[successor_index]

    key_first = np.ones(n_sessions, dtype=bool)
    key_first[1:] = session_key[1:] != session_key[:-1]
    key_first_index = np.flatnonzero(key_first)
    key_insertion_rank = np.empty(len(key_first_index), dtype=np.int64)
    key_insertion_rank[np.argsort(first_time_rank[key_first_index])] = np.arange(
        len(key_first_index), dtype=np.int64
    )
    key_group = np.cumsum(key_first) - 1
    last_of_key = ~has_successor
    pre_sort_rank[last_of_key] = n + key_insertion_rank[key_group[last_of_key]]

    start_us = ts_sorted[first_positions]
    final_order = np.lexsort((pre_sort_rank, start_us))
    final_rank = np.empty(n_sessions, dtype=np.int64)
    final_rank[final_order] = np.arange(n_sessions, dtype=np.int64)

    # Regroup the records by final session order (stable, so the within-
    # session time order is preserved).
    record_final = final_rank[session_of_sorted]
    regroup = np.argsort(record_final, kind="stable")
    order = perm[regroup]

    counts = np.diff(np.append(first_positions, n))[final_order]
    starts = np.empty(n_sessions + 1, dtype=np.int64)
    starts[0] = 0
    np.cumsum(counts, out=starts[1:])

    first_rows = perm[first_positions][final_order]
    creation_final = creation_rank[final_order]
    session_ids = [f"s{int(rank)}" for rank in creation_final]

    if registry is not None:
        registry.counter(
            FRAME_SESSIONS, "Session spans produced by vectorized sessionization."
        ).inc(n_sessions)
    return FrameSessions(
        frame=frame,
        order=order,
        starts=starts,
        session_ids=session_ids,
        ip_codes=ip_codes[first_rows],
        agent_codes=agent_codes[first_rows],
    )
