"""Command-line interface (``repro-scrapeguard``).

Every analysis subcommand is a thin shim over :mod:`repro.runspec`: it
builds a declarative :class:`~repro.runspec.spec.RunSpec` from its
arguments, hands it to :func:`~repro.runspec.execute.execute`, and
prints the uniform :class:`~repro.runspec.result.RunResult` -- rendered
as plain-text tables by default, or as structured JSON with ``--json``.

Subcommands
-----------
``generate``
    Generate the synthetic access log for a scenario and write it to disk
    as an Apache combined-log-format file (plus a JSON label file).
``tables``
    Run the two stand-in tools on a scenario (or an existing log file) and
    print the reproduction of the paper's Tables 1-4.
``evaluate``
    Print the labelled extension analyses: per-tool sensitivity /
    specificity, the k-out-of-2 adjudication schemes and the parallel vs
    serial configuration comparison.
``stream``
    Replay a scenario (or an existing log file) through the real-time
    streaming engine (:mod:`repro.stream`): live alert totals while the
    stream runs, then a final Table-1-style summary with the adjudicated
    ensemble verdict and throughput.
``defend``
    Run the closed-loop enforcement simulation (:mod:`repro.mitigation`):
    a scraping campaign against the enforcement gateway, reported as a
    Table-5-style summary, optionally contrasting the scripted campaign
    with its adaptive variant.
``run``
    Execute any saved run specification: ``repro run --config spec.json``
    replays exactly the workload the JSON spec describes.
``scenarios``
    List the available preset scenarios with their traffic mix.
``obs``
    Observability (:mod:`repro.obs`): ``obs dump`` prints the metric
    reference catalog, or -- given ``--config`` -- executes a saved run
    spec with a live metrics registry and dumps the resulting telemetry
    snapshot as JSON or Prometheus exposition text.  Every executing
    subcommand additionally takes ``--log-level`` (structured key=value
    logging) and ``--metrics-port`` (a live Prometheus ``/metrics``
    endpoint served for the duration of the run), and its ``--json``
    output carries the full telemetry snapshot.
``trace``
    The persistent trace store (:mod:`repro.trace`): ``trace record``
    generates a scenario once and records it as a replayable columnar
    trace file, ``trace info`` prints a trace's footer summary in O(1),
    ``trace import`` ingests real Apache access logs (gzipped and
    rotated sets included) into a trace, and ``trace mix`` interleaves a
    recorded attack onto a recorded background.  Recorded traces replay
    through every analysis subcommand via
    ``--config`` specs with ``traffic.source = "trace"``.
``runs``
    The persistent run store (:mod:`repro.runstore`).  Every executing
    subcommand takes ``--store PATH`` (or honours ``REPRO_RUN_STORE``)
    to append its result -- spec, tables, metrics, telemetry, traffic
    fingerprint, profile -- to a SQLite store; ``runs list`` / ``runs
    show`` browse it, ``runs diff`` compares two stored runs (spec
    deltas plus metric/counter/quantile deltas, and per-span
    self-time/peak-memory deltas when both runs were profiled, with
    ``--fail-on-regression`` for CI), ``runs export`` emits the exact
    stored ``RunResult`` JSON, ``runs gc`` trims old re-runs, and
    ``runs serve`` starts the stdlib web dashboard (including a per-run
    flame / top-spans view).
``profile``
    The sampling profiler (:mod:`repro.prof`).  Every executing
    subcommand takes ``--profile`` (and ``--profile-hz``) to sample
    stacks on a background thread and attribute CPU time and memory to
    the run's tracing spans; ``profile run`` executes a saved spec under
    the profiler with export switches (``--collapsed`` for
    flamegraph.pl input, ``--speedscope`` for speedscope.app JSON),
    ``profile report`` prints a stored run's top-spans / top-functions
    report, and ``profile export`` re-emits a stored profile in any of
    the three formats.
``lint``
    Project-invariant static analysis (:mod:`repro.lint`): ``repro lint``
    checks the paper's guarantees (seeded determinism, columnar parity,
    metric-catalogue discipline, spec round-trips, lock hygiene, CLI
    drift) over the source tree, with ``--json`` findings output, a
    checked-in baseline (``--update-baseline`` to accept), and
    ``--fail-on`` severity gating for CI.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from typing import Iterator, Sequence

from repro import __version__
from repro.detectors.pipeline import ENGINES
from repro.logs.writer import LogWriter
from repro.mitigation import list_policies, render_comparison
from repro.obs import logging_setup
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import METRIC_REFERENCE
from repro.obs.prometheus import render as render_prometheus
from repro.obs.prometheus import serve_metrics
from repro.runspec import (
    DEFAULT_SCENARIO,
    AdjudicationSpec,
    ExecutionSpec,
    PolicySpec,
    RunSpec,
    TrafficSpec,
    build_dataset,
    execute,
    load_runspec,
)
from repro.runstore import (
    DEFAULT_THRESHOLD,
    RUN_STORE_ENV,
    RunStore,
    diff_runs,
    serve_dashboard,
)
from repro.stream.engine import StreamEngine
from repro.trace import (
    DEFAULT_BLOCK_SIZE,
    import_clf,
    interleave_traces,
    trace_info,
    write_trace,
)
from repro.traffic.scenarios import get_scenario, list_scenarios


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-scrapeguard",
        description="Diverse detectors for malicious web scraping (DSN 2018 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared argument blocks.  ``json_parent`` gives every subcommand a
    # structured-output switch; ``scenario_parent`` carries the scenario
    # selection that generate/tables/evaluate/stream all take.
    json_parent = argparse.ArgumentParser(add_help=False)
    json_parent.add_argument(
        "--json", action="store_true", help="emit the structured result as JSON"
    )
    # ``obs_parent`` gives every executing subcommand the observability
    # switches: structured logging verbosity and a live Prometheus
    # endpoint served for the duration of the run.
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="enable structured key=value logging at this level",
    )
    obs_parent.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve a Prometheus /metrics endpoint on this port while the run executes (0 picks a free port)",
    )
    obs_parent.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "append the run's result and telemetry to this SQLite run store "
            f"(created on first use; defaults to ${RUN_STORE_ENV} when set)"
        ),
    )
    obs_parent.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile the run: sample stacks on a background thread and "
            "attribute CPU time and memory to the pipeline stages "
            "(the capture rides along in --json output and the run store)"
        ),
    )
    obs_parent.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="stack-sampling rate with --profile (default 97)",
    )
    scenario_parent = argparse.ArgumentParser(add_help=False)
    scenario_parent.add_argument(
        "--scenario", default=DEFAULT_SCENARIO, help="preset scenario name"
    )
    scenario_parent.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "fraction of the paper's data-set size, for scenarios that take a "
            f"scale (default 0.02 for {DEFAULT_SCENARIO})"
        ),
    )
    scenario_parent.add_argument("--seed", type=int, default=2018, help="simulation seed")

    generate = subparsers.add_parser(
        "generate",
        parents=[scenario_parent, json_parent],
        help="generate a synthetic access log",
    )
    generate.add_argument("--output", required=True, help="path of the access-log file to write")
    generate.add_argument("--labels", default=None, help="optional path for the ground-truth JSON")

    tables = subparsers.add_parser(
        "tables",
        parents=[scenario_parent, json_parent, obs_parent],
        help="reproduce the paper's tables",
    )
    tables.add_argument("--log-file", default=None, help="analyse an existing access log instead of generating one")
    tables.add_argument(
        "--engine",
        choices=ENGINES,
        default="columnar",
        help="batch pipeline engine (vectorized columnar substrate or legacy record path)",
    )
    tables.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the record frame by visitor across N worker processes (columnar engine)",
    )

    evaluate = subparsers.add_parser(
        "evaluate",
        parents=[scenario_parent, json_parent, obs_parent],
        help="labelled extension analyses",
    )
    evaluate.add_argument("--configurations", action="store_true", help="also compare parallel vs serial deployments")
    evaluate.add_argument(
        "--engine",
        choices=ENGINES,
        default="columnar",
        help="batch pipeline engine (vectorized columnar substrate or legacy record path)",
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the record frame by visitor across N worker processes (columnar engine)",
    )

    stream = subparsers.add_parser(
        "stream",
        parents=[scenario_parent, json_parent, obs_parent],
        help="replay traffic through the streaming engine",
    )
    stream.add_argument("--log-file", default=None, help="replay an existing access log instead of generating one")
    stream.add_argument("--shards", type=int, default=1, help="number of visitor-sharded engine workers")
    stream.add_argument(
        "--backend",
        choices=["thread", "process", "serial"],
        default="thread",
        help="sharded execution backend (with --shards > 1)",
    )
    stream.add_argument("--k", type=int, default=1, help="detector votes required to alert (k-out-of-4)")
    stream.add_argument("--window", type=float, default=300.0, help="adjudication window in seconds")
    stream.add_argument("--skew", type=float, default=0.0, help="reorder-buffer bound for out-of-order records (seconds)")
    stream.add_argument(
        "--progress-every",
        type=int,
        default=0,
        help="print live alert totals every N requests (single-shard runs only; 0 disables)",
    )
    stream.add_argument(
        "--track-latency",
        action="store_true",
        help="record per-request detection latency percentiles in the result",
    )

    defend = subparsers.add_parser(
        "defend",
        parents=[json_parent, obs_parent],
        help="closed-loop enforcement simulation",
    )
    defend.add_argument("--requests", type=int, default=6000, help="total request budget of the simulation")
    defend.add_argument("--seed", type=int, default=314, help="simulation seed")
    defend.add_argument(
        "--policy",
        choices=list_policies(),
        default="standard",
        help="enforcement policy preset",
    )
    defend.add_argument("--k", type=int, default=2, help="detector votes required to alert (k-out-of-4)")
    defend.add_argument(
        "--campaign",
        choices=["scripted", "adaptive", "both"],
        default="both",
        help="which scraping campaign to simulate (default: both, with a comparison)",
    )
    defend.add_argument(
        "--identities",
        type=int,
        default=8,
        help="identity pool size of each adaptive node (an n-identity node can rotate n-1 times before giving up)",
    )

    run = subparsers.add_parser(
        "run",
        parents=[json_parent, obs_parent],
        help="execute a saved run specification",
    )
    run.add_argument("--config", required=True, help="path of the RunSpec JSON file to execute")

    subparsers.add_parser(
        "scenarios",
        parents=[json_parent],
        help="list preset scenarios with their traffic mix",
    )

    obs = subparsers.add_parser(
        "obs",
        help="observability: metric reference catalog and telemetry dumps",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    dump = obs_commands.add_parser(
        "dump",
        parents=[json_parent],
        help="print the metric reference, or a run's full telemetry snapshot",
    )
    dump.add_argument(
        "--config",
        default=None,
        help="RunSpec JSON file to execute with a live registry (omit to print the metric reference)",
    )
    dump.add_argument(
        "--format",
        choices=["json", "prometheus"],
        default="json",
        help="telemetry output format (with --config)",
    )
    dump.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "append the executed run to this SQLite run store "
            f"(with --config; defaults to ${RUN_STORE_ENV} when set)"
        ),
    )

    trace = subparsers.add_parser(
        "trace",
        help="record, inspect, import and compose persistent trace files",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_commands.add_parser(
        "record",
        parents=[scenario_parent, json_parent],
        help="generate a scenario once and record it as a replayable trace",
    )
    record.add_argument("--output", required=True, help="path of the trace file to write")
    record.add_argument(
        "--block-size",
        type=int,
        default=DEFAULT_BLOCK_SIZE,
        help="records per columnar block (the unit of out-of-core replay)",
    )

    info = trace_commands.add_parser(
        "info",
        parents=[json_parent],
        help="print a trace's footer summary (O(1), no block is read)",
    )
    info.add_argument("trace", help="trace file to inspect")

    importer = trace_commands.add_parser(
        "import",
        parents=[json_parent],
        help="import Apache access logs (plain or .gz) into a trace",
    )
    importer.add_argument("logs", nargs="+", help="access-log files, oldest first")
    importer.add_argument("--output", required=True, help="path of the trace file to write")
    importer.add_argument(
        "--rotated",
        action="store_true",
        help="expand each input into its rotation set (access.log.N[.gz], oldest first)",
    )
    importer.add_argument(
        "--strict",
        action="store_true",
        help="fail on the first malformed line instead of counting and skipping it",
    )

    mix = trace_commands.add_parser(
        "mix",
        parents=[json_parent],
        help="interleave a recorded overlay (e.g. an attack) onto a recorded background",
    )
    mix.add_argument("--base", required=True, help="background trace")
    mix.add_argument("--overlay", required=True, help="overlay trace merged on top")
    mix.add_argument("--output", required=True, help="path of the mixed trace to write")
    mix.add_argument(
        "--shift",
        type=float,
        default=0.0,
        help="time-shift the overlay by this many seconds before merging",
    )
    mix.add_argument(
        "--sample",
        type=float,
        default=None,
        help="keep only this fraction of overlay records (0 < f <= 1)",
    )
    mix.add_argument("--seed", type=int, default=0, help="seed of the overlay sampling draw")

    # The run store (repro.runstore).  Every ``runs`` subcommand reads a
    # store named by --store or $REPRO_RUN_STORE.
    store_parent = argparse.ArgumentParser(add_help=False)
    store_parent.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=f"the SQLite run store to operate on (defaults to ${RUN_STORE_ENV})",
    )

    runs = subparsers.add_parser(
        "runs",
        help="browse, diff, export, trim and serve the persistent run store",
    )
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_commands.add_parser(
        "list",
        parents=[store_parent, json_parent],
        help="list stored runs, newest first",
    )
    runs_list.add_argument("--mode", default=None, help="only runs of this workload mode")
    runs_list.add_argument(
        "--series", default=None, metavar="HASH", help="only runs of this spec-hash series (prefix ok)"
    )
    runs_list.add_argument("--limit", type=int, default=None, help="show at most N runs")

    runs_show = runs_commands.add_parser(
        "show",
        parents=[store_parent, json_parent],
        help="one stored run: report by default, the exact RunResult dict with --json",
    )
    runs_show.add_argument("run_id", type=int, help="run id (see `runs list`)")

    runs_diff = runs_commands.add_parser(
        "diff",
        parents=[store_parent, json_parent],
        help=(
            "compare two stored runs: spec deltas plus "
            "metric/counter/quantile/profile deltas"
        ),
    )
    runs_diff.add_argument("left", type=int, help="baseline run id")
    runs_diff.add_argument("right", type=int, help="candidate run id")
    runs_diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative change above which a metric/counter delta is a regression",
    )
    runs_diff.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any delta exceeds the threshold (the CI gate)",
    )
    runs_diff.add_argument(
        "--all", action="store_true", help="print unchanged quantities too"
    )

    runs_export = runs_commands.add_parser(
        "export",
        parents=[store_parent],
        help="emit one stored run as its exact RunResult JSON",
    )
    runs_export.add_argument("run_id", type=int, help="run id (see `runs list`)")
    runs_export.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )

    runs_gc = runs_commands.add_parser(
        "gc",
        parents=[store_parent, json_parent],
        help="trim every spec series to its newest N runs and compact the file",
    )
    runs_gc.add_argument(
        "--keep", type=int, default=10, help="runs kept per spec series (newest first)"
    )

    runs_serve = runs_commands.add_parser(
        "serve",
        parents=[store_parent],
        help="serve the run-store web dashboard (stdlib http.server)",
    )
    runs_serve.add_argument("--port", type=int, default=0, help="port to bind (0 picks a free one)")
    runs_serve.add_argument("--host", default="127.0.0.1", help="address to bind")

    # The sampling profiler (repro.prof).
    profile = subparsers.add_parser(
        "profile",
        help="profile runs: flamegraph/speedscope exports and hot-span reports",
    )
    profile_commands = profile.add_subparsers(dest="profile_command", required=True)

    profile_run = profile_commands.add_parser(
        "run",
        parents=[json_parent],
        help="execute a saved run specification under the sampling profiler",
    )
    profile_run.add_argument(
        "--config", required=True, help="path of the RunSpec JSON file to execute"
    )
    profile_run.add_argument(
        "--hz", type=float, default=None, help="stack-sampling rate (default 97)"
    )
    profile_run.add_argument(
        "--no-memory",
        action="store_true",
        help="skip per-span memory attribution (CPU samples only)",
    )
    profile_run.add_argument(
        "--precise-memory",
        action="store_true",
        help=(
            "use tracemalloc for exact per-span traced bytes instead of "
            "resident-set reads (precise, but several times slower on "
            "allocation-heavy runs)"
        ),
    )
    profile_run.add_argument(
        "--top", type=int, default=10, help="rows per report table (default 10)"
    )
    profile_run.add_argument(
        "--collapsed",
        default=None,
        metavar="PATH",
        help="also write flamegraph.pl-compatible collapsed stacks to this file",
    )
    profile_run.add_argument(
        "--speedscope",
        default=None,
        metavar="PATH",
        help="also write a speedscope.app JSON profile to this file",
    )
    profile_run.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "append the profiled run (result, telemetry and profile) to this "
            f"SQLite run store (defaults to ${RUN_STORE_ENV} when set)"
        ),
    )

    profile_report = profile_commands.add_parser(
        "report",
        parents=[store_parent, json_parent],
        help="print a stored run's top-spans / top-functions profile report",
    )
    profile_report.add_argument("run_id", type=int, help="run id (see `runs list`)")
    profile_report.add_argument(
        "--top", type=int, default=10, help="rows per report table (default 10)"
    )

    profile_export = profile_commands.add_parser(
        "export",
        parents=[store_parent],
        help="emit a stored run's profile as collapsed stacks, speedscope or JSON",
    )
    profile_export.add_argument("run_id", type=int, help="run id (see `runs list`)")
    profile_export.add_argument(
        "--format",
        choices=["collapsed", "speedscope", "json"],
        default="collapsed",
        help="export format (default: collapsed stacks for flamegraph.pl)",
    )
    profile_export.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )

    lint = subparsers.add_parser(
        "lint",
        parents=[json_parent],
        help="check the project's paper invariants (repro.lint)",
    )
    lint.add_argument("--root", default=".", help="repository root to lint (default: .)")
    lint.add_argument(
        "--baseline",
        default=None,
        help="baseline file of accepted findings (default: [tool.repro-lint] baseline)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file entirely"
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline file and exit 0",
    )
    lint.add_argument(
        "--fail-on",
        choices=["info", "warning", "error"],
        default="warning",
        help="lowest severity that fails the run (default: warning)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="describe every registered rule and exit"
    )
    return parser


# ----------------------------------------------------------------------
# Spec builders (one per argparse namespace shape)
# ----------------------------------------------------------------------
def _traffic_spec(args: argparse.Namespace, *, log_file: str | None = None) -> TrafficSpec:
    """The traffic block shared by the scenario-driven subcommands."""
    scale = args.scale
    if scale is None and args.scenario == DEFAULT_SCENARIO:
        scale = 0.02
    # An explicit --scale is always forwarded; a scenario whose factory
    # does not take one rejects it loudly instead of ignoring it.
    return TrafficSpec(
        scenario=args.scenario,
        scale=scale,
        seed=args.seed,
        log_file=log_file,
    )


def _print_result(result, args: argparse.Namespace) -> None:
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
        _maybe_print_profile(result, args)


def _profile_options(args: argparse.Namespace):
    """The ``execute(profile=...)`` value of this invocation (None = off)."""
    if not getattr(args, "profile", False):
        return None
    hz = getattr(args, "profile_hz", None)
    return {"hz": hz} if hz is not None else True


def _maybe_print_profile(result, args: argparse.Namespace) -> None:
    """After a non-JSON report, append the profile summary when captured."""
    if getattr(args, "json", False) or not getattr(result, "profile", None):
        return
    from repro.prof import Profile

    print()
    print(Profile.from_dict(result.profile).render_report())


def _store_path(args: argparse.Namespace) -> str | None:
    """The run-store path of this invocation (flag beats environment)."""
    explicit = getattr(args, "store", None)
    return explicit or os.environ.get(RUN_STORE_ENV) or None


def _require_store_path(args: argparse.Namespace) -> str:
    path = _store_path(args)
    if path is None:
        raise SystemExit(
            f"no run store given: pass --store PATH or set ${RUN_STORE_ENV}"
        )
    return path


@contextlib.contextmanager
def _obs_session(args: argparse.Namespace) -> Iterator[MetricsRegistry]:
    """A live metrics registry for one CLI run.

    Every executing subcommand collects telemetry into a fresh registry
    (the snapshot rides along in the ``--json`` output as ``telemetry``);
    with ``--metrics-port`` the registry is additionally served as a
    Prometheus ``/metrics`` endpoint for the duration of the run.
    """
    registry = MetricsRegistry()
    server = None
    port = getattr(args, "metrics_port", None)
    if port is not None:
        server = serve_metrics(registry, port=port)
        if not getattr(args, "json", False):
            print(f"serving metrics at {server.url}")
    try:
        yield registry
    finally:
        if server is not None:
            server.close()


# ----------------------------------------------------------------------
# Subcommand handlers
# ----------------------------------------------------------------------
def _command_generate(args: argparse.Namespace) -> int:
    dataset = build_dataset(_traffic_spec(args))
    count = LogWriter().write_file(dataset.records, args.output)
    if args.labels:
        dataset.save_labels(args.labels)
    if args.json:
        print(
            json.dumps(
                {
                    "scenario": args.scenario,
                    "records": count,
                    "output": args.output,
                    "labels": args.labels,
                },
                indent=2,
            )
        )
        return 0
    print(f"wrote {count:,} log lines to {args.output}")
    if args.labels:
        print(f"wrote ground-truth labels to {args.labels}")
    return 0


def _command_tables(args: argparse.Namespace) -> int:
    spec = RunSpec(
        mode="tables",
        traffic=_traffic_spec(args, log_file=args.log_file),
        execution=ExecutionSpec(engine=args.engine, workers=args.workers),
    )
    with _obs_session(args) as registry:
        result = execute(
            spec, registry=registry, store=_store_path(args), profile=_profile_options(args)
        )
    _print_result(result, args)
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    spec = RunSpec(
        mode="evaluate",
        traffic=_traffic_spec(args),
        execution=ExecutionSpec(
            compare_configurations=args.configurations,
            engine=args.engine,
            workers=args.workers,
        ),
    )
    with _obs_session(args) as registry:
        result = execute(
            spec, registry=registry, store=_store_path(args), profile=_profile_options(args)
        )
    _print_result(result, args)
    return 0


def _progress_printer(progress_every: int):
    def report(engine: StreamEngine) -> None:
        totals = ", ".join(
            f"{name}={count:,}" for name, count in engine.stats.online_alerts.items()
        )
        print(
            f"  after {engine.stats.records:,} requests: {totals}, "
            f"ensemble={engine.stats.ensemble_alerts:,}, "
            f"window rate {engine.adjudicator.window_alert_rate():.1%}"
        )

    return report if progress_every else None


def _command_stream(args: argparse.Namespace) -> int:
    spec = RunSpec(
        mode="stream",
        traffic=_traffic_spec(args, log_file=args.log_file),
        adjudication=AdjudicationSpec(k=args.k, window_seconds=args.window),
        execution=ExecutionSpec(
            shards=args.shards,
            backend=args.backend,
            max_skew_seconds=args.skew,
            track_latency=args.track_latency,
            progress_every=args.progress_every,
        ),
    )
    progress = None
    if not args.json:
        if args.shards > 1 and args.progress_every:
            print("note: --progress-every applies to single-shard runs only")
        source = args.log_file or args.scenario
        print(
            f"streaming {source} through the engine "
            f"({args.shards} shard{'s' if args.shards != 1 else ''}, k={args.k}-out-of-4)"
        )
        progress = _progress_printer(args.progress_every)
    with _obs_session(args) as registry:
        result = execute(
            spec,
            progress=progress,
            registry=registry,
            store=_store_path(args),
            profile=_profile_options(args),
        )
    if not args.json:
        print()
    _print_result(result, args)
    return 0


def _defend_spec(args: argparse.Namespace, campaign: str) -> RunSpec:
    return RunSpec(
        mode="defend",
        traffic=TrafficSpec(
            campaign=campaign,
            total_requests=args.requests,
            seed=args.seed,
            identities_per_node=args.identities,
        ),
        adjudication=AdjudicationSpec(k=args.k, window_seconds=600.0),
        policy=PolicySpec(name=args.policy),
    )


def _command_defend(args: argparse.Namespace) -> int:
    campaigns = ["scripted", "adaptive"] if args.campaign == "both" else [args.campaign]
    results = {}
    # One registry for the whole command: with --campaign both the
    # counters are cumulative across campaigns, the Prometheus way.
    with _obs_session(args) as registry:
        for campaign in campaigns:
            if not args.json:
                print(
                    f"simulating the {campaign} campaign against the {args.policy!r} policy "
                    f"(~{args.requests:,} requests, k={args.k}-out-of-4) ..."
                )
            results[campaign] = execute(
                _defend_spec(args, campaign),
                registry=registry,
                store=_store_path(args),
                profile=_profile_options(args),
            )
            if not args.json:
                print()
                print(results[campaign].render())
                _maybe_print_profile(results[campaign], args)
                print()
    if args.json:
        print(
            json.dumps(
                {campaign: result.to_dict() for campaign, result in results.items()},
                indent=2,
            )
        )
    elif len(results) == 2:
        print(
            render_comparison(
                results["scripted"].raw["report"], results["adaptive"].raw["report"]
            )
        )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    handlers = {
        "record": _trace_record,
        "info": _trace_info,
        "import": _trace_import,
        "mix": _trace_mix,
    }
    return handlers[args.trace_command](args)


def _print_trace_info(info, args: argparse.Namespace) -> None:
    if args.json:
        print(json.dumps(info.to_dict(), indent=2))
    else:
        print(info.render())


def _trace_record(args: argparse.Namespace) -> int:
    dataset = build_dataset(_traffic_spec(args))
    info = write_trace(dataset, args.output, block_size=args.block_size)
    if not args.json:
        print(f"recorded {info.records:,} requests to {args.output}")
    _print_trace_info(info, args)
    return 0


def _trace_info(args: argparse.Namespace) -> int:
    _print_trace_info(trace_info(args.trace), args)
    return 0


def _trace_import(args: argparse.Namespace) -> int:
    report = import_clf(
        args.logs,
        args.output,
        rotated=args.rotated,
        skip_malformed=not args.strict,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(
        f"imported {report.parsed:,} of {report.total_lines:,} log lines "
        f"from {len(report.files)} file(s) ({report.skipped:,} skipped)"
    )
    assert report.trace is not None
    print(report.trace.render())
    return 0


def _trace_mix(args: argparse.Namespace) -> int:
    info = interleave_traces(
        args.base,
        args.overlay,
        args.output,
        shift_overlay_seconds=args.shift,
        sample_overlay=args.sample,
        seed=args.seed,
    )
    if not args.json:
        print(f"mixed {args.overlay} onto {args.base} -> {args.output}")
    _print_trace_info(info, args)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    spec = load_runspec(args.config)
    with _obs_session(args) as registry:
        result = execute(
            spec, registry=registry, store=_store_path(args), profile=_profile_options(args)
        )
    _print_result(result, args)
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    return {"dump": _obs_dump}[args.obs_command](args)


def _obs_dump(args: argparse.Namespace) -> int:
    if args.config is None:
        # No run to instrument: print the metric reference catalog.
        if args.json:
            print(
                json.dumps(
                    [
                        {"name": name, "kind": kind, "labels": labels, "help": help_text}
                        for name, kind, labels, help_text in METRIC_REFERENCE
                    ],
                    indent=2,
                )
            )
            return 0
        for name, kind, labels, help_text in METRIC_REFERENCE:
            print(f"{name} ({kind}; labels: {labels}): {help_text}")
        return 0
    spec = load_runspec(args.config)
    registry = MetricsRegistry()
    execute(spec, registry=registry, store=_store_path(args))
    if args.format == "prometheus":
        print(render_prometheus(registry), end="")
    else:
        print(json.dumps(registry.to_dict(), indent=2))
    return 0


def _command_runs(args: argparse.Namespace) -> int:
    handlers = {
        "list": _runs_list,
        "show": _runs_show,
        "diff": _runs_diff,
        "export": _runs_export,
        "gc": _runs_gc,
        "serve": _runs_serve,
    }
    return handlers[args.runs_command](args)


def _format_run_row(summary) -> str:
    label = f" [{summary.label}]" if summary.label else ""
    wall = "-" if summary.wall_seconds is None else f"{summary.wall_seconds:.2f}s"
    when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(summary.recorded_at))
    return (
        f"#{summary.run_id:<5} {summary.mode:<9} {summary.source:<24} "
        f"{summary.total_requests:>10,}  {wall:>8}  {when}  "
        f"{summary.spec_hash[:12]}{label}"
    )


def _runs_list(args: argparse.Namespace) -> int:
    with RunStore(_require_store_path(args), create=False) as store:
        summaries = store.list_runs(mode=args.mode, spec_hash=args.series, limit=args.limit)
        stats = store.stats()
    if args.json:
        print(
            json.dumps(
                {
                    "stats": stats.to_dict(),
                    "runs": [summary.to_dict() for summary in summaries],
                },
                indent=2,
            )
        )
        return 0
    if not summaries:
        print("run store is empty (record with --store on any executing subcommand)")
        return 0
    print(f"{stats.runs} run(s) over {stats.specs} spec(s):")
    print(
        f"{'run':<6} {'mode':<9} {'source':<24} {'requests':>10}  "
        f"{'wall':>8}  {'recorded':<19}  series"
    )
    for summary in summaries:
        print(_format_run_row(summary))
    return 0


def _runs_show(args: argparse.Namespace) -> int:
    with RunStore(_require_store_path(args), create=False) as store:
        summary = store.get(args.run_id)
        data = store.export(args.run_id)
    if args.json:
        # The exact stored RunResult.to_dict() -- the replay contract:
        # this output round-trips through every RunResult consumer.
        print(json.dumps(data, indent=2))
        return 0
    from repro.prof import Profile
    from repro.runspec.result import RunResult

    print(_format_run_row(summary))
    print()
    print(RunResult.from_dict(data).render())
    if data.get("profile"):
        print()
        print(Profile.from_dict(data["profile"]).render_report())
    return 0


def _runs_diff(args: argparse.Namespace) -> int:
    with RunStore(_require_store_path(args), create=False) as store:
        diff = diff_runs(store, args.left, args.right)
    regressions = diff.regressions(args.threshold)
    if args.json:
        payload = diff.to_dict()
        payload["threshold"] = args.threshold
        payload["regressions"] = [delta.to_dict() for delta in regressions]
        print(json.dumps(payload, indent=2))
    else:
        print(diff.render(threshold=args.threshold, all_deltas=args.all))
        if regressions:
            print()
            print(f"{len(regressions)} regression(s) beyond {args.threshold:.0%}:")
            for delta in regressions:
                change = "new" if delta.change == float("inf") else f"{delta.change:+.1%}"
                print(f"  {delta.name}: {delta.left:g} -> {delta.right:g} ({change})")
    if args.fail_on_regression and regressions:
        return 1
    return 0


def _runs_export(args: argparse.Namespace) -> int:
    with RunStore(_require_store_path(args), create=False) as store:
        data = store.export(args.run_id)
    text = json.dumps(data, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"exported run #{args.run_id} to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _runs_gc(args: argparse.Namespace) -> int:
    with RunStore(_require_store_path(args), create=False) as store:
        deleted = store.gc(keep_last=args.keep)
        remaining = len(store)
    if args.json:
        print(json.dumps({"deleted": deleted, "remaining": remaining, "keep": args.keep}, indent=2))
    else:
        print(f"deleted {deleted} run(s); {remaining} remain (keeping {args.keep} per series)")
    return 0


def _runs_serve(args: argparse.Namespace) -> int:
    server = serve_dashboard(_require_store_path(args), port=args.port, host=args.host)
    print(f"serving the run-store dashboard at {server.url} (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0
    finally:
        server.close()


def _command_profile(args: argparse.Namespace) -> int:
    handlers = {
        "run": _profile_run,
        "report": _profile_report,
        "export": _profile_export,
    }
    return handlers[args.profile_command](args)


def _profile_run(args: argparse.Namespace) -> int:
    from repro.prof import Profile

    spec = load_runspec(args.config)
    options: dict = {}
    if args.hz is not None:
        options["hz"] = args.hz
    if args.no_memory:
        options["memory"] = False
    if args.precise_memory:
        options["precise_memory"] = True
    result = execute(spec, store=_store_path(args), profile=options or True)
    assert result.profile is not None  # execute(profile=...) always captures
    profile = Profile.from_dict(result.profile)
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(profile.collapsed())
        print(f"wrote collapsed stacks to {args.collapsed}", file=sys.stderr)
    if args.speedscope:
        with open(args.speedscope, "w", encoding="utf-8") as handle:
            json.dump(profile.speedscope(os.path.basename(args.config)), handle)
            handle.write("\n")
        print(f"wrote speedscope profile to {args.speedscope}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.profile, indent=2))
    else:
        print(result.render())
        print()
        print(profile.render_report(limit=args.top))
    return 0


def _stored_profile(args: argparse.Namespace):
    from repro.prof import Profile

    with RunStore(_require_store_path(args), create=False) as store:
        stored = store.profile(args.run_id)
    if stored is None:
        raise SystemExit(
            f"run #{args.run_id} has no profile; re-run with --profile to capture one"
        )
    return stored, Profile.from_dict(stored)


def _profile_report(args: argparse.Namespace) -> int:
    stored, profile = _stored_profile(args)
    if args.json:
        print(json.dumps(stored, indent=2))
    else:
        print(profile.render_report(limit=args.top))
    return 0


def _profile_export(args: argparse.Namespace) -> int:
    stored, profile = _stored_profile(args)
    if args.format == "collapsed":
        text = profile.collapsed()
    elif args.format == "speedscope":
        text = json.dumps(profile.speedscope(f"run #{args.run_id}")) + "\n"
    else:
        text = json.dumps(stored, indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"exported run #{args.run_id} profile to {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _command_scenarios(args: argparse.Namespace) -> int:
    if args.json:
        listing = []
        for name in list_scenarios():
            scenario = get_scenario(name)
            listing.append(
                {
                    "name": name,
                    "total_requests": scenario.total_requests,
                    "days": scenario.window.days,
                    "mix": dict(scenario.mix),
                }
            )
        print(json.dumps(listing, indent=2))
        return 0
    for name in list_scenarios():
        scenario = get_scenario(name)
        mix = " ".join(
            f"{traffic_class}={fraction:.4f}".rstrip("0").rstrip(".")
            for traffic_class, fraction in scenario.mix.items()
        )
        print(f"{name}: {mix}")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint import available_rules, load_config, run_lint, write_baseline
    from repro.lint.config import replace_baseline

    if args.list_rules:
        rules = available_rules()
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "rule": rule.rule_id,
                            "severity": rule.severity,
                            "summary": rule.summary,
                            "fix": rule.autofix_hint,
                        }
                        for rule in rules
                    ],
                    indent=2,
                )
            )
            return 0
        for rule in rules:
            print(f"{rule.rule_id} [{rule.severity}] {rule.summary}")
            if rule.autofix_hint:
                print(f"    fix: {rule.autofix_hint}")
        return 0

    config = load_config(args.root)
    if args.no_baseline:
        config = replace_baseline(config, None)
    elif args.baseline is not None:
        config = replace_baseline(config, args.baseline)

    if args.update_baseline:
        if config.baseline is None:
            raise SystemExit("--update-baseline needs a baseline path (not --no-baseline)")
        report = run_lint(args.root, config=config, baseline=set())
        count = write_baseline(
            os.path.join(args.root, config.baseline), report.findings
        )
        if not args.json:
            print(f"baseline {config.baseline}: {count} accepted finding(s)")
        return 0

    report = run_lint(args.root, config=config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        counts = report.counts()
        summary = (
            ", ".join(f"{counts[s]} {s}(s)" for s in ("error", "warning", "info") if s in counts)
            or "no findings"
        )
        print(
            f"checked {report.checked_files} file(s): {summary}"
            + (f", {len(report.baselined)} baselined" if report.baselined else "")
            + (f", {report.suppressed} suppressed" if report.suppressed else "")
        )
        for fingerprint in report.stale_baseline:
            print(f"note: stale baseline entry (fixed? run --update-baseline): {fingerprint}")
    return 1 if report.worst_at_or_above(args.fail_on) else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_level", None):
        logging_setup(args.log_level)
    handlers = {
        "generate": _command_generate,
        "tables": _command_tables,
        "evaluate": _command_evaluate,
        "stream": _command_stream,
        "defend": _command_defend,
        "run": _command_run,
        "scenarios": _command_scenarios,
        "obs": _command_obs,
        "trace": _command_trace,
        "runs": _command_runs,
        "profile": _command_profile,
        "lint": _command_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
