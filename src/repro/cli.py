"""Command-line interface (``repro-scrapeguard``).

Subcommands
-----------
``generate``
    Generate the synthetic access log for a scenario and write it to disk
    as an Apache combined-log-format file (plus a JSON label file).
``tables``
    Run the two stand-in tools on a scenario (or an existing log file) and
    print the reproduction of the paper's Tables 1-4.
``evaluate``
    Print the labelled extension analyses: per-tool sensitivity /
    specificity, the k-out-of-2 adjudication schemes and the parallel vs
    serial configuration comparison.
``stream``
    Replay a scenario (or an existing log file) through the real-time
    streaming engine (:mod:`repro.stream`): live alert totals while the
    stream runs, then a final Table-1-style summary with the adjudicated
    ensemble verdict and throughput.
``defend``
    Run the closed-loop enforcement simulation (:mod:`repro.mitigation`):
    a scraping campaign against the enforcement gateway, reported as a
    Table-5-style summary (time-to-block, attacker cost, savings,
    collateral damage), optionally contrasting the scripted campaign
    with its adaptive variant.
``scenarios``
    List the available preset scenarios with their traffic mix.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.core.configurations import compare_configurations
from repro.mitigation import (
    build_report,
    get_policy,
    list_policies,
    render_comparison,
    render_mitigation_report,
    run_defense,
)
from repro.core.evaluation import per_actor_class_detection
from repro.core.experiment import PaperExperiment
from repro.core.reporting import render_evaluation_rows
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.logs.dataset import Dataset
from repro.logs.parser import LogParser
from repro.logs.writer import LogWriter
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import get_scenario, list_scenarios


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-scrapeguard",
        description="Diverse detectors for malicious web scraping (DSN 2018 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic access log")
    generate.add_argument("--scenario", default="amadeus_march_2018", help="preset scenario name")
    generate.add_argument("--scale", type=float, default=0.02, help="fraction of the paper's data-set size")
    generate.add_argument("--seed", type=int, default=2018, help="simulation seed")
    generate.add_argument("--output", required=True, help="path of the access-log file to write")
    generate.add_argument("--labels", default=None, help="optional path for the ground-truth JSON")

    tables = subparsers.add_parser("tables", help="reproduce the paper's tables")
    tables.add_argument("--scenario", default="amadeus_march_2018", help="preset scenario name")
    tables.add_argument("--scale", type=float, default=0.02, help="fraction of the paper's data-set size")
    tables.add_argument("--seed", type=int, default=2018, help="simulation seed")
    tables.add_argument("--log-file", default=None, help="analyse an existing access log instead of generating one")

    evaluate = subparsers.add_parser("evaluate", help="labelled extension analyses")
    evaluate.add_argument("--scenario", default="amadeus_march_2018", help="preset scenario name")
    evaluate.add_argument("--scale", type=float, default=0.02, help="fraction of the paper's data-set size")
    evaluate.add_argument("--seed", type=int, default=2018, help="simulation seed")
    evaluate.add_argument("--configurations", action="store_true", help="also compare parallel vs serial deployments")

    stream = subparsers.add_parser("stream", help="replay traffic through the streaming engine")
    stream.add_argument("--scenario", default="amadeus_march_2018", help="preset scenario name")
    stream.add_argument("--scale", type=float, default=0.02, help="fraction of the paper's data-set size")
    stream.add_argument("--seed", type=int, default=2018, help="simulation seed")
    stream.add_argument("--log-file", default=None, help="replay an existing access log instead of generating one")
    stream.add_argument("--shards", type=int, default=1, help="number of visitor-sharded engine workers")
    stream.add_argument(
        "--backend",
        choices=["thread", "process", "serial"],
        default="thread",
        help="sharded execution backend (with --shards > 1)",
    )
    stream.add_argument("--k", type=int, default=1, help="detector votes required to alert (k-out-of-4)")
    stream.add_argument("--window", type=float, default=300.0, help="adjudication window in seconds")
    stream.add_argument("--skew", type=float, default=0.0, help="reorder-buffer bound for out-of-order records (seconds)")
    stream.add_argument(
        "--progress-every",
        type=int,
        default=0,
        help="print live alert totals every N requests (single-shard runs only; 0 disables)",
    )

    defend = subparsers.add_parser("defend", help="closed-loop enforcement simulation")
    defend.add_argument("--requests", type=int, default=6000, help="total request budget of the simulation")
    defend.add_argument("--seed", type=int, default=314, help="simulation seed")
    defend.add_argument(
        "--policy",
        choices=list_policies(),
        default="standard",
        help="enforcement policy preset",
    )
    defend.add_argument("--k", type=int, default=2, help="detector votes required to alert (k-out-of-4)")
    defend.add_argument(
        "--campaign",
        choices=["scripted", "adaptive", "both"],
        default="both",
        help="which scraping campaign to simulate (default: both, with a comparison)",
    )
    defend.add_argument(
        "--identities",
        type=int,
        default=8,
        help="identity pool size of each adaptive node (an n-identity node can rotate n-1 times before giving up)",
    )

    subparsers.add_parser("scenarios", help="list preset scenarios with their traffic mix")
    return parser


def _scenario_dataset(args: argparse.Namespace) -> Dataset:
    scenario_kwargs = {"seed": args.seed}
    if args.scenario == "amadeus_march_2018":
        scenario_kwargs["scale"] = args.scale
    scenario = get_scenario(args.scenario, **scenario_kwargs)
    return generate_dataset(scenario)


def _command_generate(args: argparse.Namespace) -> int:
    dataset = _scenario_dataset(args)
    count = LogWriter().write_file(dataset.records, args.output)
    print(f"wrote {count:,} log lines to {args.output}")
    if args.labels:
        dataset.save_labels(args.labels)
        print(f"wrote ground-truth labels to {args.labels}")
    return 0


def _command_tables(args: argparse.Namespace) -> int:
    if args.log_file:
        records = LogParser(skip_malformed=True).parse_file(args.log_file)
        dataset = Dataset(records)
    else:
        dataset = _scenario_dataset(args)
    result = PaperExperiment().run_on(dataset)
    print(result.render_all())
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    dataset = _scenario_dataset(args)
    result = PaperExperiment().run_on(dataset)

    rows = [evaluation.as_dict() for evaluation in result.tool_evaluations]
    print(render_evaluation_rows(rows, title="Per-tool labelled evaluation"))
    print()
    rows = [evaluation.as_dict() for evaluation in result.adjudication_evaluations]
    print(render_evaluation_rows(rows, title="Adjudication schemes (k-out-of-2)"))
    print()
    commercial_rates = per_actor_class_detection(dataset, result.matrix.alerted_by(result.matrix.detector_names[0]))
    inhouse_rates = per_actor_class_detection(dataset, result.matrix.alerted_by(result.matrix.detector_names[1]))
    rows = [
        {"actor_class": actor, "commercial": commercial_rates[actor], "inhouse": inhouse_rates[actor]}
        for actor in commercial_rates
    ]
    print(render_evaluation_rows(rows, title="Detection rate per actor class"))

    if args.configurations:
        print()
        comparison = compare_configurations(dataset, CommercialBotDefenceDetector(), InHouseHeuristicDetector())
        rows = []
        for outcome in comparison.outcomes:
            row = {
                "configuration": outcome.name,
                "alerts": outcome.alert_count,
                "workload": outcome.total_workload,
            }
            if outcome.confusion is not None:
                row["sensitivity"] = outcome.confusion.sensitivity()
                row["specificity"] = outcome.confusion.specificity()
            rows.append(row)
        print(render_evaluation_rows(rows, title="Parallel vs serial configurations"))
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    from repro.core.reporting import render_table1
    from repro.stream import (
        ShardedStreamRunner,
        StreamEngine,
        WindowedAdjudicator,
        dataset_replay,
        default_online_detectors,
    )

    if args.shards < 1:
        from repro.exceptions import DetectorError

        raise DetectorError("--shards must be at least 1")
    if args.log_file:
        records = LogParser(skip_malformed=True).parse_file(args.log_file)
        dataset = Dataset(records)
    else:
        dataset = _scenario_dataset(args)
    source_name = args.log_file or dataset.metadata.name

    detectors = default_online_detectors()
    names = [detector.name for detector in detectors]

    def engine_factory() -> StreamEngine:
        return StreamEngine(
            default_online_detectors(),
            adjudicator=WindowedAdjudicator(names, k=args.k, window_seconds=args.window),
            max_skew_seconds=args.skew,
        )

    print(f"streaming {len(dataset):,} requests from {source_name} "
          f"({args.shards} shard{'s' if args.shards != 1 else ''}, k={args.k}-out-of-{len(names)})")

    if args.shards > 1:
        if args.progress_every:
            print("note: --progress-every applies to single-shard runs only")
        runner = ShardedStreamRunner(engine_factory, shards=args.shards, backend=args.backend)
        result = runner.run(dataset_replay(dataset))
    else:
        engine = engine_factory()
        engine.reset()
        # Milestone-based progress: with a reorder buffer (--skew) one
        # process() call can release zero or several records, so a plain
        # modulo check would skip or repeat milestones.
        next_progress = args.progress_every or float("inf")
        for record in dataset_replay(dataset):
            engine.process(record)
            if engine.stats.records >= next_progress:
                totals = ", ".join(
                    f"{name}={count:,}" for name, count in engine.stats.online_alerts.items()
                )
                print(
                    f"  after {engine.stats.records:,} requests: {totals}, "
                    f"ensemble={engine.stats.ensemble_alerts:,}, "
                    f"window rate {engine.adjudicator.window_alert_rate():.1%}"
                )
                next_progress = (
                    engine.stats.records // args.progress_every + 1
                ) * args.progress_every
        result = engine.finish()

    print()
    print(
        render_table1(
            len(dataset),
            result.alert_counts(),
            title="Streaming Table 1 - HTTP requests alerted by the online detectors",
        )
    )
    if result.adjudication is not None:
        print(
            f"\nadjudicated ({result.adjudication.scheme_name}): "
            f"{result.adjudication.alert_count:,} of {len(dataset):,} requests alerted "
            f"({result.adjudication.alert_rate():.1%})"
        )
    print(
        f"sessions: {result.stats.sessions_closed:,} closed; "
        f"throughput: {result.stats.records_per_second():,.0f} requests/sec"
    )
    return 0


def _command_defend(args: argparse.Namespace) -> int:
    policy = get_policy(args.policy)
    campaigns = ["scripted", "adaptive"] if args.campaign == "both" else [args.campaign]
    reports = {}
    for campaign in campaigns:
        print(
            f"simulating the {campaign} campaign against the {policy.name!r} policy "
            f"(~{args.requests:,} requests, k={args.k}-out-of-4) ..."
        )
        result = run_defense(
            total_requests=args.requests,
            adaptive=campaign == "adaptive",
            policy=policy,
            seed=args.seed,
            k=args.k,
            identities_per_node=args.identities,
        )
        reports[campaign] = build_report(result, policy_name=policy.name)
        print()
        print(
            render_mitigation_report(
                reports[campaign],
                title=f"Table 5 - Closed-loop enforcement outcomes ({campaign} campaign)",
            )
        )
        print()
    if len(reports) == 2:
        print(render_comparison(reports["scripted"], reports["adaptive"]))
    return 0


def _command_scenarios(_: argparse.Namespace) -> int:
    for name in list_scenarios():
        scenario = get_scenario(name)
        mix = " ".join(
            f"{traffic_class}={fraction:.4f}".rstrip("0").rstrip(".")
            for traffic_class, fraction in scenario.mix.items()
        )
        print(f"{name}: {mix}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "tables": _command_tables,
        "evaluate": _command_evaluate,
        "stream": _command_stream,
        "defend": _command_defend,
        "scenarios": _command_scenarios,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
