"""Lightweight tracing spans: nested, attributed stage timings.

A span is one timed stage of a run::

    with trace_span("sessionize", registry, records=len(dataset)) as span:
        ...
        span.set_attribute(sessions=len(sessions))

Spans nest: a span opened while another is active on the same thread
becomes its child, so a run exports a *span tree* (roots in
``registry.spans``) that shows where the time went, stage by stage.
Every span exit also feeds the :data:`~repro.obs.names.STAGE_SECONDS`
histogram (labelled ``stage=<name>``), which is where the uniform
per-stage ``timings`` view of every workload comes from.

With the :data:`~repro.obs.metrics.NULL_REGISTRY` the context manager
yields a shared inert span and records nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Protocol

from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.obs.names import STAGE_SECONDS


class SpanHook(Protocol):
    """Observer of span boundaries (see :meth:`MetricsRegistry.add_span_hook`).

    Hooks see every span enter/exit with the span's full *path* -- the
    tuple of names from the root span down (``("tables", "sessionize")``)
    -- which is the correlation key the profiler uses to attribute CPU
    samples and allocations to pipeline stages.  Hook calls happen on
    the instrumented thread, inline with the workload: implementations
    must be cheap and must not raise.
    """

    def span_opened(self, path: tuple[str, ...]) -> None:
        """Called after a span is pushed, before its body runs."""

    def span_closed(self, span: "Span", path: tuple[str, ...]) -> None:
        """Called after a span's body finished and its duration is set."""


@dataclass
class Span:
    """One completed (or in-flight) timed stage."""

    name: str
    start: float = 0.0
    duration: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def set_attribute(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The span subtree as JSON-ready nested dictionaries."""
        data: dict[str, Any] = {"name": self.name, "duration": self.duration}
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            duration=data.get("duration", 0.0),
            attributes=dict(data.get("attributes", {})),
            children=[cls.from_dict(child) for child in data.get("children", [])],
        )

    def render(self, indent: int = 0) -> str:
        """A human-readable indented tree of the span and its children."""
        attrs = "".join(f" {key}={value}" for key, value in sorted(self.attributes.items()))
        lines = [f"{'  ' * indent}{self.name}: {self.duration:.4f}s{attrs}"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


class _NullSpan:
    """The inert span the null registry hands out."""

    name = ""
    duration = 0.0
    attributes: dict[str, Any] = {}
    children: list[Any] = []

    def set_attribute(self, **attributes: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


@contextmanager
def trace_span(
    name: str, registry: MetricsRegistry | None = None, **attributes: Any
) -> Iterator[Span]:
    """Time a stage as a span in ``registry``'s span tree.

    The span nests under whichever span is currently open on this thread
    (per registry), lands in ``registry.spans`` when it is a root, and
    its duration feeds the ``repro_stage_seconds`` histogram labelled
    with the stage name.  Keyword arguments become span attributes.
    """
    registry = resolve_registry(registry)
    if not registry.enabled:
        yield _NULL_SPAN  # type: ignore[misc]
        return
    span = Span(name=name, attributes=dict(attributes))
    stack = registry._span_stack()
    stack.append(span)
    path = tuple(entry.name for entry in stack)
    ident = threading.get_ident()
    registry._span_paths[ident] = path
    for hook in registry._span_hooks:
        hook.span_opened(path)
    span.start = time.perf_counter()
    try:
        yield span
    finally:
        span.duration = time.perf_counter() - span.start
        stack.pop()
        if stack:
            stack[-1].children.append(span)
            registry._span_paths[ident] = path[:-1]
        else:
            registry.spans.append(span)
            registry._span_paths.pop(ident, None)
        for hook in registry._span_hooks:
            hook.span_closed(span, path)
        registry.histogram(
            STAGE_SECONDS, "Duration of every traced pipeline stage."
        ).observe(span.duration, stage=name)
