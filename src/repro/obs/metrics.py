"""Process-local metrics: counters, gauges, histograms, one registry.

The registry is the unit of observability: every run owns (or is handed)
a :class:`MetricsRegistry`, instrumentation points create named
instruments through it (`counter` / `gauge` / `histogram` are
get-or-create, so call sites never coordinate), and a finished run
snapshots the whole registry into a JSON-round-tripping dictionary
(:meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.from_dict`).

Design points:

* **Injectable, no library globals.**  Every instrumented component
  takes an optional ``registry`` parameter; ``None`` resolves to the
  shared :data:`NULL_REGISTRY`, whose instruments are single no-op
  objects, so uninstrumented hot paths cost one attribute load and a
  no-op call.  The CLI owns the one "default registry" per invocation.
* **Labels.**  Every instrument accepts keyword labels at the
  observation site (``counter.inc(3, detector="inhouse")``); each label
  combination is an independent series, exactly like Prometheus children.
* **Histograms** use fixed exponential bucket bounds shared by every
  series of one histogram, which makes snapshots mergeable across
  processes/shards (bucket-wise addition) and quantile estimates
  (p50/p95/p99) cheap: walk the cumulative counts and interpolate inside
  the target bucket, clamped to the observed min/max.
* **Thread safety.**  One lock per registry guards every mutation; the
  streaming thread backend feeds shards from worker threads.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator, Mapping

if TYPE_CHECKING:
    from contextlib import AbstractContextManager

    from repro.obs.spans import Span, SpanHook

from repro.exceptions import ObsError
from repro.obs.names import STAGE_SECONDS

#: Default histogram bounds: exponential, 1 microsecond .. ~134 seconds.
#: Chosen for durations (the library's dominant histogram use); a custom
#: ``bounds=`` serves other distributions.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2**i for i in range(28))


def exponential_bounds(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` strictly increasing bucket bounds: ``start * factor**i``.

    The convenience constructor for custom histogram boundaries
    (``registry.histogram(name, bounds=exponential_bounds(1024, 4, 16))``
    covers 1 KiB .. 1 TiB), so distributions that the duration-shaped
    :data:`DEFAULT_BOUNDS` would clip -- byte sizes, request counts --
    get buckets that actually resolve their quantiles.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ObsError(
            "exponential_bounds needs start > 0, factor > 1 and count >= 1, "
            f"got start={start}, factor={factor}, count={count}"
        )
    return tuple(start * factor**i for i in range(count))

_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of one label set (order-insensitive)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared shape of every metric: name, kind, help, labelled series."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "", *, lock: threading.Lock | None = None) -> None:
        self.name = name
        self.help = help
        self._lock = lock or threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}

    # ------------------------------------------------------------------
    def series(self) -> Iterator[tuple[dict[str, str], Any]]:
        """Every ``(labels, value)`` pair, sorted by label key."""
        for key in sorted(self._series):
            yield dict(key), self._series[key]

    def __len__(self) -> int:
        return len(self._series)


class Counter(_Instrument):
    """A monotonically increasing count of events."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels: str) -> None:
        """Count ``amount`` events (must be non-negative)."""
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> int | float:
        """The current count of one label series (0 when never hit)."""
        return self._series.get(_label_key(labels), 0)

    def total(self) -> int | float:
        """The count summed over every label series."""
        return sum(self._series.values())


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, open sessions)."""

    kind = "gauge"

    def set(self, value: int | float, **labels: str) -> None:
        """Set the gauge of one label series."""
        with self._lock:
            self._series[_label_key(labels)] = value

    def inc(self, amount: int | float = 1, **labels: str) -> None:
        """Add ``amount`` (may be negative) to one label series."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: int | float = 1, **labels: str) -> None:
        """Subtract ``amount`` from one label series."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> int | float:
        """The current value of one label series (0 when never set)."""
        return self._series.get(_label_key(labels), 0)


class _HistogramSeries:
    """One label combination's distribution state."""

    __slots__ = ("buckets", "sum", "count", "min", "max")

    def __init__(self, bound_count: int) -> None:
        # One slot per finite bound plus the overflow bucket.
        self.buckets = [0] * (bound_count + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Instrument):
    """A distribution over fixed exponential buckets with quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        bounds: tuple[float, ...] | None = None,
        lock: threading.Lock | None = None,
    ) -> None:
        super().__init__(name, help, lock=lock)
        bounds = DEFAULT_BOUNDS if bounds is None else tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ObsError(f"histogram {self.name!r} needs strictly increasing bounds")
        self.bounds = bounds

    # ------------------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        # Exponential bounds are few (28 by default); a linear scan with
        # an early exit beats bisect's call overhead for small values,
        # which dominate duration observations.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def observe(self, value: int | float, **labels: str) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            series.buckets[self._bucket_index(value)] += 1
            series.sum += value
            series.count += 1
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    # ------------------------------------------------------------------
    def _get(self, labels: Mapping[str, str]) -> _HistogramSeries | None:
        return self._series.get(_label_key(labels))

    def count(self, **labels: str) -> int:
        """Number of observations in one label series."""
        series = self._get(labels)
        return 0 if series is None else series.count

    def sum(self, **labels: str) -> float:
        """Sum of all observations in one label series."""
        series = self._get(labels)
        return 0.0 if series is None else series.sum

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the ``q``-quantile of one label series.

        Walks the cumulative bucket counts to the target rank and
        interpolates linearly inside the bucket, clamping the bucket
        edges to the observed min/max (so a single observation reports
        itself exactly, and the top bucket never extrapolates past the
        largest value seen).
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be within [0, 1], got {q}")
        series = self._get(labels)
        if series is None or series.count == 0:
            return 0.0
        target = q * series.count
        cumulative = 0.0
        for index, bucket_count in enumerate(series.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                low = self.bounds[index - 1] if index > 0 else series.min
                high = self.bounds[index] if index < len(self.bounds) else series.max
                low = max(low, series.min)
                high = min(high, series.max)
                if high <= low:
                    return low
                fraction = max(0.0, target - cumulative) / bucket_count
                return low + (high - low) * fraction
            cumulative += bucket_count
        return series.max

    def percentiles(self, **labels: str) -> dict[str, float]:
        """The standard p50/p95/p99/p999 summary of one label series."""
        return {
            "p50": self.quantile(0.50, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
            "p999": self.quantile(0.999, **labels),
        }


class MetricsRegistry:
    """The process-local home of every instrument of one run.

    Instruments are get-or-create by name: two call sites asking for the
    same counter share the same object; asking for an existing name with
    a different kind (or different histogram bounds) fails loudly.
    """

    #: False only on :class:`NullRegistry`: instrumentation points that
    #: would pay per-event overhead (per-record timers) check this flag.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}
        #: Completed root spans, in completion order (see repro.obs.spans).
        self.spans: list[Any] = []
        self._span_stacks = threading.local()
        #: thread ident -> the tuple of span names currently open on that
        #: thread (root first).  Written by ``trace_span`` on the owning
        #: thread only; read cross-thread by the sampling profiler, which
        #: is safe because tuple replacement is atomic under the GIL.
        self._span_paths: dict[int, tuple[str, ...]] = {}
        self._span_hooks: list[SpanHook] = []

    # ------------------------------------------------------------------
    def _get_or_create(self, cls: type[Any], name: str, help: str, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, lock=self._lock, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls) or type(metric) is not cls:
            raise ObsError(
                f"metric {name!r} already registered as a {metric.kind}, "
                f"requested as a {cls.kind}"
            )
        if cls is Histogram:
            bounds = kwargs.get("bounds")
            if bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
                raise ObsError(f"histogram {name!r} already registered with other bounds")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", *, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """Get or create a histogram (bounds fixed at first creation)."""
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    # ------------------------------------------------------------------
    def metrics(self) -> list[_Instrument]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> _Instrument | None:
        """One instrument by name, or ``None``."""
        return self._metrics.get(name)

    def span(self, name: str, **attributes: Any) -> AbstractContextManager[Span]:
        """Open a traced stage span (see :func:`repro.obs.spans.trace_span`)."""
        from repro.obs.spans import trace_span

        return trace_span(name, registry=self, **attributes)

    def _span_stack(self) -> list[Any]:
        stack = getattr(self._span_stacks, "stack", None)
        if stack is None:
            stack = self._span_stacks.stack = []
        return stack

    # ------------------------------------------------------------------
    def add_span_hook(self, hook: SpanHook) -> None:
        """Observe every span enter/exit (see :class:`repro.obs.spans.SpanHook`)."""
        with self._lock:
            if hook not in self._span_hooks:
                self._span_hooks = [*self._span_hooks, hook]

    def remove_span_hook(self, hook: SpanHook) -> None:
        """Stop observing span boundaries (unknown hooks are ignored)."""
        with self._lock:
            self._span_hooks = [h for h in self._span_hooks if h is not hook]

    def active_span_paths(self) -> dict[int, tuple[str, ...]]:
        """thread ident -> the span path currently open on that thread.

        A point-in-time snapshot (threads between spans are absent); this
        is the correlation surface the sampling profiler reads to
        attribute each captured stack to the stage it ran under.
        """
        return {ident: path for ident, path in self._span_paths.items() if path}

    # ------------------------------------------------------------------
    def stage_timings(self) -> dict[str, float]:
        """Total seconds per traced stage -- the derived ``timings`` view.

        Reads the :data:`~repro.obs.names.STAGE_SECONDS` histogram every
        span exit feeds, so any workload instrumented with spans reports
        per-stage timings uniformly, batch and stream alike.
        """
        stage_hist = self._metrics.get(STAGE_SECONDS)
        if not isinstance(stage_hist, Histogram):
            return {}
        timings: dict[str, float] = {}
        for labels, series in stage_hist.series():
            stage = labels.get("stage")
            if stage is not None:
                timings[stage] = timings.get(stage, 0.0) + series.sum
        return timings

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The whole registry as a JSON-ready snapshot (round-trips)."""
        metrics: dict[str, Any] = {}
        with self._lock:
            instruments = dict(self._metrics)
            spans = list(self.spans)
        for name in sorted(instruments):
            metric = instruments[name]
            entry: dict[str, Any] = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
                entry["series"] = [
                    {
                        "labels": labels,
                        "buckets": list(series.buckets),
                        "sum": series.sum,
                        "count": series.count,
                        "min": series.min if series.count else None,
                        "max": series.max if series.count else None,
                    }
                    for labels, series in metric.series()
                ]
            else:
                entry["series"] = [
                    {"labels": labels, "value": value} for labels, value in metric.series()
                ]
            metrics[name] = entry
        return {
            "format": "repro-obs",
            "version": 1,
            "metrics": metrics,
            "spans": [span.to_dict() for span in spans],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        from repro.obs.spans import Span

        if not isinstance(data, Mapping):
            raise ObsError(f"a metrics snapshot must be a mapping, got {type(data).__name__}")
        if data.get("format") != "repro-obs":
            raise ObsError("not a repro-obs metrics snapshot (missing format marker)")
        registry = cls()
        registry.merge(data)
        registry.spans = [Span.from_dict(span) for span in data.get("spans", [])]
        return registry

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot into this registry (counters/histograms add).

        Gauges take the snapshot's value (last write wins); histogram
        bounds must match.  This is how per-shard or per-process metric
        state aggregates into one registry, and how tooling sums
        snapshots across runs.
        """
        try:
            metrics = snapshot["metrics"]
        except (KeyError, TypeError) as exc:
            raise ObsError("metrics snapshot has no 'metrics' section") from exc
        for name, entry in metrics.items():
            kind = entry.get("kind")
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""))
                for series in entry.get("series", []):
                    counter.inc(series["value"], **series.get("labels", {}))
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""))
                for series in entry.get("series", []):
                    gauge.set(series["value"], **series.get("labels", {}))
            elif kind == "histogram":
                bounds = tuple(float(b) for b in entry.get("bounds", ()))
                histogram = self.histogram(name, entry.get("help", ""), bounds=bounds or None)
                if bounds and bounds != histogram.bounds:
                    raise ObsError(f"cannot merge histogram {name!r}: bucket bounds differ")
                for series in entry.get("series", []):
                    self._merge_histogram_series(histogram, series)
            else:
                raise ObsError(f"metric {name!r} has unknown kind {kind!r}")

    @staticmethod
    def _merge_histogram_series(histogram: Histogram, data: Mapping[str, Any]) -> None:
        key = _label_key(data.get("labels", {}))
        buckets = list(data["buckets"])
        if len(buckets) != len(histogram.bounds) + 1:
            raise ObsError(f"histogram {histogram.name!r} snapshot has wrong bucket count")
        with histogram._lock:
            series = histogram._series.get(key)
            if series is None:
                series = histogram._series[key] = _HistogramSeries(len(histogram.bounds))
            for index, count in enumerate(buckets):
                series.buckets[index] += count
            series.sum += data.get("sum", 0.0)
            series.count += data.get("count", 0)
            if data.get("min") is not None:
                series.min = min(series.min, data["min"])
            if data.get("max") is not None:
                series.max = max(series.max, data["max"])


# ----------------------------------------------------------------------
# The disabled registry: one shared no-op of everything
# ----------------------------------------------------------------------
class _NullInstrument:
    """A single object answering every instrument call with nothing."""

    name = ""
    help = ""
    bounds = DEFAULT_BOUNDS

    def inc(self, *args: Any, **kwargs: Any) -> None:
        pass

    def dec(self, *args: Any, **kwargs: Any) -> None:
        pass

    def set(self, *args: Any, **kwargs: Any) -> None:
        pass

    def observe(self, *args: Any, **kwargs: Any) -> None:
        pass

    def value(self, **labels: str) -> int:
        return 0

    def total(self) -> int:
        return 0

    def count(self, **labels: str) -> int:
        return 0

    def sum(self, **labels: str) -> float:
        return 0.0

    def quantile(self, q: float, **labels: str) -> float:
        return 0.0

    def percentiles(self, **labels: str) -> dict[str, float]:
        return {}

    def series(self) -> Iterator[tuple[dict[str, str], Any]]:
        return iter(())

    def __len__(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The no-op registry uninstrumented runs resolve to.

    Every instrument accessor returns the same inert object and
    :attr:`enabled` is False, so per-event instrumentation (per-record
    timers, span bookkeeping) short-circuits to near-zero cost.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", *, bounds: tuple[float, ...] | None = None
    ) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        pass


#: The shared disabled registry; ``registry or NULL_REGISTRY`` is the
#: canonical resolution of an optional registry parameter.
NULL_REGISTRY = NullRegistry()


def resolve_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """``registry`` itself, or the shared :data:`NULL_REGISTRY` for ``None``."""
    return registry if registry is not None else NULL_REGISTRY
