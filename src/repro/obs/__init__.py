"""Unified observability: metrics, tracing spans, Prometheus/JSON export.

The package has four small pieces:

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram`, JSON snapshot
  round-trip and merge, plus the no-op :data:`NULL_REGISTRY`.
* :mod:`repro.obs.spans` -- :func:`trace_span`, nested stage timings
  exported as a span tree and the uniform per-stage ``timings`` view.
* :mod:`repro.obs.prometheus` -- text exposition :func:`render` and the
  background :func:`serve_metrics` endpoint.
* :mod:`repro.obs.names` -- the shared metric-name vocabulary every
  instrumentation point references.

Typical use::

    from repro import obs

    registry = obs.MetricsRegistry()
    result = execute(spec, registry=registry)
    print(obs.render(registry))          # Prometheus exposition
    snapshot = registry.to_dict()        # JSON round-tripping snapshot
"""

from repro.obs import names
from repro.obs.logsetup import KeyValueFormatter, logging_setup
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    exponential_bounds,
    resolve_registry,
)
from repro.obs.prometheus import MetricsServer, render, serve_metrics
from repro.obs.spans import Span, SpanHook, trace_span

__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "Gauge",
    "Histogram",
    "KeyValueFormatter",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "SpanHook",
    "exponential_bounds",
    "logging_setup",
    "names",
    "render",
    "resolve_registry",
    "serve_metrics",
    "trace_span",
]
