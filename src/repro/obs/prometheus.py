"""Prometheus text exposition (format 0.0.4) for a metrics registry.

Two entry points:

* :func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry`
  into the plain-text exposition format Prometheus scrapes -- ``# HELP``
  / ``# TYPE`` headers, one sample line per labelled series, cumulative
  ``_bucket{le=...}`` lines plus ``_sum`` / ``_count`` for histograms.
* :func:`serve_metrics` starts a stdlib :class:`ThreadingHTTPServer` in
  a daemon thread serving ``/metrics`` from a live registry, so a
  long-running ``repro stream`` can be scraped (or curled) mid-run.

No third-party client library involved; the format is simple enough to
emit (and to validate line-by-line in the test-suite) directly.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler
from typing import Any, Mapping

from repro.obs.httpserve import BackgroundHTTPServer
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_string(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + body + "}"


def render(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (trailing newline)."""
    lines: list[str] = []
    for metric in registry.metrics():
        if len(metric) == 0:
            continue
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, series in metric.series():
                cumulative = 0
                for index, bound in enumerate(metric.bounds):
                    cumulative += series.buckets[index]
                    le = _label_string(labels, (("le", _format_value(bound)),))
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                cumulative += series.buckets[-1]
                le = _label_string(labels, (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{le} {cumulative}")
                lines.append(f"{metric.name}_sum{_label_string(labels)} {_format_value(series.sum)}")
                lines.append(f"{metric.name}_count{_label_string(labels)} {series.count}")
        elif isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.series():
                lines.append(f"{metric.name}{_label_string(labels)} {_format_value(float(value))}")
    return "\n".join(lines) + "\n" if lines else "\n"


class MetricsServer(BackgroundHTTPServer):
    """A background ``/metrics`` endpoint over a live registry.

    Create via :func:`serve_metrics`; the handle exposes the *bound*
    ``port``/``url`` (so ``port=0`` callers learn the ephemeral port) and
    a :meth:`~repro.obs.httpserve.BackgroundHTTPServer.close` that shuts
    the daemon server down cleanly (the CLI does, in a ``finally``).
    """

    url_path = "/metrics"

    def __init__(self, registry: MetricsRegistry, host: str, port: int) -> None:
        server_registry = registry

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                    self.send_error(404, "only /metrics is served here")
                    return
                body = render(server_registry).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass  # scrapes should not spam the CLI's stderr

        super().__init__(_Handler, host, port, thread_name="repro-metrics")


def serve_metrics(
    registry: MetricsRegistry, port: int = 0, host: str = "127.0.0.1"
) -> MetricsServer:
    """Serve ``registry`` on ``http://host:port/metrics`` in a daemon thread.

    ``port=0`` binds an ephemeral port; read it back from the returned
    server's ``.port`` / ``.url``.
    """
    return MetricsServer(registry, host, port)
