"""A small background HTTP server shared by every serving surface.

Both observability endpoints -- the Prometheus ``/metrics`` exposition
(:mod:`repro.obs.prometheus`) and the run-store dashboard
(:mod:`repro.runstore.dashboard`) -- need the same plumbing: a stdlib
:class:`ThreadingHTTPServer` on a daemon thread, an ephemeral port when
asked for port ``0``, and a handle exposing the *bound* port plus a
``close()`` that shuts the server down deterministically.
:class:`BackgroundHTTPServer` is that plumbing, once.

No third-party dependency is involved, matching the package's
no-dependency stance: anything importable from the standard library is
fair game, nothing else is.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class BackgroundHTTPServer:
    """A :class:`ThreadingHTTPServer` on a daemon thread, with a clean stop.

    Subclasses (or callers) provide the request-handler class; this base
    owns binding (``port=0`` picks a free port -- read it back from
    :attr:`port` / :attr:`url`), the serving thread, and shutdown.  The
    thread is a daemon, so it never blocks interpreter exit, but
    :meth:`close` (or the context-manager form) is the deterministic way
    down and is what the CLI uses in its ``finally`` blocks.
    """

    #: Path advertised by :attr:`url` (subclasses override).
    url_path = "/"

    def __init__(
        self,
        handler: type[BaseHTTPRequestHandler],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        thread_name: str = "repro-http",
    ) -> None:
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self.url = f"http://{self.host}:{self.port}{self.url_path}"
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=thread_name, daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop serving, release the port and join the server thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "BackgroundHTTPServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
