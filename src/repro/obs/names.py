"""The shared instrumentation vocabulary: one constant per metric name.

Every instrumentation point in the library references these constants
instead of string literals, so the batch and stream engines *provably*
count the same logical events (the equivalence suite iterates
:data:`ENGINE_EQUIVALENT_COUNTERS`), dashboards can rely on stable
names, and the README's metrics reference table has a single source of
truth (:data:`METRIC_REFERENCE`).

Naming follows the Prometheus conventions: counters end in ``_total``,
byte counters in ``_bytes_total``, histograms of durations in
``_seconds``; every name carries the ``repro_`` namespace prefix.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Stage timing (fed by every trace_span exit; the source of the derived
# per-stage ``RunResult.timings`` view)
# ----------------------------------------------------------------------
STAGE_SECONDS = "repro_stage_seconds"

# ----------------------------------------------------------------------
# Shared logical events (batch and stream engines count these the same)
# ----------------------------------------------------------------------
RECORDS_INGESTED = "repro_records_ingested_total"
SESSIONS_OPENED = "repro_sessions_opened_total"
SESSIONS_CLOSED = "repro_sessions_closed_total"
DETECTOR_ALERTS = "repro_detector_alerts_total"

#: The logical counters the batch (columnar *and* record) engines must
#: agree on request for request -- asserted by the equivalence suite.
ENGINE_EQUIVALENT_COUNTERS = (
    RECORDS_INGESTED,
    SESSIONS_OPENED,
    SESSIONS_CLOSED,
    DETECTOR_ALERTS,
)

# ----------------------------------------------------------------------
# Run / dataset bookkeeping
# ----------------------------------------------------------------------
RUNS = "repro_runs_total"
DATASETS_BUILT = "repro_datasets_built_total"
LABELLED_RECORDS = "repro_labelled_records_total"

# ----------------------------------------------------------------------
# Batch pipeline
# ----------------------------------------------------------------------
DETECTOR_RUNS = "repro_detector_runs_total"
DETECTOR_SECONDS = "repro_detector_seconds"
ALERTED_REQUESTS = "repro_alerted_requests_total"

# ----------------------------------------------------------------------
# Columnar substrate
# ----------------------------------------------------------------------
FRAME_ROWS = "repro_frame_rows_total"
FEATURE_ROWS = "repro_feature_rows_total"
FRAME_SESSIONS = "repro_frame_sessions_total"
FRAME_SHARD_ROWS = "repro_frame_shard_rows_total"
FRAME_ALERT_ROWS = "repro_frame_alert_rows_total"

# ----------------------------------------------------------------------
# Streaming engine / sharded runner
# ----------------------------------------------------------------------
ENSEMBLE_ALERTS = "repro_ensemble_alerts_total"
DETECTOR_VERDICTS = "repro_detector_verdicts_total"
SESSIONS_EVICTED = "repro_sessions_evicted_total"
SESSIONS_OPEN = "repro_sessions_open"
VERDICT_SECONDS = "repro_verdict_seconds"
DETECTOR_VERDICT_SECONDS = "repro_detector_verdict_seconds"
SHARD_RECORDS = "repro_stream_shard_records_total"
QUEUE_DEPTH = "repro_stream_queue_depth"
BACKPRESSURE_WAITS = "repro_stream_backpressure_waits_total"

# ----------------------------------------------------------------------
# Trace store / generation cache
# ----------------------------------------------------------------------
CACHE_HITS = "repro_cache_hits_total"
CACHE_MISSES = "repro_cache_misses_total"
TRACE_BLOCKS_READ = "repro_trace_blocks_read_total"
TRACE_BLOCKS_WRITTEN = "repro_trace_blocks_written_total"
TRACE_READ_BYTES = "repro_trace_compressed_read_bytes_total"
TRACE_WRITTEN_BYTES = "repro_trace_compressed_written_bytes_total"
TRACE_RECORDS_WRITTEN = "repro_trace_records_written_total"

# ----------------------------------------------------------------------
# Profiler (repro.prof): live sampling / per-span resource attribution
# ----------------------------------------------------------------------
PROFILE_SAMPLES = "repro_profile_samples_total"
PROFILE_SPAN_ALLOC_BYTES = "repro_profile_span_alloc_bytes_total"
PROFILE_SPAN_PEAK_BYTES = "repro_profile_span_peak_bytes"

# ----------------------------------------------------------------------
# Mitigation gateway / policy engine
# ----------------------------------------------------------------------
ENFORCEMENT_ACTIONS = "repro_enforcement_actions_total"
ESCALATIONS = "repro_enforcement_escalations_total"
CHALLENGES = "repro_enforcement_challenges_total"
COOLDOWN_RESETS = "repro_enforcement_cooldown_resets_total"
BLOCKS_EXPIRED = "repro_enforcement_blocks_expired_total"

#: ``(name, kind, labels, meaning)`` rows of the metrics reference table
#: (rendered in the README's Observability section; kept here so code
#: and documentation share one vocabulary).
METRIC_REFERENCE: tuple[tuple[str, str, str, str], ...] = (
    (STAGE_SECONDS, "histogram", "stage", "duration of every traced pipeline stage"),
    (RECORDS_INGESTED, "counter", "-", "records fed into a detection engine"),
    (SESSIONS_OPENED, "counter", "-", "visitor sessions opened"),
    (SESSIONS_CLOSED, "counter", "-", "visitor sessions closed"),
    (SESSIONS_EVICTED, "counter", "-", "idle sessions closed by the stream evictor"),
    (SESSIONS_OPEN, "gauge", "-", "sessions still open (streaming, sampled at finish)"),
    (DETECTOR_ALERTS, "counter", "detector", "requests alerted per detector"),
    (DETECTOR_RUNS, "counter", "detector, path", "batch detector executions by code path"),
    (DETECTOR_SECONDS, "histogram", "detector", "batch per-detector analysis duration"),
    (ALERTED_REQUESTS, "counter", "-", "requests alerted by at least one detector (batch)"),
    (ENSEMBLE_ALERTS, "counter", "-", "requests alerted by the adjudicated ensemble"),
    (DETECTOR_VERDICTS, "counter", "detector", "online verdicts emitted per detector"),
    (VERDICT_SECONDS, "histogram", "-", "per-request ensemble decision latency"),
    (DETECTOR_VERDICT_SECONDS, "histogram", "detector", "per-request detector decision latency"),
    (SHARD_RECORDS, "counter", "shard", "records processed per stream shard"),
    (QUEUE_DEPTH, "gauge", "shard", "inbound queue depth per stream shard (batches)"),
    (BACKPRESSURE_WAITS, "counter", "shard", "feeder blocks on a full shard queue"),
    (RUNS, "counter", "mode", "workloads executed"),
    (DATASETS_BUILT, "counter", "source", "data sets materialised by source kind"),
    (LABELLED_RECORDS, "counter", "label", "ground-truth-labelled records by label"),
    (FRAME_ROWS, "counter", "source", "rows loaded into a RecordFrame"),
    (FRAME_SESSIONS, "counter", "-", "session spans produced by vectorized sessionization"),
    (FEATURE_ROWS, "counter", "-", "feature-matrix rows (sessions) computed"),
    (FRAME_SHARD_ROWS, "counter", "shard", "rows assigned to each batch frame shard"),
    (FRAME_ALERT_ROWS, "counter", "detector", "alerted rows in columnar alert frames"),
    (CACHE_HITS, "counter", "tier", "generation-cache hits (memory / disk)"),
    (CACHE_MISSES, "counter", "-", "generation-cache misses (traffic regenerated)"),
    (TRACE_BLOCKS_READ, "counter", "-", "trace blocks decoded"),
    (TRACE_BLOCKS_WRITTEN, "counter", "-", "trace blocks encoded and written"),
    (TRACE_READ_BYTES, "counter", "-", "compressed trace bytes read"),
    (TRACE_WRITTEN_BYTES, "counter", "-", "compressed trace bytes written"),
    (TRACE_RECORDS_WRITTEN, "counter", "-", "records appended to trace files"),
    (PROFILE_SAMPLES, "counter", "-", "stack samples captured by the profiler"),
    (PROFILE_SPAN_ALLOC_BYTES, "counter", "span", "net bytes allocated inside each span path"),
    (PROFILE_SPAN_PEAK_BYTES, "gauge", "span", "peak traced memory observed inside each span path"),
    (ENFORCEMENT_ACTIONS, "counter", "action", "gateway decisions by enforcement action"),
    (ESCALATIONS, "counter", "-", "decisions driven by the escalation ladder"),
    (CHALLENGES, "counter", "outcome", "challenges issued, by passed/failed outcome"),
    (COOLDOWN_RESETS, "counter", "-", "visitor strike states decayed by cool-down"),
    (BLOCKS_EXPIRED, "counter", "-", "expired blocks lifted by the policy engine"),
)

#: ``(stage, meaning)`` rows of the span-name catalogue: every
#: ``trace_span`` / ``registry.span`` stage name used anywhere in the
#: library must appear here (enforced by lint rule REP009), so span
#: trees, per-stage timings and profiler attribution paths use a stable,
#: documented vocabulary -- the span-tree counterpart of
#: :data:`METRIC_REFERENCE`.
SPAN_REFERENCE: tuple[tuple[str, str], ...] = (
    ("dataset", "traffic materialisation (generate, parse or replay)"),
    ("experiment", "the batch diversity experiment over one data set"),
    ("sessionize", "grouping records into visitor sessions"),
    ("features", "batched session feature extraction"),
    ("detectors", "the batch detector ensemble"),
    ("detector", "one batch detector's analysis"),
    ("shards", "multi-process frame shard fan-out and join"),
    ("merge", "merging per-shard alert arrays into the global frame"),
    ("analysis", "frame-native table/diversity/evaluation kernels"),
    ("source", "stream-source resolution (dataset or trace replay)"),
    ("stream", "streaming replay through the online engine"),
    ("simulate", "the closed-loop defense simulation"),
    ("report", "mitigation report assembly"),
)
