"""Structured stdlib logging for the CLI: ``logging_setup()``.

Library modules log through plain ``logging.getLogger(__name__)``
loggers and never configure handlers themselves; the CLI (or an
embedding application) calls :func:`logging_setup` once to attach a
stderr handler with a structured ``key=value`` formatter::

    ts=2026-08-08T12:00:00 level=info logger=repro.trace.cache event="disk hit" fingerprint=ab12cd

Messages are emitted as ``event="..."`` followed by any ``extra``
fields, so the output stays grep- and machine-friendly without pulling
in a logging framework.
"""

from __future__ import annotations

import logging
import time
from typing import Any

_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def _format_value(value: Any) -> str:
    text = str(value)
    if text == "" or any(ch in text for ch in ' "=\n'):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    return text


class KeyValueFormatter(logging.Formatter):
    """Render records as ``ts=... level=... logger=... event="..." k=v``."""

    def format(self, record: logging.LogRecord) -> str:
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(record.created))
        parts = [
            f"ts={timestamp}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"event={_format_value(record.getMessage())}",
        ]
        for key in sorted(record.__dict__):
            if key not in _RESERVED and not key.startswith("_"):
                parts.append(f"{key}={_format_value(record.__dict__[key])}")
        if record.exc_info:
            parts.append(f"exc={_format_value(self.formatException(record.exc_info))}")
        return " ".join(parts)


def logging_setup(level: int | str = "warning", *, logger: str = "repro") -> logging.Logger:
    """Attach a ``key=value``-formatted stderr handler to the repro logger.

    ``level`` accepts a name (``"debug"``, ``"info"``, ...) or a numeric
    level.  Calling it again replaces the previously attached handler
    rather than stacking duplicates, so it is safe to call per CLI
    invocation (and per test).
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = resolved
    root = logging.getLogger(logger)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(KeyValueFormatter())
    handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
