"""The e-commerce site model.

The site is modelled after the kind of travel e-commerce application the
paper's data set comes from: a flight/hotel search front end with offer
pages, a booking funnel, a pricing API, tracking beacons and the usual
static assets.  The model's job is to answer one question for the traffic
generator: *given a request to endpoint X under condition Y, what status
code and response size does the server return?*

The status behaviour is what ultimately produces the shape of the paper's
Tables 3 and 4: search and offer pages return mostly ``200`` with a small
share of ``302`` redirects, tracking beacons return ``204``, malformed
queries return ``400``, conditional asset requests return ``304`` and a
small background of ``404``/``500`` errors exists on every endpoint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass(frozen=True)
class Endpoint:
    """One logical endpoint of the site.

    Parameters
    ----------
    name:
        Stable identifier used by actor behaviour profiles.
    path_template:
        Template for the URL path; ``{id}`` is replaced by an item id and
        a query string may be appended by the caller.
    status_weights:
        Mapping of status code to relative weight for a *well-formed*
        request to this endpoint.
    mean_size:
        Mean response body size in bytes for a ``200`` response.
    is_asset:
        True for static-asset endpoints (css/js/images).
    """

    name: str
    path_template: str
    status_weights: Mapping[int, float]
    mean_size: int
    is_asset: bool = False
    supports_conditional: bool = False

    def choose_status(self, rng: random.Random) -> int:
        """Draw a status code for a well-formed request."""
        statuses = list(self.status_weights.keys())
        weights = list(self.status_weights.values())
        return rng.choices(statuses, weights=weights, k=1)[0]


def _default_endpoints() -> Sequence[Endpoint]:
    """The endpoints of the synthetic travel e-commerce application."""
    return (
        Endpoint(
            name="home",
            path_template="/",
            status_weights={200: 0.987, 302: 0.012, 500: 0.001},
            mean_size=32_000,
        ),
        Endpoint(
            name="search",
            path_template="/search",
            status_weights={200: 0.9651, 302: 0.032, 500: 0.0009, 404: 0.002},
            mean_size=48_000,
        ),
        Endpoint(
            name="offer",
            path_template="/offers/{id}",
            status_weights={200: 0.9712, 302: 0.025, 404: 0.003, 500: 0.0008},
            mean_size=41_000,
        ),
        Endpoint(
            name="availability",
            path_template="/api/availability",
            status_weights={200: 0.976, 204: 0.022, 500: 0.002},
            mean_size=6_000,
        ),
        Endpoint(
            name="price_api",
            path_template="/api/price",
            status_weights={200: 0.988, 204: 0.011, 500: 0.001},
            mean_size=2_400,
        ),
        Endpoint(
            name="booking",
            path_template="/booking",
            status_weights={302: 0.85, 200: 0.14, 500: 0.01},
            mean_size=18_000,
        ),
        Endpoint(
            name="checkout",
            path_template="/checkout",
            status_weights={200: 0.92, 302: 0.07, 500: 0.01},
            mean_size=22_000,
        ),
        Endpoint(
            name="login",
            path_template="/account/login",
            status_weights={200: 0.70, 302: 0.29, 500: 0.01},
            mean_size=9_000,
        ),
        Endpoint(
            name="beacon",
            path_template="/track/beacon",
            status_weights={204: 0.97, 200: 0.03},
            mean_size=0,
        ),
        Endpoint(
            name="robots",
            path_template="/robots.txt",
            status_weights={200: 1.0},
            mean_size=180,
        ),
        Endpoint(
            name="sitemap",
            path_template="/sitemap.xml",
            status_weights={200: 0.98, 404: 0.02},
            mean_size=5_500,
        ),
        Endpoint(
            name="asset_css",
            path_template="/static/css/app-{id}.css",
            status_weights={200: 1.0},
            mean_size=52_000,
            is_asset=True,
            supports_conditional=True,
        ),
        Endpoint(
            name="asset_js",
            path_template="/static/js/bundle-{id}.js",
            status_weights={200: 1.0},
            mean_size=210_000,
            is_asset=True,
            supports_conditional=True,
        ),
        Endpoint(
            name="asset_img",
            path_template="/static/img/offer-{id}.jpg",
            status_weights={200: 0.995, 404: 0.005},
            mean_size=84_000,
            is_asset=True,
            supports_conditional=True,
        ),
    )


@dataclass
class SiteModel:
    """Status/size behaviour of the synthetic e-commerce application."""

    endpoints: Sequence[Endpoint] = field(default_factory=_default_endpoints)
    #: Cities used to build realistic search query strings.
    cities: Sequence[str] = (
        "PAR", "LIS", "LON", "NYC", "MAD", "BCN", "FRA", "AMS", "ROM", "DXB",
        "SIN", "HKG", "SFO", "LAX", "GVA", "ZRH", "VIE", "OSL", "CPH", "HEL",
    )
    #: Number of distinct offer/product ids the site exposes.
    catalogue_size: int = 5000

    def __post_init__(self) -> None:
        self._by_name = {endpoint.name: endpoint for endpoint in self.endpoints}

    # ------------------------------------------------------------------
    def endpoint(self, name: str) -> Endpoint:
        """Return the endpoint with the given name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError(f"unknown endpoint {name!r}") from exc

    def endpoint_names(self) -> list[str]:
        """All endpoint names."""
        return list(self._by_name)

    # ------------------------------------------------------------------
    # Path construction
    # ------------------------------------------------------------------
    def build_path(self, name: str, rng: random.Random, *, item_id: int | None = None, query: str | None = None) -> str:
        """Build a concrete URL path for the endpoint ``name``."""
        endpoint = self.endpoint(name)
        path = endpoint.path_template
        if "{id}" in path:
            if item_id is None:
                item_id = rng.randrange(self.catalogue_size)
            path = path.replace("{id}", str(item_id))
        if query is None and name == "search":
            query = self.search_query(rng)
        elif query is None and name in ("price_api", "availability"):
            query = self.pricing_query(rng)
        if query:
            path = f"{path}?{query}"
        return path

    def search_query(self, rng: random.Random) -> str:
        """A realistic flight-search query string."""
        origin = rng.choice(self.cities)
        destination = rng.choice([c for c in self.cities if c != origin])
        day = rng.randrange(1, 29)
        month = rng.choice(["04", "05", "06", "07"])
        passengers = rng.choices([1, 2, 3, 4], weights=[55, 30, 10, 5], k=1)[0]
        return f"o={origin}&d={destination}&dt=2018-{month}-{day:02d}&pax={passengers}"

    def pricing_query(self, rng: random.Random) -> str:
        """A realistic pricing-API query string."""
        offer = rng.randrange(self.catalogue_size)
        currency = rng.choice(["EUR", "USD", "GBP", "CHF"])
        return f"offer={offer}&cur={currency}"

    def malformed_query(self, rng: random.Random) -> str:
        """A malformed query string of the kind naive scrapers produce."""
        choices = [
            "o=&d=&dt=",
            "o=%%INVALID%%&d=PAR",
            "offer=999999999999&cur=XX",
            "dt=2018-13-45",
            "o=PAR&d=PAR&pax=-1",
            "q=" + "A" * rng.randrange(200, 400),
        ]
        return rng.choice(choices)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def respond(
        self,
        name: str,
        rng: random.Random,
        *,
        malformed: bool = False,
        conditional: bool = False,
        not_found: bool = False,
    ) -> tuple[int, int]:
        """Return ``(status, size)`` for a request to endpoint ``name``.

        Parameters
        ----------
        malformed:
            The request carried a malformed query string -> ``400``.
        conditional:
            The client sent ``If-Modified-Since``/``If-None-Match`` and the
            resource is unchanged -> ``304`` when supported.
        not_found:
            The client asked for a non-existent item -> ``404``.
        """
        endpoint = self.endpoint(name)
        if malformed:
            return 400, rng.randrange(250, 700)
        if not_found:
            return 404, rng.randrange(400, 1200)
        if conditional and endpoint.supports_conditional:
            return 304, 0
        status = endpoint.choose_status(rng)
        size = self.response_size(endpoint, status, rng)
        return status, size

    def response_size(self, endpoint: Endpoint, status: int, rng: random.Random) -> int:
        """Draw a response body size for the given endpoint and status."""
        if status in (204, 304):
            return 0
        if status == 302:
            return rng.randrange(200, 600)
        if status >= 400:
            return rng.randrange(300, 1500)
        if endpoint.mean_size == 0:
            return 0
        # Log-normal-ish spread around the endpoint's mean size.
        factor = rng.lognormvariate(0.0, 0.25)
        return max(64, int(endpoint.mean_size * factor))
