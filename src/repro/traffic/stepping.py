"""Step-wise traffic generation with enforcement feedback.

The batch :class:`~repro.traffic.actors.Actor` protocol produces a whole
window of requests up front, which is perfect for replaying a finished
access log but cannot model an attacker *reacting* to a defense: by the
time the first request is judged, the remaining trace is already written.

This module defines the incremental counterpart used by the closed-loop
simulation in :mod:`repro.mitigation`:

* :class:`SteppedActor` -- emits one request at a time (``peek`` the next
  timestamp, ``emit`` the request) and receives a :class:`Feedback` for
  every emitted request, so its *future* behaviour can depend on how the
  defense treated its past.
* :class:`ScriptedSteppedActor` -- adapts any batch actor to the stepped
  protocol by pre-generating its trace and ignoring feedback (the
  behaviour of today's non-adaptive scrapers, and of the batch pipeline).
* :class:`ResponsiveSteppedActor` -- a scripted actor that additionally
  answers challenges with a configurable skill and abandons the site when
  denied; this is how humans and good bots experience collateral damage.

Truly adaptive attackers live in :mod:`repro.traffic.adaptive`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Iterable, Iterator

from repro.traffic.actors import Actor, RequestEvent, TimeWindow

#: Enforcement action names a stepped actor can receive as feedback.
#: (Mirrors :class:`repro.mitigation.actions.Action`; plain strings keep
#: the traffic layer free of a dependency on the mitigation package.)
DENYING_ACTIONS = ("block", "tarpit")


@dataclass(frozen=True)
class Feedback:
    """What the enforcement gateway did with one emitted request."""

    #: Enforcement action name (``"allow"``, ``"throttle"``, ``"challenge"``,
    #: ``"block"`` or ``"tarpit"``).
    action: str
    #: Whether the request was actually served to the client.
    served: bool
    #: Enforced delay (throttle pacing / tarpit stall), in seconds.
    delay_seconds: float = 0.0
    #: Challenge outcome when ``action == "challenge"`` (else ``None``).
    challenge_passed: bool | None = None

    @property
    def denied(self) -> bool:
        """True when the request was rejected outright or failed a challenge."""
        return self.action in DENYING_ACTIONS or self.challenge_passed is False


#: The feedback every request receives when no gateway is in the loop.
ALLOW_FEEDBACK = Feedback(action="allow", served=True)


class SteppedActor(abc.ABC):
    """An actor that emits requests one at a time and observes feedback."""

    #: Actor-class label recorded in the ground truth.
    actor_class: str = "actor"

    def __init__(self, actor_id: str):
        self.actor_id = actor_id

    @abc.abstractmethod
    def begin(self, window: TimeWindow, rng: random.Random) -> None:
        """Start a simulation run over ``window`` (resets all state)."""

    @abc.abstractmethod
    def peek(self) -> datetime | None:
        """Timestamp of the next request, or ``None`` when the actor is done."""

    @abc.abstractmethod
    def emit(self) -> RequestEvent:
        """Produce the request announced by :meth:`peek` and advance."""

    def feedback(self, event: RequestEvent, feedback: Feedback, rng: random.Random) -> None:
        """Observe what the defense did with ``event`` (default: ignore it)."""

    def solve_challenge(self, rng: random.Random) -> bool:
        """Attempt a challenge (CAPTCHA / JS proof).  Scripts fail by default."""
        return False


class ScriptedSteppedActor(SteppedActor):
    """A batch actor replayed step by step, blind to enforcement feedback.

    This is the bridge between the two generation protocols: wrapping
    every actor of a population in :class:`ScriptedSteppedActor` and
    running the closed-loop simulator with a pass-through policy emits
    exactly the trace the batch generator would have produced.
    """

    def __init__(self, actor: Actor):
        super().__init__(actor.actor_id)
        self.actor = actor
        self.actor_class = actor.actor_class
        self._events: list[RequestEvent] = []
        self._index = 0

    def begin(self, window: TimeWindow, rng: random.Random) -> None:
        # Batch actors may emit slightly out-of-order events (e.g. asset
        # fetches timestamped after the next page view was scheduled);
        # the stepped protocol promises nondecreasing timestamps.
        self._events = sorted(
            (event for event in self.actor.generate(window, rng) if window.contains(event.timestamp)),
            key=lambda event: event.timestamp,
        )
        self._index = 0

    def peek(self) -> datetime | None:
        if self._index >= len(self._events):
            return None
        return self._events[self._index].timestamp

    def emit(self) -> RequestEvent:
        event = self._events[self._index]
        self._index += 1
        return event

    def abandon(self) -> None:
        """Drop all remaining requests (the visitor leaves the site)."""
        self._index = len(self._events)

    @property
    def remaining(self) -> int:
        """Requests the actor still intends to send."""
        return len(self._events) - self._index


class ResponsiveSteppedActor(ScriptedSteppedActor):
    """A scripted actor that reacts *minimally* to enforcement.

    Humans and good bots do not rotate identities, but they are not
    oblivious either: a human solves most challenges (and walks away when
    blocked or when the challenge defeats them), a crawler simply cannot
    solve challenges at all.  The difference between a visitor's scripted
    intent and what they actually completed is the defense's collateral
    damage.
    """

    def __init__(
        self,
        actor: Actor,
        *,
        challenge_skill: float = 0.9,
        abandon_when_denied: bool = True,
    ):
        super().__init__(actor)
        if not 0.0 <= challenge_skill <= 1.0:
            raise ValueError("challenge_skill must be within [0, 1]")
        self.challenge_skill = challenge_skill
        self.abandon_when_denied = abandon_when_denied
        self.abandoned_requests = 0

    def begin(self, window: TimeWindow, rng: random.Random) -> None:
        super().begin(window, rng)
        self.abandoned_requests = 0

    def solve_challenge(self, rng: random.Random) -> bool:
        return rng.random() < self.challenge_skill

    def feedback(self, event: RequestEvent, feedback: Feedback, rng: random.Random) -> None:
        if feedback.denied and self.abandon_when_denied:
            self.abandoned_requests += self.remaining
            self.abandon()


@dataclass
class SteppedPopulation:
    """A named collection of stepped actors (closed-loop counterpart of
    :class:`~repro.traffic.actors.ActorPopulation`)."""

    actors: list[SteppedActor] = field(default_factory=list)

    def add(self, actor: SteppedActor) -> None:
        """Add one actor to the population."""
        self.actors.append(actor)

    def extend(self, actors: Iterable[SteppedActor]) -> None:
        """Add several actors to the population."""
        self.actors.extend(actors)

    def __len__(self) -> int:
        return len(self.actors)

    def __iter__(self) -> Iterator[SteppedActor]:
        return iter(self.actors)

    def class_counts(self) -> dict[str, int]:
        """Number of actors per actor class."""
        counts: dict[str, int] = {}
        for actor in self.actors:
            counts[actor.actor_class] = counts.get(actor.actor_class, 0) + 1
        return counts


def as_stepped(actors: Iterable[Actor]) -> SteppedPopulation:
    """Wrap a batch actor collection into a scripted stepped population."""
    population = SteppedPopulation()
    population.extend(ScriptedSteppedActor(actor) for actor in actors)
    return population
