"""Mapping from actor classes to ground-truth labels.

The traffic generator records the *actor class* that produced each request
(e.g. ``"human"``, ``"search_crawler"``, ``"aggressive_scraper"``); this
module maps those classes onto the binary malicious/benign labels used by
the labelled-evaluation extension experiments.
"""

from __future__ import annotations

from repro.logs.dataset import BENIGN, MALICIOUS

#: Actor classes considered malicious scraping activity.
MALICIOUS_CLASSES: frozenset[str] = frozenset(
    {
        "aggressive_scraper",
        "stealth_scraper",
        "probing_scraper",
        "adaptive_scraper",
        "botnet_node",
    }
)

#: Actor classes considered benign traffic.
BENIGN_CLASSES: frozenset[str] = frozenset(
    {
        "human",
        "search_crawler",
        "monitoring_bot",
    }
)


def is_malicious_class(actor_class: str) -> bool:
    """True when the actor class represents malicious scraping activity."""
    if actor_class in MALICIOUS_CLASSES:
        return True
    if actor_class in BENIGN_CLASSES:
        return False
    # Unknown classes default to benign: a detector should not get credit
    # for alerting on traffic we cannot attribute.
    return False


def actor_label(actor_class: str) -> str:
    """Return the ground-truth label (:data:`MALICIOUS` or :data:`BENIGN`)."""
    return MALICIOUS if is_malicious_class(actor_class) else BENIGN
