"""Actor framework for the traffic generator.

An *actor* is anything that issues HTTP requests against the site: a
human visitor, a legitimate crawler or a scraping bot.  Each actor turns
its behaviour profile into a list of :class:`RequestEvent` objects over
the simulated time window; the generator merges all events, orders them
by time and materialises them as log records with ground-truth labels.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Iterable, Iterator, Sequence

from repro.traffic.site import SiteModel


@dataclass
class RequestEvent:
    """One HTTP request produced by an actor (pre-log-record form)."""

    timestamp: datetime
    client_ip: str
    method: str
    path: str
    status: int
    response_size: int
    referrer: str
    user_agent: str
    actor_id: str
    actor_class: str
    protocol: str = "HTTP/1.1"


@dataclass
class TimeWindow:
    """The simulated time window (start plus a whole number of days)."""

    start: datetime
    days: int

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("a time window must span at least one day")

    @property
    def end(self) -> datetime:
        """The exclusive end of the window."""
        return self.start + timedelta(days=self.days)

    def day_starts(self) -> list[datetime]:
        """The midnight timestamps of each simulated day."""
        return [self.start + timedelta(days=offset) for offset in range(self.days)]

    def contains(self, timestamp: datetime) -> bool:
        """True when ``timestamp`` falls inside the window."""
        return self.start <= timestamp < self.end

    def clamp(self, timestamp: datetime) -> datetime:
        """Clamp ``timestamp`` into the window (used to keep sessions in range)."""
        if timestamp < self.start:
            return self.start
        if timestamp >= self.end:
            return self.end - timedelta(seconds=1)
        return timestamp


class Actor(abc.ABC):
    """Base class for all traffic-producing actors.

    Subclasses implement :meth:`generate`, which must be deterministic
    given the supplied random generator: the scenario seeds one child
    generator per actor so whole data sets are reproducible.
    """

    #: Actor-class label recorded in the ground truth (overridden by subclasses).
    actor_class: str = "actor"

    def __init__(self, actor_id: str, site: SiteModel):
        self.actor_id = actor_id
        self.site = site

    @abc.abstractmethod
    def generate(self, window: TimeWindow, rng: random.Random) -> list[RequestEvent]:
        """Produce this actor's requests for the whole window."""

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    def _event(
        self,
        timestamp: datetime,
        client_ip: str,
        user_agent: str,
        *,
        method: str = "GET",
        path: str,
        status: int,
        size: int,
        referrer: str = "",
    ) -> RequestEvent:
        """Build a :class:`RequestEvent` attributed to this actor."""
        return RequestEvent(
            timestamp=timestamp,
            client_ip=client_ip,
            method=method,
            path=path,
            status=status,
            response_size=size,
            referrer=referrer,
            user_agent=user_agent,
            actor_id=self.actor_id,
            actor_class=self.actor_class,
        )


@dataclass
class ActorPopulation:
    """A named collection of actors, with per-class accounting."""

    actors: list[Actor] = field(default_factory=list)

    def add(self, actor: Actor) -> None:
        """Add one actor to the population."""
        self.actors.append(actor)

    def extend(self, actors: Iterable[Actor]) -> None:
        """Add several actors to the population."""
        self.actors.extend(actors)

    def __len__(self) -> int:
        return len(self.actors)

    def __iter__(self) -> Iterator[Actor]:
        return iter(self.actors)

    def class_counts(self) -> dict[str, int]:
        """Number of actors per actor class."""
        counts: dict[str, int] = {}
        for actor in self.actors:
            counts[actor.actor_class] = counts.get(actor.actor_class, 0) + 1
        return counts


def split_budget(total: int, parts: int, rng: random.Random, *, jitter: float = 0.2) -> list[int]:
    """Split a request budget over ``parts`` actors with multiplicative jitter.

    The returned list sums to approximately ``total`` (exact up to
    rounding); every part is at least 1 when ``total >= parts``.
    """
    if parts <= 0:
        return []
    if total <= 0:
        return [0] * parts
    weights = [max(0.05, 1.0 + rng.uniform(-jitter, jitter)) for _ in range(parts)]
    weight_sum = sum(weights)
    shares = [max(1, round(total * weight / weight_sum)) for weight in weights]
    return shares


def spread_session_starts(
    window: TimeWindow,
    sessions: int,
    rng: random.Random,
    *,
    hourly_weights: Sequence[float] | None = None,
) -> list[datetime]:
    """Draw ``sessions`` start times across the window.

    When ``hourly_weights`` is given, the hour of day follows that profile;
    otherwise starts are uniform over the window.
    """
    starts: list[datetime] = []
    day_starts = window.day_starts()
    for _ in range(sessions):
        day_start = rng.choice(day_starts)
        if hourly_weights is None:
            offset = rng.uniform(0, 24 * 3600)
            starts.append(day_start + timedelta(seconds=offset))
        else:
            hour = rng.choices(range(24), weights=list(hourly_weights), k=1)[0]
            starts.append(day_start + timedelta(hours=hour, seconds=rng.uniform(0, 3600)))
    starts.sort()
    return starts
