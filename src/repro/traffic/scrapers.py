"""Malicious scraper behaviour models.

Three scraper families are modelled, chosen to reproduce the coverage
asymmetries the paper observed between the commercial and the in-house
tool (see DESIGN.md §5):

* :class:`AggressiveScraper` -- classic price-scraping botnet nodes.
  High request rates from datacenter IPs, half of them with scripted
  user agents, no asset loading.  Both tools detect these; they are the
  bulk of the paper's "alerted by both" mass.
* :class:`StealthScraper` -- paced, browser-impersonating scrapers behind
  residential proxies.  Their request *rates* and headers look human, but
  their session behaviour (no assets, no beacons, machine-regular timing,
  exhaustive coverage of offer pages) betrays them to a behavioural
  detector while rule thresholds miss them.  These produce the
  "commercial-only" mass (dominated by status 200/302).
* :class:`ProbingScraper` -- reconnaissance scrapers mapping the pricing
  API.  They blend in behaviourally (some assets, referrers, irregular
  timing) but leave a tell-tale trail of 204/400/304 responses and HEAD
  probes that rule-based error/probe heuristics catch.  These produce the
  "in-house-only" mass, rich in 204/400/304 -- exactly the asymmetry of
  the paper's Table 4.
"""

from __future__ import annotations

import random
from datetime import timedelta

from repro.traffic.actors import Actor, RequestEvent, TimeWindow, spread_session_starts
from repro.traffic.site import SiteModel

SITE_ORIGIN = "https://shop.example.com"


class AggressiveScraper(Actor):
    """A price-scraping botnet node hammering search and offer pages."""

    actor_class = "aggressive_scraper"

    def __init__(
        self,
        actor_id: str,
        site: SiteModel,
        *,
        client_ip: str,
        user_agent: str,
        request_budget: int = 12_000,
        requests_per_minute: float = 90.0,
    ) -> None:
        super().__init__(actor_id, site)
        self.client_ip = client_ip
        self.user_agent = user_agent
        self.request_budget = max(50, request_budget)
        self.requests_per_minute = max(35.0, requests_per_minute)

    def generate(self, window: TimeWindow, rng: random.Random) -> list[RequestEvent]:
        events: list[RequestEvent] = []
        # The node scrapes in bursts around the clock; size each burst from
        # the configured rate and spread bursts uniformly over the window.
        burst_size = max(40, int(self.requests_per_minute * rng.uniform(2.0, 5.0)))
        bursts = max(1, -(-self.request_budget // burst_size))  # ceil division
        starts = spread_session_starts(window, bursts, rng)
        produced = 0
        for start in starts:
            if produced >= self.request_budget:
                break
            now = window.clamp(start)
            this_burst = min(burst_size, self.request_budget - produced)
            gap = 60.0 / self.requests_per_minute
            for _ in range(this_burst):
                endpoint = rng.choices(
                    ["search", "offer", "price_api", "availability"],
                    weights=[38, 40, 14, 8],
                    k=1,
                )[0]
                path = self.site.build_path(endpoint, rng)
                malformed = rng.random() < 0.0015
                status, size = self.site.respond(endpoint, rng, malformed=malformed)
                events.append(
                    self._event(
                        now,
                        self.client_ip,
                        self.user_agent,
                        path=path,
                        status=status,
                        size=size,
                        referrer="",
                    )
                )
                produced += 1
                # Machine-fast, near-constant pacing.
                now += timedelta(seconds=max(0.05, rng.gauss(gap, gap * 0.1)))
        return events


class StealthScraper(Actor):
    """A paced, browser-impersonating scraper behind rotating proxy IPs."""

    actor_class = "stealth_scraper"

    def __init__(
        self,
        actor_id: str,
        site: SiteModel,
        *,
        client_ips: list[str],
        user_agent: str,
        request_budget: int = 2_000,
        requests_per_minute: float = 8.0,
        evasive_fraction: float = 0.1,
    ) -> None:
        super().__init__(actor_id, site)
        if not client_ips:
            raise ValueError("a stealth scraper needs at least one client IP")
        self.client_ips = client_ips
        self.user_agent = user_agent
        self.request_budget = max(30, request_budget)
        self.requests_per_minute = min(max(2.0, requests_per_minute), 20.0)
        self.evasive_fraction = evasive_fraction

    def generate(self, window: TimeWindow, rng: random.Random) -> list[RequestEvent]:
        events: list[RequestEvent] = []
        session_size = max(25, int(self.requests_per_minute * rng.uniform(6, 12)))
        sessions = max(1, -(-self.request_budget // session_size))  # ceil division
        starts = spread_session_starts(window, sessions, rng)
        produced = 0
        for index, start in enumerate(starts):
            if produced >= self.request_budget:
                break
            now = window.clamp(start)
            client_ip = self.client_ips[index % len(self.client_ips)]
            this_session = min(session_size, self.request_budget - produced)
            # A small share of sessions actively mimic humans (load assets,
            # jitter their timing); these evade the behavioural model too
            # and end up detected by neither tool.
            evasive = rng.random() < self.evasive_fraction
            gap = 60.0 / self.requests_per_minute
            current_page = "/search"
            for step in range(this_session):
                endpoint = rng.choices(["search", "offer", "price_api"], weights=[30, 58, 12], k=1)[0]
                path = self.site.build_path(endpoint, rng)
                status, size = self.site.respond(endpoint, rng)
                referrer = f"{SITE_ORIGIN}{current_page}" if (evasive or rng.random() < 0.1) else ""
                events.append(
                    self._event(
                        now,
                        client_ip,
                        self.user_agent,
                        path=path,
                        status=status,
                        size=size,
                        referrer=referrer,
                    )
                )
                produced += 1
                current_page = path.split("?")[0]
                if evasive and rng.random() < 0.3:
                    asset = rng.choice(["asset_css", "asset_img"])
                    astatus, asize = self.site.respond(asset, rng)
                    events.append(
                        self._event(
                            now + timedelta(seconds=rng.uniform(0.2, 1.0)),
                            client_ip,
                            self.user_agent,
                            path=self.site.build_path(asset, rng, item_id=rng.randrange(40)),
                            status=astatus,
                            size=asize,
                            referrer=f"{SITE_ORIGIN}{current_page}",
                        )
                    )
                    produced += 1
                if evasive:
                    # Human-like, irregular pacing.
                    now += timedelta(seconds=rng.uniform(3.0, 45.0))
                else:
                    # Paced but machine-regular: the behavioural tell.
                    now += timedelta(seconds=max(0.5, rng.gauss(gap, gap * 0.05)))
        return events


class ProbingScraper(Actor):
    """A reconnaissance scraper mapping the pricing API and its error space."""

    actor_class = "probing_scraper"

    def __init__(
        self,
        actor_id: str,
        site: SiteModel,
        *,
        client_ip: str,
        user_agent: str,
        request_budget: int = 900,
        requests_per_minute: float = 10.0,
    ) -> None:
        super().__init__(actor_id, site)
        self.client_ip = client_ip
        self.user_agent = user_agent
        self.request_budget = max(30, request_budget)
        self.requests_per_minute = min(max(3.0, requests_per_minute), 24.0)

    def generate(self, window: TimeWindow, rng: random.Random) -> list[RequestEvent]:
        events: list[RequestEvent] = []
        session_size = max(20, int(self.requests_per_minute * rng.uniform(4, 9)))
        sessions = max(1, -(-self.request_budget // session_size))  # ceil division
        starts = spread_session_starts(window, sessions, rng)
        produced = 0
        current_page = "/"
        for start in starts:
            if produced >= self.request_budget:
                break
            now = window.clamp(start)
            this_session = min(session_size, self.request_budget - produced)
            for _ in range(this_session):
                roll = rng.random()
                referrer = f"{SITE_ORIGIN}{current_page}" if rng.random() < 0.55 else ""
                if roll < 0.12:
                    # Probe the API with fabricated parameters -> 204 heavy.
                    endpoint = "availability"
                    path = self.site.build_path(endpoint, rng)
                    status, size = self.site.respond(endpoint, rng)
                    if rng.random() < 0.55:
                        status, size = 204, 0
                    method = "GET"
                elif roll < 0.17:
                    # Malformed parameter fuzzing -> 400.
                    endpoint = rng.choice(["search", "price_api"])
                    path = self.site.build_path(endpoint, rng, query=self.site.malformed_query(rng))
                    status, size = self.site.respond(endpoint, rng, malformed=True)
                    method = "GET"
                elif roll < 0.21:
                    # HEAD probes and conditional re-checks -> 304 / empty 200.
                    endpoint = rng.choice(["offer", "asset_js"])
                    conditional = rng.random() < 0.4
                    path = self.site.build_path(endpoint, rng)
                    status, size = self.site.respond(endpoint, rng, conditional=conditional)
                    method = "HEAD" if not conditional else "GET"
                    if method == "HEAD":
                        size = 0
                elif roll < 0.24:
                    # Occasional asset fetch keeps the session looking browser-like.
                    endpoint = rng.choice(["asset_css", "asset_img"])
                    path = self.site.build_path(endpoint, rng, item_id=rng.randrange(40))
                    status, size = self.site.respond(endpoint, rng)
                    method = "GET"
                else:
                    # Ordinary-looking offer/search traffic.
                    endpoint = rng.choices(["offer", "search", "price_api"], weights=[52, 34, 14], k=1)[0]
                    path = self.site.build_path(endpoint, rng)
                    status, size = self.site.respond(endpoint, rng)
                    method = "GET"
                events.append(
                    self._event(
                        now,
                        self.client_ip,
                        self.user_agent,
                        method=method,
                        path=path,
                        status=status,
                        size=size,
                        referrer=referrer,
                    )
                )
                produced += 1
                current_page = path.split("?")[0]
                # Irregular, human-ish pacing (the behavioural model's blind spot).
                now += timedelta(seconds=rng.uniform(1.5, 14.0))
        return events
