"""The traffic generator.

The generator takes an :class:`~repro.traffic.actors.ActorPopulation`, a
:class:`~repro.traffic.actors.TimeWindow` and a seed, simulates every
actor independently (each with its own deterministic child random
generator), merges the resulting request events in time order and
materialises them as a labelled :class:`~repro.logs.dataset.Dataset`.

The output of the generator is indistinguishable, format-wise, from a
parsed production access log: the detectors only ever consume the
:class:`~repro.logs.record.LogRecord` objects (or the combined-log-format
lines written by :mod:`repro.logs.writer`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.logs.dataset import Dataset, DatasetMetadata, GroundTruth
from repro.logs.record import LogRecord, RequestMethod
from repro.traffic.actors import ActorPopulation, RequestEvent, TimeWindow
from repro.traffic.labels import actor_label


@dataclass
class GenerationResult:
    """The outcome of one generator run (dataset plus per-actor accounting)."""

    dataset: Dataset
    events_per_class: dict[str, int]

    @property
    def total_requests(self) -> int:
        """Total number of generated requests."""
        return len(self.dataset)


class TrafficGenerator:
    """Simulate an actor population over a time window."""

    def __init__(self, population: ActorPopulation, window: TimeWindow, *, seed: int = 2018):
        self.population = population
        self.window = window
        self.seed = seed

    def run(self, *, dataset_name: str = "synthetic", scenario_name: str = "", scale: float = 1.0) -> GenerationResult:
        """Simulate every actor and build the labelled data set."""
        events: list[RequestEvent] = []
        events_per_class: dict[str, int] = {}
        master = random.Random(self.seed)
        for actor in self.population:
            # One child generator per actor keeps actors independent and the
            # whole run reproducible regardless of actor iteration details.
            child = random.Random(master.randrange(2**63))
            actor_events = actor.generate(self.window, child)
            for event in actor_events:
                if self.window.contains(event.timestamp):
                    events.append(event)
            events_per_class[actor.actor_class] = events_per_class.get(actor.actor_class, 0) + len(actor_events)

        events.sort(key=lambda event: event.timestamp)

        records: list[LogRecord] = []
        truth = GroundTruth()
        for index, event in enumerate(events):
            request_id = f"r{index}"
            records.append(_event_to_record(request_id, event))
            truth.set(request_id, actor_label(event.actor_class), event.actor_class)

        metadata = DatasetMetadata(
            name=dataset_name,
            description="synthetic e-commerce access log",
            source="repro.traffic",
            scenario=scenario_name,
            scale=scale,
            seed=self.seed,
        )
        # Events were just sorted, so the records are born in timestamp
        # order; marking that here lets replay skip a full sorted copy.
        dataset = Dataset(records, ground_truth=truth, metadata=metadata, time_ordered=True)
        return GenerationResult(dataset=dataset, events_per_class=events_per_class)


def _event_to_record(request_id: str, event: RequestEvent) -> LogRecord:
    """Convert a request event into an immutable log record."""
    return LogRecord(
        request_id=request_id,
        timestamp=event.timestamp,
        client_ip=event.client_ip,
        method=RequestMethod.from_string(event.method),
        path=event.path,
        protocol=event.protocol,
        status=event.status,
        response_size=event.response_size,
        referrer=event.referrer,
        user_agent=event.user_agent,
    )


def generate_dataset(scenario, *, seed: int | None = None) -> Dataset:
    """Generate the data set described by a :class:`~repro.traffic.scenarios.Scenario`.

    This is the main convenience entry point used by the examples,
    benchmarks and the CLI::

        from repro.traffic import amadeus_march_2018, generate_dataset
        dataset = generate_dataset(amadeus_march_2018(scale=0.02))
    """
    effective_seed = scenario.seed if seed is None else seed
    population = scenario.build_population(random.Random(effective_seed))
    generator = TrafficGenerator(population, scenario.window, seed=effective_seed)
    result = generator.run(dataset_name=scenario.name, scenario_name=scenario.name, scale=scenario.scale)
    return result.dataset
