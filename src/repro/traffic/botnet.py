"""Botnet coordination model.

Price-scraping campaigns are rarely a single machine: a *campaign*
controls a fleet of nodes spread over rented datacenter ranges (and, for
the stealthier tiers, residential proxy pools), divides the scraping
workload between them and mixes scripted clients with spoofed browser
identities.  The :class:`BotnetCampaign` builder turns a campaign
description (total request budget, node count, stealth tier) into the
concrete actor instances the generator simulates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.traffic.actors import Actor, split_budget
from repro.traffic.ipspace import IPSpace
from repro.traffic.scrapers import AggressiveScraper, ProbingScraper, StealthScraper
from repro.traffic.site import SiteModel
from repro.traffic.useragents import UserAgentCatalog


@dataclass
class BotnetCampaign:
    """Description of one scraping campaign."""

    name: str
    family: str  # "aggressive", "stealth" or "probing"
    total_requests: int
    nodes: int
    #: Fraction of aggressive nodes that use obvious scripted user agents
    #: (the rest spoof mainstream browsers).
    scripted_agent_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.family not in ("aggressive", "stealth", "probing"):
            raise ValueError(f"unknown campaign family {self.family!r}")
        if self.total_requests < 0:
            raise ValueError("total_requests must be non-negative")
        if self.nodes <= 0:
            raise ValueError("a campaign needs at least one node")

    # ------------------------------------------------------------------
    def build_actors(
        self,
        site: SiteModel,
        ip_space: IPSpace,
        agents: UserAgentCatalog,
        rng: random.Random,
    ) -> list[Actor]:
        """Instantiate the campaign's nodes as concrete actors."""
        budgets = split_budget(self.total_requests, self.nodes, rng)
        actors: list[Actor] = []
        for index, budget in enumerate(budgets):
            actor_id = f"{self.name}-node{index}"
            if self.family == "aggressive":
                actors.append(self._aggressive_node(actor_id, budget, site, ip_space, agents, rng))
            elif self.family == "stealth":
                actors.append(self._stealth_node(actor_id, budget, site, ip_space, agents, rng))
            else:
                actors.append(self._probing_node(actor_id, budget, site, ip_space, agents, rng))
        return actors

    # ------------------------------------------------------------------
    def _aggressive_node(self, actor_id, budget, site, ip_space, agents, rng) -> Actor:
        if rng.random() < self.scripted_agent_fraction:
            user_agent = agents.random_scripted(rng)
        elif rng.random() < 0.3:
            user_agent = agents.random_headless(rng)
        else:
            user_agent = agents.random_browser(rng)
        return AggressiveScraper(
            actor_id,
            site,
            client_ip=ip_space.datacenter.random_address(rng),
            user_agent=user_agent,
            request_budget=budget,
            requests_per_minute=rng.uniform(45, 200),
        )

    def _stealth_node(self, actor_id, budget, site, ip_space, agents, rng) -> Actor:
        # Stealth nodes rotate over a handful of residential-proxy exits.
        exit_count = rng.randint(2, 5)
        client_ips = [ip_space.proxy.random_address(rng) for _ in range(exit_count)]
        return StealthScraper(
            actor_id,
            site,
            client_ips=client_ips,
            user_agent=agents.random_browser(rng),
            request_budget=budget,
            requests_per_minute=rng.uniform(5, 14),
        )

    def _probing_node(self, actor_id, budget, site, ip_space, agents, rng) -> Actor:
        return ProbingScraper(
            actor_id,
            site,
            client_ip=ip_space.proxy.random_address(rng),
            user_agent=agents.random_browser(rng),
            request_budget=budget,
            requests_per_minute=rng.uniform(5, 16),
        )
