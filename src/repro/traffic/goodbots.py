"""Legitimate bot behaviour models.

Two kinds of benign automation visit the site:

* **Search-engine crawlers** (Googlebot and friends): polite crawlers that
  fetch ``robots.txt``, walk the public pages at a modest, rate-limited
  pace from their operators' well-known IP ranges and never execute
  JavaScript (so no beacons, few assets).
* **Monitoring bots** (Pingdom/UptimeRobot style): hit a couple of
  endpoints every few minutes from a fixed set of probe IPs.

Both are labelled benign; how detectors treat them is an interesting part
of the diversity analysis (a rule engine that does not verify crawler
identity will alert on them, a commercial tool usually whitelists them).
"""

from __future__ import annotations

import random
from datetime import timedelta

from repro.traffic.actors import Actor, RequestEvent, TimeWindow, spread_session_starts
from repro.traffic.site import SiteModel


class SearchEngineCrawler(Actor):
    """A polite, verified search-engine crawler."""

    actor_class = "search_crawler"

    def __init__(
        self,
        actor_id: str,
        site: SiteModel,
        *,
        client_ip: str,
        user_agent: str,
        request_budget: int = 600,
    ) -> None:
        super().__init__(actor_id, site)
        self.client_ip = client_ip
        self.user_agent = user_agent
        self.request_budget = max(10, request_budget)

    def generate(self, window: TimeWindow, rng: random.Random) -> list[RequestEvent]:
        events: list[RequestEvent] = []
        # The crawler visits in several crawl waves spread over the window.
        waves = max(2, min(window.days * 2, self.request_budget // 50))
        starts = spread_session_starts(window, waves, rng)
        per_wave = max(5, self.request_budget // waves)
        for start in starts:
            now = window.clamp(start)
            # Every wave begins with robots.txt, as a polite crawler should.
            status, size = self.site.respond("robots", rng)
            events.append(
                self._event(now, self.client_ip, self.user_agent, path="/robots.txt", status=status, size=size)
            )
            now += timedelta(seconds=rng.uniform(1.0, 4.0))
            if rng.random() < 0.5:
                status, size = self.site.respond("sitemap", rng)
                events.append(
                    self._event(now, self.client_ip, self.user_agent, path="/sitemap.xml", status=status, size=size)
                )
                now += timedelta(seconds=rng.uniform(1.0, 4.0))
            for _ in range(per_wave):
                if len(events) >= self.request_budget:
                    break
                endpoint = rng.choices(["home", "search", "offer"], weights=[10, 30, 60], k=1)[0]
                conditional = rng.random() < 0.12  # crawlers re-validate known pages
                path = self.site.build_path(endpoint, rng)
                status, size = self.site.respond(endpoint, rng, conditional=conditional)
                if conditional:
                    status, size = 304, 0
                events.append(
                    self._event(now, self.client_ip, self.user_agent, path=path, status=status, size=size)
                )
                # Polite crawl delay of a few seconds keeps the rate low.
                now += timedelta(seconds=rng.uniform(3.0, 12.0))
        return events


class MonitoringBot(Actor):
    """An uptime-monitoring probe hitting the site on a fixed cadence."""

    actor_class = "monitoring_bot"

    def __init__(
        self,
        actor_id: str,
        site: SiteModel,
        *,
        client_ip: str,
        user_agent: str,
        interval_minutes: int = 15,
    ) -> None:
        super().__init__(actor_id, site)
        self.client_ip = client_ip
        self.user_agent = user_agent
        self.interval_minutes = max(1, interval_minutes)

    def generate(self, window: TimeWindow, rng: random.Random) -> list[RequestEvent]:
        events: list[RequestEvent] = []
        now = window.start + timedelta(seconds=rng.uniform(0, 60))
        while now < window.end:
            # A probe is a HEAD to the home page, occasionally a GET.
            use_head = rng.random() < 0.7
            status, size = self.site.respond("home", rng)
            if use_head:
                size = 0
            events.append(
                self._event(
                    now,
                    self.client_ip,
                    self.user_agent,
                    method="HEAD" if use_head else "GET",
                    path="/",
                    status=status,
                    size=size,
                )
            )
            now += timedelta(minutes=self.interval_minutes, seconds=rng.uniform(-20, 20))
        return events
