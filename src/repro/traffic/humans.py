"""Human visitor behaviour model.

A human visit to the travel site follows the classic funnel: land on the
home page (often from a search-engine or campaign referrer), run a couple
of flight searches, open a handful of offers, occasionally proceed towards
booking.  Along the way the browser loads static assets, fires tracking
beacons and re-validates cached assets (``304``).  Humans browse with
think-time gaps of several seconds to a couple of minutes and are active
according to the diurnal profile.

A small fraction of humans are *power users* -- fare-hunters refreshing
search results rapidly -- whose sessions brush against the detectors'
rate thresholds.  These are the realistic source of false positives in
the labelled extension experiments.
"""

from __future__ import annotations

import random
from datetime import timedelta

from repro.traffic.actors import Actor, RequestEvent, TimeWindow, spread_session_starts
from repro.traffic.diurnal import HUMAN_HOURLY_WEIGHTS
from repro.traffic.site import SiteModel

#: External referrers humans arrive from.
ENTRY_REFERRERS = (
    "https://www.google.com/",
    "https://www.google.fr/",
    "https://www.bing.com/",
    "https://duckduckgo.com/",
    "https://www.travelnews.example/",
    "https://mail.example.com/",
    "",
)

SITE_ORIGIN = "https://shop.example.com"


class HumanVisitor(Actor):
    """One human visitor with a browser, cookies and a purpose."""

    actor_class = "human"

    def __init__(
        self,
        actor_id: str,
        site: SiteModel,
        *,
        client_ip: str,
        user_agent: str,
        request_budget: int = 40,
        power_user: bool = False,
    ) -> None:
        super().__init__(actor_id, site)
        self.client_ip = client_ip
        self.user_agent = user_agent
        self.request_budget = max(4, request_budget)
        self.power_user = power_user

    # ------------------------------------------------------------------
    def generate(self, window: TimeWindow, rng: random.Random) -> list[RequestEvent]:
        events: list[RequestEvent] = []
        remaining = self.request_budget
        # A visitor spreads their budget over one to four visits.
        session_count = min(max(1, round(self.request_budget / 22)), 4)
        starts = spread_session_starts(window, session_count, rng, hourly_weights=HUMAN_HOURLY_WEIGHTS)
        for start in starts:
            if remaining <= 0:
                break
            session_budget = max(4, min(remaining, round(self.request_budget / session_count)))
            session_events = self._browse_session(window, start, session_budget, rng)
            events.extend(session_events)
            remaining -= len(session_events)
        return events

    # ------------------------------------------------------------------
    def _browse_session(
        self,
        window: TimeWindow,
        start,
        budget: int,
        rng: random.Random,
    ) -> list[RequestEvent]:
        """One visit: pages, assets, beacons, plausible think times."""
        events: list[RequestEvent] = []
        now = window.clamp(start)
        referrer = rng.choice(ENTRY_REFERRERS)
        current_page = "/"

        # Landing page.
        status, size = self.site.respond("home", rng)
        events.append(self._page_event(now, "home", current_page, status, size, referrer, rng))
        now = self._advance(now, rng)

        page_plan = self._plan_pages(budget, rng)
        for endpoint_name in page_plan:
            if len(events) >= budget:
                break
            path = self.site.build_path(endpoint_name, rng)
            malformed = rng.random() < 0.002  # the odd copy-paste accident
            status, size = self.site.respond(endpoint_name, rng, malformed=malformed)
            events.append(
                self._event(
                    now,
                    self.client_ip,
                    self.user_agent,
                    path=path,
                    status=status,
                    size=size,
                    referrer=f"{SITE_ORIGIN}{current_page}",
                )
            )
            current_page = path.split("?")[0]
            now = self._load_page_resources(events, now, budget, current_page, rng)
            now = self._advance(now, rng)
        return events

    def _plan_pages(self, budget: int, rng: random.Random) -> list[str]:
        """The sequence of page endpoints for this visit."""
        searches = rng.randint(1, 4) if not self.power_user else rng.randint(6, 14)
        plan: list[str] = []
        for _ in range(searches):
            plan.append("search")
            for _ in range(rng.randint(0, 3)):
                plan.append("offer")
        if rng.random() < 0.25:
            plan.append("login")
        if rng.random() < 0.18:
            plan.extend(["booking", "checkout"])
        # Budget cap: pages account for roughly half the requests (the rest
        # being assets and beacons), so trim the plan accordingly.
        max_pages = max(2, budget // 2)
        return plan[:max_pages]

    def _load_page_resources(self, events, now, budget, current_page, rng: random.Random):
        """Static assets and beacons triggered by a page view."""
        asset_count = rng.randint(1, 3)
        for _ in range(asset_count):
            if len(events) >= budget:
                return now
            asset = rng.choice(["asset_css", "asset_js", "asset_img"])
            conditional = rng.random() < 0.3  # browser cache re-validation
            status, size = self.site.respond(asset, rng, conditional=conditional)
            path = self.site.build_path(asset, rng, item_id=rng.randrange(40))
            events.append(
                self._event(
                    now + timedelta(seconds=rng.uniform(0.1, 1.5)),
                    self.client_ip,
                    self.user_agent,
                    path=path,
                    status=status,
                    size=size,
                    referrer=f"{SITE_ORIGIN}{current_page}",
                )
            )
        if rng.random() < 0.6 and len(events) < budget:
            status, size = self.site.respond("beacon", rng)
            events.append(
                self._event(
                    now + timedelta(seconds=rng.uniform(0.5, 2.5)),
                    self.client_ip,
                    self.user_agent,
                    path=self.site.build_path("beacon", rng, query=f"pg={current_page}"),
                    status=status,
                    size=size,
                    referrer=f"{SITE_ORIGIN}{current_page}",
                )
            )
        return now

    def _page_event(self, now, endpoint_name, path, status, size, referrer, rng) -> RequestEvent:
        return self._event(
            now,
            self.client_ip,
            self.user_agent,
            path=path,
            status=status,
            size=size,
            referrer=referrer,
        )

    def _advance(self, now, rng: random.Random):
        """Human think time between page views."""
        if self.power_user:
            think = rng.uniform(1.5, 8.0)
        else:
            think = rng.uniform(4.0, 75.0)
        return now + timedelta(seconds=think)
