"""Diurnal (time-of-day) arrival model.

Human traffic to a travel e-commerce site follows a strong daily cycle --
quiet at night, building through the morning, peaking in the evening.
Scrapers, by contrast, run around the clock.  The :class:`DiurnalProfile`
turns a per-day request budget into concrete arrival timestamps following
the chosen cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Sequence

#: Relative human activity per hour of day (00:00 .. 23:00), roughly the
#: shape observed on European consumer e-commerce sites.
HUMAN_HOURLY_WEIGHTS: Sequence[float] = (
    0.25, 0.15, 0.10, 0.08, 0.08, 0.12, 0.25, 0.45,
    0.70, 0.90, 1.00, 1.05, 1.00, 0.95, 0.95, 1.00,
    1.05, 1.10, 1.20, 1.30, 1.25, 1.05, 0.75, 0.45,
)

#: Flat profile for around-the-clock automation.
FLAT_HOURLY_WEIGHTS: Sequence[float] = tuple(1.0 for _ in range(24))


@dataclass
class DiurnalProfile:
    """Hour-of-day weighting used to place session start times."""

    hourly_weights: Sequence[float] = field(default_factory=lambda: tuple(HUMAN_HOURLY_WEIGHTS))

    def __post_init__(self) -> None:
        if len(self.hourly_weights) != 24:
            raise ValueError("a diurnal profile needs exactly 24 hourly weights")
        if any(weight < 0 for weight in self.hourly_weights):
            raise ValueError("hourly weights must be non-negative")
        if sum(self.hourly_weights) <= 0:
            raise ValueError("at least one hourly weight must be positive")

    @classmethod
    def human(cls) -> "DiurnalProfile":
        """The default human activity cycle."""
        return cls(tuple(HUMAN_HOURLY_WEIGHTS))

    @classmethod
    def flat(cls) -> "DiurnalProfile":
        """A flat, around-the-clock profile (automation)."""
        return cls(tuple(FLAT_HOURLY_WEIGHTS))

    def random_time_in_day(self, day_start: datetime, rng: random.Random) -> datetime:
        """Draw one timestamp within the day starting at ``day_start``."""
        hour = rng.choices(range(24), weights=list(self.hourly_weights), k=1)[0]
        second = rng.uniform(0, 3600)
        return day_start + timedelta(hours=hour, seconds=second)

    def sample_times(self, day_start: datetime, count: int, rng: random.Random) -> list[datetime]:
        """Draw ``count`` timestamps within one day, sorted ascending."""
        times = [self.random_time_in_day(day_start, rng) for _ in range(count)]
        times.sort()
        return times
