"""IP address space model.

Scraping campaigns and ordinary visitors come from structurally different
parts of the IP space: botnets rent cloud/datacenter ranges or cycle
through residential proxies, humans come from ISP ranges, and legitimate
crawlers come from their operators' well-known ranges.  The
:class:`IPSpace` model captures that structure, and the IP-reputation
detector consumes the same range definitions (plus a simulated reputation
feed) without ever seeing ground truth.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class IPPool:
    """A named pool of CIDR blocks from which addresses can be drawn."""

    name: str
    cidrs: Sequence[str]
    description: str = ""

    def networks(self) -> list[ipaddress.IPv4Network]:
        """The pool's CIDR blocks as network objects."""
        return [ipaddress.ip_network(cidr) for cidr in self.cidrs]

    def random_address(self, rng: random.Random) -> str:
        """Draw a random address from the pool."""
        network = rng.choice(self.networks())
        offset = rng.randrange(1, network.num_addresses - 1)
        return str(network.network_address + offset)

    def contains(self, address: str) -> bool:
        """True when ``address`` falls inside one of the pool's blocks."""
        ip = ipaddress.ip_address(address)
        return any(ip in network for network in self.networks())


#: Documentation/TEST-NET style ranges are used so the synthetic data can
#: never collide with real-world addresses.
RESIDENTIAL_POOL = IPPool(
    name="residential",
    cidrs=("10.16.0.0/14", "10.32.0.0/14", "10.48.0.0/14", "10.64.0.0/14"),
    description="ISP / residential ranges used by human visitors",
)

DATACENTER_POOL = IPPool(
    name="datacenter",
    cidrs=("172.20.0.0/16", "172.21.0.0/16", "172.22.0.0/16"),
    description="cloud and hosting ranges commonly rented by scraping botnets",
)

PROXY_POOL = IPPool(
    name="residential_proxy",
    cidrs=("10.96.0.0/13", "10.112.0.0/13"),
    description="residential proxy networks used by stealthy scrapers",
)

CRAWLER_POOL = IPPool(
    name="search_crawler",
    cidrs=("192.168.66.0/24", "192.168.77.0/24"),
    description="well-known ranges of legitimate search-engine crawlers",
)

MOBILE_POOL = IPPool(
    name="mobile_carrier",
    cidrs=("10.128.0.0/14",),
    description="mobile carrier-grade NAT ranges",
)


class IPSpace:
    """The full address-space model used by a scenario."""

    def __init__(
        self,
        residential: IPPool = RESIDENTIAL_POOL,
        datacenter: IPPool = DATACENTER_POOL,
        proxy: IPPool = PROXY_POOL,
        crawler: IPPool = CRAWLER_POOL,
        mobile: IPPool = MOBILE_POOL,
    ) -> None:
        self.residential = residential
        self.datacenter = datacenter
        self.proxy = proxy
        self.crawler = crawler
        self.mobile = mobile

    def pools(self) -> list[IPPool]:
        """All pools in the space."""
        return [self.residential, self.datacenter, self.proxy, self.crawler, self.mobile]

    def pool_of(self, address: str) -> str:
        """Return the name of the pool containing ``address`` (or ``"unknown"``)."""
        for pool in self.pools():
            if pool.contains(address):
                return pool.name
        return "unknown"

    # ------------------------------------------------------------------
    # Reputation feed simulation
    # ------------------------------------------------------------------
    def reputation_blocklist(self, rng: random.Random, *, datacenter_fraction: float = 0.65) -> set[str]:
        """Simulate a commercial IP-reputation feed.

        A reputation feed flags a large share of datacenter/hosting CIDRs
        (where scraping traffic concentrates) and essentially none of the
        residential space.  The feed is expressed as a set of /24 prefixes
        considered "bad", which is how such feeds are commonly consumed.
        """
        flagged: set[str] = set()
        for network in self.datacenter.networks():
            for subnet in network.subnets(new_prefix=24):
                if rng.random() < datacenter_fraction:
                    flagged.add(str(subnet.network_address).rsplit(".", 1)[0])
        return flagged


def prefix24(address: str) -> str:
    """Return the /24 prefix of an IPv4 address (``"10.16.3"`` for ``10.16.3.7``)."""
    return address.rsplit(".", 1)[0]


def addresses_from(pool: IPPool, count: int, rng: random.Random) -> list[str]:
    """Draw ``count`` distinct-ish addresses from ``pool``."""
    return [pool.random_address(rng) for _ in range(count)]


def spread_over_pools(pools: Iterable[IPPool], count: int, rng: random.Random) -> list[str]:
    """Draw ``count`` addresses spread uniformly over several pools."""
    pool_list = list(pools)
    return [rng.choice(pool_list).random_address(rng) for _ in range(count)]
