"""Traffic scenarios.

A :class:`Scenario` is a declarative description of a simulated data set:
the time window, the total request budget and how that budget is divided
over the actor families.  The preset :func:`amadeus_march_2018` scenario
is the workload used by every paper-reproduction benchmark; it mirrors the
structure of the data set analysed in the paper (8 days in March 2018,
about 1.47 million requests at full scale, bot-dominated traffic).

Scenarios are scale-invariant: ``amadeus_march_2018(scale=0.05)`` produces
a data set with the same *composition* at one twentieth of the size, which
is what the benchmarks use to keep runtimes reasonable.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Mapping

from repro.exceptions import ScenarioError
from repro.registry import Registry
from repro.traffic.actors import ActorPopulation, TimeWindow, split_budget
from repro.traffic.botnet import BotnetCampaign
from repro.traffic.goodbots import MonitoringBot, SearchEngineCrawler
from repro.traffic.humans import HumanVisitor
from repro.traffic.ipspace import IPSpace
from repro.traffic.site import SiteModel
from repro.traffic.useragents import UserAgentCatalog

#: Total number of HTTP requests in the paper's data set (Table 1).
PAPER_TOTAL_REQUESTS = 1_469_744

#: Default traffic composition of the calibrated March-2018 scenario, as
#: fractions of the total request budget.  See DESIGN.md §5 for how these
#: were chosen to reproduce the shape of the paper's Tables 1-4.
DEFAULT_MIX: Mapping[str, float] = {
    "aggressive": 0.828,
    "stealth": 0.032,
    "probing": 0.009,
    "human": 0.1245,
    "crawler": 0.0045,
    "monitoring": 0.002,
}


@dataclass
class Scenario:
    """A declarative traffic-generation scenario."""

    name: str
    window: TimeWindow
    total_requests: int
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    seed: int = 2018
    scale: float = 1.0
    site: SiteModel = field(default_factory=SiteModel)
    ip_space: IPSpace = field(default_factory=IPSpace)
    agents: UserAgentCatalog = field(default_factory=UserAgentCatalog)

    def __post_init__(self) -> None:
        if self.total_requests <= 0:
            raise ScenarioError("a scenario needs a positive request budget")
        mix_sum = sum(self.mix.values())
        if not math.isclose(mix_sum, 1.0, rel_tol=0.02):
            raise ScenarioError(f"traffic mix fractions must sum to 1.0 (got {mix_sum:.4f})")
        unknown = set(self.mix) - set(DEFAULT_MIX)
        if unknown:
            raise ScenarioError(f"unknown traffic classes in mix: {sorted(unknown)}")

    # ------------------------------------------------------------------
    def budget_for(self, traffic_class: str) -> int:
        """The request budget assigned to a traffic class."""
        return int(round(self.total_requests * self.mix.get(traffic_class, 0.0)))

    # ------------------------------------------------------------------
    def build_population(self, rng: random.Random) -> ActorPopulation:
        """Instantiate the concrete actor population for this scenario."""
        population = ActorPopulation()
        self._add_scraper_campaigns(population, rng)
        self._add_humans(population, rng)
        self._add_good_bots(population, rng)
        return population

    # ------------------------------------------------------------------
    def _add_scraper_campaigns(self, population: ActorPopulation, rng: random.Random) -> None:
        aggressive_budget = self.budget_for("aggressive")
        if aggressive_budget > 0:
            nodes = max(6, round(aggressive_budget / 8_000))
            campaign = BotnetCampaign(
                name="price-harvest",
                family="aggressive",
                total_requests=aggressive_budget,
                nodes=nodes,
                scripted_agent_fraction=0.5,
            )
            population.extend(campaign.build_actors(self.site, self.ip_space, self.agents, rng))

        stealth_budget = self.budget_for("stealth")
        if stealth_budget > 0:
            nodes = max(2, round(stealth_budget / 2_500))
            campaign = BotnetCampaign(
                name="quiet-mirror",
                family="stealth",
                total_requests=stealth_budget,
                nodes=nodes,
            )
            population.extend(campaign.build_actors(self.site, self.ip_space, self.agents, rng))

        probing_budget = self.budget_for("probing")
        if probing_budget > 0:
            nodes = max(1, round(probing_budget / 900))
            campaign = BotnetCampaign(
                name="api-mapper",
                family="probing",
                total_requests=probing_budget,
                nodes=nodes,
            )
            population.extend(campaign.build_actors(self.site, self.ip_space, self.agents, rng))

    def _add_humans(self, population: ActorPopulation, rng: random.Random) -> None:
        human_budget = self.budget_for("human")
        if human_budget <= 0:
            return
        visitors = max(3, round(human_budget / 40))
        budgets = split_budget(human_budget, visitors, rng, jitter=0.5)
        for index, budget in enumerate(budgets):
            pool = self.ip_space.mobile if rng.random() < 0.25 else self.ip_space.residential
            population.add(
                HumanVisitor(
                    f"human-{index}",
                    self.site,
                    client_ip=pool.random_address(rng),
                    user_agent=self.agents.random_browser(rng),
                    request_budget=budget,
                    power_user=rng.random() < 0.03,
                )
            )

    def _add_good_bots(self, population: ActorPopulation, rng: random.Random) -> None:
        crawler_budget = self.budget_for("crawler")
        if crawler_budget > 0:
            crawler_count = 2 if crawler_budget < 2_000 else 3
            budgets = split_budget(crawler_budget, crawler_count, rng)
            for index, budget in enumerate(budgets):
                population.add(
                    SearchEngineCrawler(
                        f"crawler-{index}",
                        self.site,
                        client_ip=self.ip_space.crawler.random_address(rng),
                        user_agent=self.agents.random_crawler(rng),
                        request_budget=budget,
                    )
                )

        monitoring_budget = self.budget_for("monitoring")
        if monitoring_budget > 0:
            # One probe service; its cadence is derived from the budget so
            # tiny scenarios are not swamped by monitoring traffic.
            total_minutes = self.window.days * 24 * 60
            interval = max(5, round(total_minutes / max(monitoring_budget, 1)))
            population.add(
                MonitoringBot(
                    "monitor-0",
                    self.site,
                    client_ip=self.ip_space.crawler.random_address(rng),
                    user_agent=self.agents.random_crawler(rng),
                    interval_minutes=interval,
                )
            )


# ----------------------------------------------------------------------
# Preset scenarios
# ----------------------------------------------------------------------
def amadeus_march_2018(*, scale: float = 0.05, seed: int = 2018) -> Scenario:
    """The calibrated reproduction scenario.

    Parameters
    ----------
    scale:
        Fraction of the paper's 1,469,744 requests to generate.  The
        default of 0.05 (~73k requests) keeps detector runs and benchmarks
        in the tens of seconds; pass ``scale=1.0`` for a full-size run.
    seed:
        Seed controlling the whole simulation (actor placement, behaviour
        and site responses).
    """
    if scale <= 0:
        raise ScenarioError("scale must be positive")
    start = datetime(2018, 3, 11, 0, 0, 0, tzinfo=timezone.utc)
    return Scenario(
        name="amadeus_march_2018",
        window=TimeWindow(start=start, days=8),
        total_requests=max(500, int(round(PAPER_TOTAL_REQUESTS * scale))),
        mix=dict(DEFAULT_MIX),
        seed=seed,
        scale=scale,
    )


def balanced_small(*, total_requests: int = 6_000, seed: int = 7) -> Scenario:
    """A small scenario with a more even benign/malicious split.

    Useful for tests and for exercising the labelled-evaluation code where
    a bot-dominated mix would make specificity estimates very noisy.
    """
    start = datetime(2018, 3, 11, 0, 0, 0, tzinfo=timezone.utc)
    mix = {
        "aggressive": 0.38,
        "stealth": 0.08,
        "probing": 0.04,
        "human": 0.47,
        "crawler": 0.02,
        "monitoring": 0.01,
    }
    return Scenario(
        name="balanced_small",
        window=TimeWindow(start=start, days=3),
        total_requests=total_requests,
        mix=mix,
        seed=seed,
        scale=total_requests / PAPER_TOTAL_REQUESTS,
    )


def stealth_heavy(*, total_requests: int = 20_000, seed: int = 23) -> Scenario:
    """A scenario where stealthy scraping dominates the malicious traffic.

    This stresses the diversity argument: rule-based detection alone
    misses most of the malicious traffic, so the benefit of combining
    detectors is much larger than in the calibrated March-2018 scenario.
    """
    start = datetime(2018, 3, 11, 0, 0, 0, tzinfo=timezone.utc)
    mix = {
        "aggressive": 0.18,
        "stealth": 0.42,
        "probing": 0.10,
        "human": 0.28,
        "crawler": 0.015,
        "monitoring": 0.005,
    }
    return Scenario(
        name="stealth_heavy",
        window=TimeWindow(start=start, days=5),
        total_requests=total_requests,
        mix=mix,
        seed=seed,
        scale=total_requests / PAPER_TOTAL_REQUESTS,
    )


_SCENARIO_REGISTRY: Registry[Scenario] = Registry("scenario", ScenarioError)


def register_scenario(
    name: str, factory: Callable[..., Scenario], *, overwrite: bool = False
) -> None:
    """Register a scenario factory so specs and the CLI can build it by name."""
    _SCENARIO_REGISTRY.register(name, factory, overwrite=overwrite)


def list_scenarios() -> list[str]:
    """Names of the registered scenarios."""
    return _SCENARIO_REGISTRY.names()


def get_scenario(name: str, **kwargs) -> Scenario:
    """Build a registered scenario by name (keyword arguments are forwarded).

    Raises :class:`~repro.exceptions.ScenarioError` -- with a
    did-you-mean suggestion -- when the name is unknown.
    """
    return _SCENARIO_REGISTRY.create(name, **kwargs)


register_scenario("amadeus_march_2018", amadeus_march_2018)
register_scenario("balanced_small", balanced_small)
register_scenario("stealth_heavy", stealth_heavy)
