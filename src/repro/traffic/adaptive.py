"""Adaptive attacker models for the closed-loop simulation.

The scripted scraper families in :mod:`repro.traffic.scrapers` decide
their whole trace before the first request is sent, so an enforcement
gateway defeats them trivially: once their IP is blocked, every further
request bounces off the edge.  Real campaigns are not that polite.  An
:class:`AdaptiveScraperNode` plays the evasion game the literature (and
the paper's "commercial tools see an arms race" discussion) describes:

* **identity rotation** -- after being blocked (or failing a challenge)
  the node moves to a fresh exit IP and a fresh spoofed user agent,
  resetting every per-visitor signal the defense keyed on;
* **session splitting** -- rotation comes with a lie-low pause long
  enough for the old session to time out, so the behavioural detectors
  meet a brand-new session instead of a continuation;
* **rate backoff** -- throttling is interpreted as "you are above a
  threshold": the node multiplies its inter-request gap and only creeps
  back up while requests flow freely.

Each evasion has a cost the Table-5-style report accounts for: rotations
burn proxy capacity, backoff burns time, and a node that exhausts its
identity pool gives up entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.traffic.actors import RequestEvent, TimeWindow, split_budget
from repro.traffic.ipspace import IPSpace
from repro.traffic.site import SiteModel
from repro.traffic.stepping import Feedback, SteppedActor, SteppedPopulation
from repro.traffic.useragents import UserAgentCatalog

#: Endpoint mix of a price-scraping node (same targets as the scripted
#: :class:`~repro.traffic.scrapers.AggressiveScraper`).
_SCRAPE_ENDPOINTS = ("search", "offer", "price_api", "availability")
_SCRAPE_WEIGHTS = (38, 40, 14, 8)


class AdaptiveScraperNode(SteppedActor):
    """A price-scraping node that reacts to enforcement feedback.

    Parameters
    ----------
    site, ip_space, agents:
        The shared world models (requests, exit addresses, identities).
    request_budget:
        Requests the node wants to land (served or not, emission stops
        once the budget is spent or the node gives up).
    requests_per_minute:
        Initial request rate; throttling feedback backs it off.
    identities:
        Size of the node's proxy/identity pool, counting the identity it
        starts with: an ``n``-identity node can rotate ``n - 1`` times
        and gives up at the first denial after its pool is exhausted.
    challenge_skill:
        Probability of solving a challenge (headless browsers with a
        solver service have a non-zero but mediocre success rate).
    backoff_factor / recovery_factor:
        Gap multiplier applied on throttle feedback, and the per-served-
        request decay back towards the original pace.
    """

    actor_class = "adaptive_scraper"

    def __init__(
        self,
        actor_id: str,
        site: SiteModel,
        *,
        ip_space: IPSpace,
        agents: UserAgentCatalog,
        request_budget: int = 4_000,
        requests_per_minute: float = 90.0,
        identities: int = 8,
        challenge_skill: float = 0.25,
        backoff_factor: float = 1.8,
        recovery_factor: float = 0.98,
        min_lie_low_seconds: float = 35 * 60.0,
        max_lie_low_seconds: float = 90 * 60.0,
    ) -> None:
        super().__init__(actor_id)
        if identities < 1:
            raise ValueError("an adaptive node needs at least one identity")
        if not 0.0 <= challenge_skill <= 1.0:
            raise ValueError("challenge_skill must be within [0, 1]")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1.0")
        self.site = site
        self.ip_space = ip_space
        self.agents = agents
        self.request_budget = max(30, request_budget)
        self.requests_per_minute = max(10.0, requests_per_minute)
        self.identities = identities
        self.challenge_skill = challenge_skill
        self.backoff_factor = backoff_factor
        self.recovery_factor = recovery_factor
        self.min_lie_low_seconds = min_lie_low_seconds
        self.max_lie_low_seconds = max_lie_low_seconds
        # Campaign-cost accounting, read by the mitigation metrics.
        self.rotations = 0
        self.gave_up = False
        self.produced = 0

    # ------------------------------------------------------------------
    def begin(self, window: TimeWindow, rng: random.Random) -> None:
        self._window = window
        self._rng = rng
        self.rotations = 0
        self.gave_up = False
        self.produced = 0
        self._slowdown = 1.0
        self._client_ip = self.ip_space.datacenter.random_address(rng)
        self._user_agent = self.agents.random_browser(rng)
        # Nodes do not all start at midnight; stagger over the first hours.
        offset = rng.uniform(0, min(6 * 3600.0, window.days * 86_400.0 / 4))
        self._next_time: datetime | None = window.start + timedelta(seconds=offset)

    def peek(self) -> datetime | None:
        if self.gave_up or self.produced >= self.request_budget:
            return None
        if self._next_time is None or self._next_time >= self._window.end:
            return None
        return self._next_time

    def emit(self) -> RequestEvent:
        rng = self._rng
        endpoint = rng.choices(_SCRAPE_ENDPOINTS, weights=_SCRAPE_WEIGHTS, k=1)[0]
        path = self.site.build_path(endpoint, rng)
        status, size = self.site.respond(endpoint, rng)
        event = RequestEvent(
            timestamp=self._next_time,
            client_ip=self._client_ip,
            method="GET",
            path=path,
            status=status,
            response_size=size,
            referrer="",
            user_agent=self._user_agent,
            actor_id=self.actor_id,
            actor_class=self.actor_class,
        )
        self.produced += 1
        gap = (60.0 / self.requests_per_minute) * self._slowdown
        self._next_time = self._next_time + timedelta(
            seconds=max(0.05, rng.gauss(gap, gap * 0.1))
        )
        return event

    def solve_challenge(self, rng: random.Random) -> bool:
        return rng.random() < self.challenge_skill

    # ------------------------------------------------------------------
    def feedback(self, event: RequestEvent, feedback: Feedback, rng: random.Random) -> None:
        if feedback.denied:
            self._rotate_or_give_up(rng)
        elif feedback.action == "throttle":
            # Read throttling as "slow down until the pressure stops".
            self._slowdown = min(16.0, self._slowdown * self.backoff_factor)
        elif feedback.served:
            # Creep back towards the intended pace while nothing pushes back.
            self._slowdown = max(1.0, self._slowdown * self.recovery_factor)

    def _rotate_or_give_up(self, rng: random.Random) -> None:
        if self.rotations + 1 >= self.identities:
            self.gave_up = True
            self._next_time = None
            return
        self.rotations += 1
        self._client_ip = self.ip_space.datacenter.random_address(rng)
        self._user_agent = self.agents.random_browser(rng)
        self._slowdown = max(1.0, self._slowdown * 0.75)
        # Lie low long enough for the blocked session to time out, so the
        # fresh identity also starts a fresh behavioural slate.
        if self._next_time is not None:
            self._next_time = self._next_time + timedelta(
                seconds=rng.uniform(self.min_lie_low_seconds, self.max_lie_low_seconds)
            )


@dataclass
class AdaptiveCampaign:
    """A fleet of adaptive scraping nodes sharing one request budget."""

    name: str
    total_requests: int
    nodes: int
    identities_per_node: int = 8
    challenge_skill: float = 0.25

    def __post_init__(self) -> None:
        if self.total_requests < 0:
            raise ValueError("total_requests must be non-negative")
        if self.nodes <= 0:
            raise ValueError("a campaign needs at least one node")

    def build_actors(
        self,
        site: SiteModel,
        ip_space: IPSpace,
        agents: UserAgentCatalog,
        rng: random.Random,
    ) -> list[AdaptiveScraperNode]:
        """Instantiate the campaign's nodes as adaptive stepped actors."""
        budgets = split_budget(self.total_requests, self.nodes, rng)
        return [
            AdaptiveScraperNode(
                f"{self.name}-node{index}",
                site,
                ip_space=ip_space,
                agents=agents,
                request_budget=budget,
                requests_per_minute=rng.uniform(45, 200),
                identities=self.identities_per_node,
                challenge_skill=self.challenge_skill,
            )
            for index, budget in enumerate(budgets)
        ]

    def build_population(
        self,
        site: SiteModel,
        ip_space: IPSpace,
        agents: UserAgentCatalog,
        rng: random.Random,
    ) -> SteppedPopulation:
        """The campaign's nodes as a stand-alone stepped population."""
        population = SteppedPopulation()
        population.extend(self.build_actors(site, ip_space, agents, rng))
        return population
