"""User-agent catalogue.

The catalogue distinguishes four families of user agents, because the
detectors treat them very differently:

* mainstream **browser** user agents (used by humans and by scrapers that
  spoof a browser identity),
* **legitimate crawler** user agents (Googlebot, Bingbot, monitoring
  services),
* **scripted-client** user agents (python-requests, curl, Scrapy, Java,
  Go) -- the signature of unsophisticated scraping tools,
* **headless-browser** user agents (HeadlessChrome, PhantomJS) used by
  middle-tier scrapers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

BROWSER_AGENTS: Sequence[str] = (
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/65.0.3325.146 Safari/537.36",
    "Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0.3 Safari/604.5.6",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:58.0) Gecko/20100101 Firefox/58.0",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:59.0) Gecko/20100101 Firefox/59.0",
    "Mozilla/5.0 (X11; Linux x86_64; rv:52.0) Gecko/20100101 Firefox/52.0",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36 Edge/16.16299",
    "Mozilla/5.0 (iPhone; CPU iPhone OS 11_2_6 like Mac OS X) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0 Mobile/15D100 Safari/604.1",
    "Mozilla/5.0 (Linux; Android 8.0.0; SM-G950F) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.137 Mobile Safari/537.36",
    "Mozilla/5.0 (iPad; CPU OS 11_2_5 like Mac OS X) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0 Mobile/15D60 Safari/604.1",
)

CRAWLER_AGENTS: Sequence[str] = (
    "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
    "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
    "Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)",
    "Mozilla/5.0 (compatible; Baiduspider/2.0; +http://www.baidu.com/search/spider.html)",
    "Mozilla/5.0 (compatible; Pingdom.com_bot_version_1.4; http://www.pingdom.com/)",
    "Mozilla/5.0 (compatible; UptimeRobot/2.0; http://www.uptimerobot.com/)",
)

SCRIPTED_AGENTS: Sequence[str] = (
    "python-requests/2.18.4",
    "python-requests/2.19.1",
    "python-urllib3/1.22",
    "Scrapy/1.5.0 (+https://scrapy.org)",
    "curl/7.58.0",
    "curl/7.47.0",
    "Wget/1.19.4 (linux-gnu)",
    "Java/1.8.0_161",
    "Apache-HttpClient/4.5.5 (Java/1.8.0_151)",
    "Go-http-client/1.1",
    "okhttp/3.9.1",
    "libwww-perl/6.31",
    "PHP/7.2.2",
    "Ruby",
)

HEADLESS_AGENTS: Sequence[str] = (
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/64.0.3282.186 Safari/537.36",
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/65.0.3325.146 Safari/537.36",
    "Mozilla/5.0 (Unknown; Linux x86_64) AppleWebKit/538.1 (KHTML, like Gecko) PhantomJS/2.1.1 Safari/538.1",
    "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2228.0 Safari/537.36 SlimerJS/0.10.3",
)

#: Substrings that identify scripted clients; shared with the detectors'
#: fingerprint rules so the library has a single source of truth for what
#: an obviously non-browser user agent looks like.
SCRIPTED_AGENT_MARKERS: Sequence[str] = (
    "python-requests",
    "python-urllib",
    "scrapy",
    "curl/",
    "wget/",
    "java/",
    "apache-httpclient",
    "go-http-client",
    "okhttp",
    "libwww-perl",
    "php/",
    "ruby",
)

#: Substrings that identify headless browsers.
HEADLESS_AGENT_MARKERS: Sequence[str] = ("headlesschrome", "phantomjs", "slimerjs")

#: Substrings that identify well-known legitimate crawlers.
KNOWN_CRAWLER_MARKERS: Sequence[str] = (
    "googlebot",
    "bingbot",
    "yandexbot",
    "baiduspider",
    "pingdom",
    "uptimerobot",
)


@dataclass
class UserAgentCatalog:
    """Weighted access to the user-agent families."""

    browsers: Sequence[str] = field(default_factory=lambda: tuple(BROWSER_AGENTS))
    crawlers: Sequence[str] = field(default_factory=lambda: tuple(CRAWLER_AGENTS))
    scripted: Sequence[str] = field(default_factory=lambda: tuple(SCRIPTED_AGENTS))
    headless: Sequence[str] = field(default_factory=lambda: tuple(HEADLESS_AGENTS))

    def random_browser(self, rng: random.Random) -> str:
        """A mainstream browser user agent."""
        return rng.choice(list(self.browsers))

    def random_crawler(self, rng: random.Random) -> str:
        """A legitimate crawler user agent."""
        return rng.choice(list(self.crawlers))

    def random_scripted(self, rng: random.Random) -> str:
        """A scripted-client user agent (requests/curl/Scrapy/...)."""
        return rng.choice(list(self.scripted))

    def random_headless(self, rng: random.Random) -> str:
        """A headless-browser user agent."""
        return rng.choice(list(self.headless))


def is_scripted_agent(user_agent: str) -> bool:
    """True when the user agent is an obvious scripted client."""
    lowered = user_agent.lower()
    return any(marker in lowered for marker in SCRIPTED_AGENT_MARKERS)


def is_headless_agent(user_agent: str) -> bool:
    """True when the user agent is a headless browser."""
    lowered = user_agent.lower()
    return any(marker in lowered for marker in HEADLESS_AGENT_MARKERS)


def is_known_crawler_agent(user_agent: str) -> bool:
    """True when the user agent claims to be a well-known legitimate crawler."""
    lowered = user_agent.lower()
    return any(marker in lowered for marker in KNOWN_CRAWLER_MARKERS)
