"""Synthetic e-commerce traffic generator.

The paper's data set -- 8 days of Apache access logs for an Amadeus
e-commerce application -- is proprietary.  This package builds the closest
synthetic equivalent: a travel e-commerce *site model*, a population of
*actors* (human visitors, legitimate crawlers and several families of
scraping bots) and a *generator* that simulates their activity over a
configurable time window and emits genuine Apache combined-log-format
records with ground-truth labels.

The preset :func:`repro.traffic.scenarios.amadeus_march_2018` scenario is
calibrated so that the resulting traffic has the same structural shape as
the paper's data set (bot-dominated traffic, the same status-code mix and
the same kind of detector-coverage asymmetries).
"""

from repro.traffic.actors import Actor, ActorPopulation, RequestEvent
from repro.traffic.adaptive import AdaptiveCampaign, AdaptiveScraperNode
from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.generator import TrafficGenerator, generate_dataset
from repro.traffic.goodbots import MonitoringBot, SearchEngineCrawler
from repro.traffic.humans import HumanVisitor
from repro.traffic.ipspace import IPSpace, IPPool
from repro.traffic.labels import actor_label, is_malicious_class
from repro.traffic.scenarios import (
    Scenario,
    amadeus_march_2018,
    balanced_small,
    get_scenario,
    list_scenarios,
    stealth_heavy,
)
from repro.traffic.scrapers import AggressiveScraper, ProbingScraper, StealthScraper
from repro.traffic.site import Endpoint, SiteModel
from repro.traffic.stepping import (
    Feedback,
    ResponsiveSteppedActor,
    ScriptedSteppedActor,
    SteppedActor,
    SteppedPopulation,
    as_stepped,
)
from repro.traffic.useragents import UserAgentCatalog

__all__ = [
    "Actor",
    "ActorPopulation",
    "AdaptiveCampaign",
    "AdaptiveScraperNode",
    "AggressiveScraper",
    "DiurnalProfile",
    "Endpoint",
    "Feedback",
    "HumanVisitor",
    "IPPool",
    "IPSpace",
    "MonitoringBot",
    "ProbingScraper",
    "RequestEvent",
    "ResponsiveSteppedActor",
    "Scenario",
    "ScriptedSteppedActor",
    "SearchEngineCrawler",
    "SiteModel",
    "StealthScraper",
    "SteppedActor",
    "SteppedPopulation",
    "TrafficGenerator",
    "UserAgentCatalog",
    "actor_label",
    "amadeus_march_2018",
    "as_stepped",
    "balanced_small",
    "generate_dataset",
    "get_scenario",
    "is_malicious_class",
    "list_scenarios",
    "stealth_heavy",
]
