"""The persistent run store: every executed RunSpec's result, in SQLite.

A :class:`RunStore` is a single SQLite file recording one row per
executed run: the full spec JSON (content-addressed, so identical
experiments share one ``specs`` row and re-runs append to a *series*),
the complete :class:`~repro.runspec.result.RunResult` dictionary, the
``repro.obs`` telemetry snapshot, the traffic's content-address
fingerprint when the run's traffic was cacheable, the recording
library's version and wall-clock metadata.  Everything the run produced
comes back out byte-identically::

    with RunStore("runs.db") as store:
        recorded = store.record(execute(spec), wall_seconds=1.2)
        assert store.load(recorded.run_id).to_dict() == result.to_dict()

The schema is versioned and migrated in place on open (see
:mod:`repro.runstore.migrations`); stores written by older library
versions upgrade transparently, newer ones are refused loudly.

Storage layout notes
--------------------
* ``specs`` is the dedupe table: the spec's canonical JSON is stored
  once per distinct :func:`spec_fingerprint`; ``runs.spec_hash`` groups
  a series of re-runs of the same experiment, which is what the
  dashboard's trend sparklines and ``repro runs diff`` iterate.
* ``runs.result_json`` holds ``RunResult.to_dict()`` *minus* the
  telemetry snapshot (its own column) and the profile capture (the
  ``profiles`` table), so listing and diffing spec/metric data never
  parses those much larger payloads.
* One connection per store, guarded by a lock -- the dashboard serves
  each HTTP request from a short-lived read-only store instead of
  sharing connections across threads.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.exceptions import StoreError
from repro.runspec.result import RunResult
from repro.runstore.migrations import SCHEMA_VERSION, apply_migrations, schema_version

#: Environment variable naming the default run-store file for the CLI
#: and the benchmark harness (``--store`` beats it when both are given).
RUN_STORE_ENV = "REPRO_RUN_STORE"


def spec_fingerprint(spec: Mapping[str, Any] | None) -> str:
    """The content address of one spec dictionary (sha256 of canonical JSON).

    Key order never matters; two specs serialise to the same fingerprint
    iff they describe the same experiment.  ``None`` (a result recorded
    without a spec, e.g. a legacy entry point) hashes the empty spec, so
    such runs still form a series.
    """
    canonical = json.dumps(spec or {}, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSummary:
    """One ``runs`` row without its (potentially large) JSON payloads."""

    run_id: int
    spec_hash: str
    mode: str
    source: str
    label: str
    recorded_at: float
    wall_seconds: float | None
    total_requests: int
    trace_fingerprint: str | None
    package_version: str | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "spec_hash": self.spec_hash,
            "mode": self.mode,
            "source": self.source,
            "label": self.label,
            "recorded_at": self.recorded_at,
            "wall_seconds": self.wall_seconds,
            "total_requests": self.total_requests,
            "trace_fingerprint": self.trace_fingerprint,
            "package_version": self.package_version,
        }


@dataclass(frozen=True)
class RecordedRun:
    """What :meth:`RunStore.record` hands back: the new row's identity."""

    run_id: int
    spec_hash: str
    #: Position of this run within its spec series (1 = first run).
    series_index: int


@dataclass
class StoreStats:
    """Aggregate store contents (the dashboard's header numbers)."""

    runs: int = 0
    specs: int = 0
    modes: dict[str, int] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "runs": self.runs,
            "specs": self.specs,
            "modes": dict(self.modes),
            "schema_version": self.schema_version,
        }


class RunStore:
    """A SQLite-backed, schema-migrated store of executed runs."""

    def __init__(self, path: str | os.PathLike[str], *, create: bool = True) -> None:
        self.path = os.fspath(path)
        if not create and not os.path.exists(self.path):
            raise StoreError(f"run store {self.path!r} does not exist")
        try:
            self._connection = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open run store {self.path!r}: {exc}") from exc
        self._lock = threading.Lock()
        self._closed = False
        try:
            # A non-runstore SQLite file has tables but version 0 and the
            # first migration would collide with them; detect that early.
            if schema_version(self._connection) == 0 and self._has_foreign_tables():
                raise StoreError(f"{self.path!r} is a SQLite file but not a run store")
            apply_migrations(self._connection)
        except StoreError:
            self._connection.close()
            raise
        except sqlite3.DatabaseError as exc:
            self._connection.close()
            raise StoreError(f"{self.path!r} is not a run-store database: {exc}") from exc

    # ------------------------------------------------------------------
    def _has_foreign_tables(self) -> bool:
        rows = self._connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        ).fetchall()
        return bool(rows)

    def _execute(self, sql: str, parameters: tuple[Any, ...] = ()) -> sqlite3.Cursor:
        if self._closed:
            raise StoreError(f"run store {self.path!r} is closed")
        try:
            return self._connection.execute(sql, parameters)
        except sqlite3.DatabaseError as exc:
            raise StoreError(f"run-store query failed: {exc}") from exc

    # ------------------------------------------------------------------
    def record(
        self,
        result: RunResult,
        *,
        wall_seconds: float | None = None,
        recorded_at: float | None = None,
        trace_fingerprint: str | None = None,
    ) -> RecordedRun:
        """Append one executed run; return its id, spec hash and series index.

        The spec travels inside the result (``RunResult.spec``); its
        content hash dedupes the ``specs`` row, so recording the same
        experiment twice appends a second run to the same series rather
        than duplicating the spec.
        """
        from repro import __version__ as package_version  # late: package init order

        if not isinstance(result, RunResult):
            raise StoreError(
                f"record() takes a RunResult, got {type(result).__name__}"
            )
        if self._closed:
            raise StoreError(f"run store {self.path!r} is closed")
        data = result.to_dict()
        telemetry = data.pop("telemetry", None)
        profile = data.pop("profile", None)
        spec = data.get("spec")
        spec_hash = spec_fingerprint(spec)
        recorded_at = time.time() if recorded_at is None else float(recorded_at)
        if wall_seconds is None:
            # Fall back to the result's own slowest stage wall-clock.
            wall_seconds = max(result.timings.values(), default=None)
        with self._lock, self._connection:
            self._execute(
                "INSERT INTO specs (hash, mode, label, spec_json, first_recorded_at) "
                "VALUES (?, ?, ?, ?, ?) ON CONFLICT(hash) DO NOTHING",
                (
                    spec_hash,
                    result.mode,
                    result.label,
                    json.dumps(spec or {}, sort_keys=True),
                    recorded_at,
                ),
            )
            cursor = self._execute(
                "INSERT INTO runs (spec_hash, mode, source, label, recorded_at, "
                "wall_seconds, total_requests, result_json, telemetry_json, "
                "trace_fingerprint, package_version) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec_hash,
                    result.mode,
                    result.source,
                    result.label,
                    recorded_at,
                    wall_seconds,
                    result.total_requests,
                    json.dumps(data),
                    None if telemetry is None else json.dumps(telemetry),
                    trace_fingerprint,
                    package_version,
                ),
            )
            run_id = cursor.lastrowid
            if profile is not None:
                self._execute(
                    "INSERT INTO profiles (run_id, profile_json) VALUES (?, ?)",
                    (run_id, json.dumps(profile)),
                )
            series_index = self._execute(
                "SELECT COUNT(*) FROM runs WHERE spec_hash = ? AND id <= ?",
                (spec_hash, run_id),
            ).fetchone()[0]
        return RecordedRun(run_id=run_id, spec_hash=spec_hash, series_index=series_index)

    # ------------------------------------------------------------------
    _SUMMARY_COLUMNS = (
        "id, spec_hash, mode, source, label, recorded_at, wall_seconds, "
        "total_requests, trace_fingerprint, package_version"
    )

    @staticmethod
    def _summary(row: tuple[Any, ...]) -> RunSummary:
        return RunSummary(
            run_id=row[0],
            spec_hash=row[1],
            mode=row[2],
            source=row[3],
            label=row[4],
            recorded_at=row[5],
            wall_seconds=row[6],
            total_requests=row[7],
            trace_fingerprint=row[8],
            package_version=row[9],
        )

    def list_runs(
        self,
        *,
        mode: str | None = None,
        spec_hash: str | None = None,
        limit: int | None = None,
    ) -> list[RunSummary]:
        """Run summaries, newest first; filter by mode or spec-hash prefix."""
        clauses, parameters = [], []
        if mode is not None:
            clauses.append("mode = ?")
            parameters.append(mode)
        if spec_hash is not None:
            clauses.append("spec_hash LIKE ?")
            parameters.append(spec_hash + "%")
        sql = f"SELECT {self._SUMMARY_COLUMNS} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            parameters.append(int(limit))
        with self._lock:
            rows = self._execute(sql, tuple(parameters)).fetchall()
        return [self._summary(row) for row in rows]

    def series(self, spec_hash: str) -> list[RunSummary]:
        """Every run of one spec series, oldest first (the trend axis)."""
        with self._lock:
            rows = self._execute(
                f"SELECT {self._SUMMARY_COLUMNS} FROM runs WHERE spec_hash LIKE ? "
                "ORDER BY id ASC",
                (spec_hash + "%",),
            ).fetchall()
        return [self._summary(row) for row in rows]

    def get(self, run_id: int) -> RunSummary:
        """One run's summary row (raises :class:`StoreError` when absent)."""
        with self._lock:
            row = self._execute(
                f"SELECT {self._SUMMARY_COLUMNS} FROM runs WHERE id = ?", (int(run_id),)
            ).fetchone()
        if row is None:
            raise StoreError(f"run store has no run #{run_id}")
        return self._summary(row)

    # ------------------------------------------------------------------
    def export(self, run_id: int) -> dict[str, Any]:
        """The exact ``RunResult.to_dict()`` dictionary of one stored run.

        This is the replay contract: what ``record()`` was handed is
        what comes back, telemetry and profile folded back in place, so
        stored runs flow through every existing ``RunResult`` consumer
        unchanged.
        """
        with self._lock:
            row = self._execute(
                "SELECT runs.result_json, runs.telemetry_json, profiles.profile_json "
                "FROM runs LEFT JOIN profiles ON profiles.run_id = runs.id "
                "WHERE runs.id = ?",
                (int(run_id),),
            ).fetchone()
        if row is None:
            raise StoreError(f"run store has no run #{run_id}")
        data = json.loads(row[0])
        data["telemetry"] = None if row[1] is None else json.loads(row[1])
        data["profile"] = None if row[2] is None else json.loads(row[2])
        return data

    def load(self, run_id: int) -> RunResult:
        """One stored run rebuilt as a :class:`RunResult`."""
        return RunResult.from_dict(self.export(run_id))

    def profile(self, run_id: int) -> dict[str, Any] | None:
        """One stored run's profile dictionary (``None`` when unprofiled).

        The schema is :meth:`repro.prof.profile.Profile.to_dict`; feed it
        to :meth:`repro.prof.profile.Profile.from_dict` for reports and
        exports.  Raises :class:`StoreError` when the run itself is
        absent, so a missing profile and a missing run stay distinct.
        """
        self.get(run_id)
        with self._lock:
            row = self._execute(
                "SELECT profile_json FROM profiles WHERE run_id = ?", (int(run_id),)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def spec_json(self, spec_hash: str) -> dict[str, Any]:
        """The stored spec dictionary of one series (prefix lookup)."""
        with self._lock:
            rows = self._execute(
                "SELECT hash, spec_json FROM specs WHERE hash LIKE ?", (spec_hash + "%",)
            ).fetchall()
        if not rows:
            raise StoreError(f"run store has no spec {spec_hash!r}")
        if len(rows) > 1:
            raise StoreError(f"spec prefix {spec_hash!r} is ambiguous ({len(rows)} matches)")
        return json.loads(rows[0][1])

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """Aggregate counts over the whole store."""
        with self._lock:
            runs = self._execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            specs = self._execute("SELECT COUNT(*) FROM specs").fetchone()[0]
            modes = dict(
                self._execute(
                    "SELECT mode, COUNT(*) FROM runs GROUP BY mode ORDER BY mode"
                ).fetchall()
            )
            version = schema_version(self._connection)
        return StoreStats(runs=runs, specs=specs, modes=modes, schema_version=version)

    def __len__(self) -> int:
        with self._lock:
            return self._execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def __iter__(self) -> Iterator[RunSummary]:
        return iter(self.list_runs())

    # ------------------------------------------------------------------
    def gc(self, *, keep_last: int = 10, vacuum: bool = True) -> int:
        """Trim every spec series to its newest ``keep_last`` runs.

        Returns the number of runs deleted.  Specs left with no runs are
        removed too, and the file is compacted (``VACUUM``) when
        anything was deleted so the space actually returns to the OS.
        """
        if keep_last < 0:
            raise StoreError("gc keep_last must be non-negative")
        if self._closed:
            raise StoreError(f"run store {self.path!r} is closed")
        with self._lock, self._connection:
            cursor = self._execute(
                "DELETE FROM runs WHERE id NOT IN ("
                "  SELECT id FROM runs AS newest"
                "  WHERE newest.spec_hash = runs.spec_hash"
                "  ORDER BY newest.id DESC LIMIT ?"
                ")",
                (keep_last,),
            )
            deleted = cursor.rowcount
            self._execute(
                "DELETE FROM specs WHERE hash NOT IN (SELECT DISTINCT spec_hash FROM runs)"
            )
            # SQLite does not enforce the profiles->runs reference by
            # default; drop profile rows orphaned by the trim explicitly.
            self._execute(
                "DELETE FROM profiles WHERE run_id NOT IN (SELECT id FROM runs)"
            )
        if deleted and vacuum:
            with self._lock:
                self._execute("VACUUM")
        return deleted

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (record/load raise afterwards)."""
        if not self._closed:
            self._closed = True
            self._connection.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_store(path: str | os.PathLike[str] | "RunStore" | None) -> RunStore | None:
    """Normalise the ``store=`` parameter: a path opens, a store passes through.

    ``None`` consults the :data:`RUN_STORE_ENV` environment variable, so
    ``REPRO_RUN_STORE=runs.db`` turns recording on process-wide without
    touching call sites; an unset variable keeps recording off.
    """
    if path is None:
        path = os.environ.get(RUN_STORE_ENV) or None
        if path is None:
            return None
    if isinstance(path, RunStore):
        return path
    return RunStore(path)
