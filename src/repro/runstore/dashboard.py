"""The run-store dashboard: a stdlib-only web UI over a :class:`RunStore`.

``repro runs serve --store runs.db`` starts this server.  It is built on
the same :class:`~repro.obs.httpserve.BackgroundHTTPServer` plumbing as
the Prometheus ``/metrics`` endpoint and, like it, uses nothing outside
the standard library -- ``http.server``, inline CSS, unicode-block
sparklines -- so the dashboard works wherever the library does.

Routes
------
``/``
    The run list: store totals, then one row per run (newest first) with
    links into the detail and series pages.
``/runs/<id>``
    One run: summary header, scalar metrics, per-detector alert counts,
    per-stage timing breakdown, telemetry counter series and histogram
    quantiles, and the stored spec JSON (plus a link to the profile view
    when the run was profiled).
``/runs/<id>/flame``
    One run's :mod:`repro.prof` capture: per-span self-time flame bars,
    allocation/peak-memory attribution, the hottest functions and the
    collapsed stacks themselves.
``/series/<spec-hash>``
    One spec's run series (oldest first): a trend table with a unicode
    sparkline per telemetry counter, wall-clock and request totals --
    the longitudinal view the store exists for.
``/api/runs``, ``/api/runs/<id>``, ``/api/series/<spec-hash>``
    The same data as JSON; ``/api/runs/<id>`` is the exact
    ``RunResult.to_dict()`` export, so the dashboard doubles as a read
    API for tooling.
``/healthz``
    Liveness probe (200 ``ok``).

Every request opens its own short-lived read connection, so the
dashboard can watch a store that concurrent runs are appending to.
"""

from __future__ import annotations

import html
import json
import time
from http.server import BaseHTTPRequestHandler
from typing import Any, Iterable, Mapping
from urllib.parse import urlparse

from repro.exceptions import StoreError
from repro.obs.httpserve import BackgroundHTTPServer
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.prof.profile import Profile
from repro.runstore.store import RunStore, RunSummary

#: Unicode eighth-blocks, the sparkline alphabet.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

_PAGE = """<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem;
         padding: 0 1rem; color: #1a1a1a; }}
  h1, h2 {{ font-weight: 600; }} h1 {{ font-size: 1.4rem; }} h2 {{ font-size: 1.1rem; }}
  table {{ border-collapse: collapse; margin: 0.5rem 0 1.5rem; width: 100%; }}
  th, td {{ text-align: left; padding: 0.25rem 0.75rem 0.25rem 0; vertical-align: top;
           border-bottom: 1px solid #e5e5e5; font-variant-numeric: tabular-nums; }}
  th {{ color: #555; font-weight: 600; }}
  a {{ color: #0b62a4; text-decoration: none; }} a:hover {{ text-decoration: underline; }}
  code, pre {{ font: 12px/1.45 ui-monospace, monospace; }}
  pre {{ background: #f6f6f6; padding: 0.75rem; overflow-x: auto; }}
  .spark {{ font-size: 16px; letter-spacing: 1px; color: #0b62a4; }}
  .muted {{ color: #777; }}
</style></head><body>
<p><a href="/">runs</a></p>
{body}
</body></html>
"""


def sparkline(values: Iterable[float]) -> str:
    """``values`` as a unicode-block sparkline (empty string for none)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return SPARK_BLOCKS[0] * len(values)
    scale = (len(SPARK_BLOCKS) - 1) / (high - low)
    return "".join(SPARK_BLOCKS[int((v - low) * scale + 0.5)] for v in values)


def _counter_totals(telemetry: Mapping[str, Any] | None) -> dict[str, float]:
    """Counter totals (summed over labels) of one telemetry snapshot."""
    totals: dict[str, float] = {}
    if not telemetry:
        return totals
    for name, entry in telemetry.get("metrics", {}).items():
        if entry.get("kind") != "counter":
            continue
        totals[name] = sum(float(s.get("value", 0)) for s in entry.get("series", []))
    return totals


def series_trends(store: RunStore, spec_hash: str) -> dict[str, Any]:
    """Longitudinal data of one spec series: per-run counter/wall trends."""
    runs = store.series(spec_hash)
    if not runs:
        raise StoreError(f"run store has no series {spec_hash!r}")
    counters: dict[str, list[float]] = {}
    for index, summary in enumerate(runs):
        totals = _counter_totals(store.export(summary.run_id).get("telemetry"))
        for name, value in totals.items():
            counters.setdefault(name, [0.0] * len(runs))[index] = value
    return {
        "spec_hash": runs[0].spec_hash,
        "spec": store.spec_json(runs[0].spec_hash),
        "runs": [summary.to_dict() for summary in runs],
        "wall_seconds": [summary.wall_seconds for summary in runs],
        "total_requests": [summary.total_requests for summary in runs],
        "counters": {name: counters[name] for name in sorted(counters)},
    }


# ----------------------------------------------------------------------
# HTML fragments
# ----------------------------------------------------------------------
def _e(value: Any) -> str:
    return html.escape(str(value))


def _table(headers: list[str], rows: list[list[str]]) -> str:
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>" for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _when(timestamp: float | None) -> str:
    if timestamp is None:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(timestamp))


def _seconds(value: float | None) -> str:
    return "-" if value is None else f"{value:.3f}"


def _run_row(summary: RunSummary) -> list[str]:
    return [
        f'<a href="/runs/{summary.run_id}">#{summary.run_id}</a>',
        _e(summary.mode),
        _e(summary.source),
        _e(summary.label) or '<span class="muted">-</span>',
        f"{summary.total_requests:,}",
        _seconds(summary.wall_seconds),
        _when(summary.recorded_at),
        f'<a href="/series/{_e(summary.spec_hash)}"><code>{_e(summary.spec_hash[:12])}</code></a>',
    ]


def render_run_list(store: RunStore) -> str:
    stats = store.stats()
    modes = ", ".join(f"{mode}: {count}" for mode, count in stats.modes.items()) or "empty"
    rows = [_run_row(summary) for summary in store.list_runs()]
    body = (
        "<h1>run store</h1>"
        f"<p>{stats.runs} run(s) over {stats.specs} spec(s) "
        f'(schema v{stats.schema_version}) &mdash; <span class="muted">{_e(modes)}</span></p>'
        + _table(
            ["run", "mode", "source", "label", "requests", "wall s", "recorded", "series"],
            rows,
        )
    )
    return _PAGE.format(title="repro run store", body=body)


def _metrics_rows(metrics: Mapping[str, Any]) -> list[list[str]]:
    rows = []
    for name in sorted(metrics):
        value = metrics[name]
        shown = f"{value:g}" if isinstance(value, (int, float)) and not isinstance(value, bool) else _e(value)
        rows.append([f"<code>{_e(name)}</code>", shown])
    return rows


def _telemetry_sections(telemetry: Mapping[str, Any] | None) -> str:
    if not telemetry:
        return '<p class="muted">no telemetry recorded (run executed without a registry)</p>'
    counter_rows = []
    for name, entry in sorted(telemetry.get("metrics", {}).items()):
        if entry.get("kind") != "counter":
            continue
        for series in entry.get("series", []):
            labels = ", ".join(
                f"{k}={v}" for k, v in sorted(series.get("labels", {}).items())
            )
            counter_rows.append(
                [f"<code>{_e(name)}</code>", _e(labels) or "-", f"{series.get('value', 0):g}"]
            )
    registry = MetricsRegistry.from_dict(dict(telemetry))
    histogram_rows = []
    for metric in registry.metrics():
        if not isinstance(metric, Histogram):
            continue
        for labels, series in metric.series():
            shown_labels = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
            histogram_rows.append(
                [
                    f"<code>{_e(metric.name)}</code>",
                    _e(shown_labels) or "-",
                    f"{series.count:,}",
                    f"{metric.quantile(0.50, **labels):.6g}",
                    f"{metric.quantile(0.95, **labels):.6g}",
                    f"{metric.quantile(0.99, **labels):.6g}",
                ]
            )
    parts = []
    if counter_rows:
        parts.append("<h2>telemetry counters</h2>")
        parts.append(_table(["counter", "labels", "value"], counter_rows))
    if histogram_rows:
        parts.append("<h2>telemetry quantiles</h2>")
        parts.append(
            _table(["histogram", "labels", "count", "p50", "p95", "p99"], histogram_rows)
        )
    return "".join(parts)


def render_run_detail(store: RunStore, run_id: int) -> str:
    summary = store.get(run_id)
    data = store.export(run_id)
    sections = [
        f"<h1>run #{summary.run_id} &mdash; {_e(summary.mode)} on {_e(summary.source)}</h1>",
        _table(
            ["recorded", "wall s", "requests", "label", "library", "series"],
            [
                [
                    _when(summary.recorded_at),
                    _seconds(summary.wall_seconds),
                    f"{summary.total_requests:,}",
                    _e(summary.label) or "-",
                    _e(summary.package_version or "-"),
                    f'<a href="/series/{_e(summary.spec_hash)}">'
                    f"<code>{_e(summary.spec_hash[:12])}</code></a>",
                ]
            ],
        ),
    ]
    if data.get("alert_counts"):
        sections.append("<h2>alert counts</h2>")
        sections.append(
            _table(["detector", "alerted requests"], _metrics_rows(data["alert_counts"]))
        )
    if data.get("metrics"):
        sections.append("<h2>metrics</h2>")
        sections.append(_table(["metric", "value"], _metrics_rows(data["metrics"])))
    if data.get("timings"):
        sections.append("<h2>stage timings</h2>")
        sections.append(
            _table(["stage", "seconds"], _metrics_rows(data["timings"]))
        )
    sections.append(_telemetry_sections(data.get("telemetry")))
    if data.get("profile"):
        profile = Profile.from_dict(data["profile"])
        sections.append(
            f'<h2><a href="/runs/{summary.run_id}/flame">profile</a></h2>'
            f"<p>{profile.sample_count():,} stack sample(s) over "
            f"{profile.duration_seconds:.2f}s at {profile.hz:g} Hz &mdash; "
            f'<a href="/runs/{summary.run_id}/flame">flame / top spans</a></p>'
        )
    sections.append("<h2>spec</h2>")
    sections.append(f"<pre>{_e(json.dumps(data.get('spec'), indent=2))}</pre>")
    return _PAGE.format(title=f"run #{run_id}", body="".join(sections))


def _flame_bar(fraction: float, width: int = 30) -> str:
    cells = int(round(max(0.0, min(1.0, fraction)) * width))
    return (
        f'<span class="spark">{SPARK_BLOCKS[-1] * cells}</span>'
        f'<span class="muted">{"·" * (width - cells)}</span>'
    )


def render_run_flame(store: RunStore, run_id: int) -> str:
    """The per-run profile view: span flame bars, hot functions, stacks."""
    summary = store.get(run_id)
    stored = store.profile(run_id)
    if stored is None:
        raise StoreError(
            f"run #{run_id} was not profiled; re-run with --profile to capture one"
        )
    profile = Profile.from_dict(stored)
    total = max(profile.sample_count(), 1)
    span_rows = []
    for stat in profile.top_spans(limit=len(profile.spans)):
        span_rows.append(
            [
                f"<code>{_e(stat.path)}</code>",
                _flame_bar(stat.self_samples / total),
                f"{stat.self_seconds(profile.hz):.3f}",
                f"{stat.total_samples / total:.1%}",
                f"{stat.calls:,}",
                f"{stat.alloc_bytes:,}",
                f"{stat.peak_bytes:,}",
            ]
        )
    function_rows = [
        [f"<code>{_e(name)}</code>", f"{self_count:,}", f"{total_count:,}"]
        for name, self_count, total_count in profile.top_functions(limit=25)
    ]
    sections = [
        f'<h1>run <a href="/runs/{summary.run_id}">#{summary.run_id}</a> profile</h1>',
        f"<p>{profile.sample_count():,} stack sample(s) over "
        f"{profile.duration_seconds:.2f}s at {profile.hz:g} Hz</p>",
        "<h2>spans (self time)</h2>",
        _table(
            ["span path", "flame", "self s", "total %", "calls", "alloc B", "peak B"],
            span_rows,
        )
        if span_rows
        else '<p class="muted">no span samples captured</p>',
        "<h2>hottest functions</h2>",
        _table(["function", "self", "total"], function_rows)
        if function_rows
        else '<p class="muted">no samples captured</p>',
        "<h2>collapsed stacks</h2>",
        f"<pre>{_e(profile.collapsed())}</pre>",
    ]
    return _PAGE.format(title=f"run #{run_id} profile", body="".join(sections))


def render_series(store: RunStore, spec_hash: str) -> str:
    trends = series_trends(store, spec_hash)
    runs = trends["runs"]
    run_links = " ".join(f'<a href="/runs/{run["run_id"]}">#{run["run_id"]}</a>' for run in runs)
    trend_rows = [
        [
            "<code>wall_seconds</code>",
            f'<span class="spark">{sparkline([w or 0.0 for w in trends["wall_seconds"]])}</span>',
            _seconds(trends["wall_seconds"][0]),
            _seconds(trends["wall_seconds"][-1]),
        ],
        [
            "<code>total_requests</code>",
            f'<span class="spark">{sparkline(trends["total_requests"])}</span>',
            f'{trends["total_requests"][0]:,}',
            f'{trends["total_requests"][-1]:,}',
        ],
    ]
    for name, values in trends["counters"].items():
        trend_rows.append(
            [
                f"<code>{_e(name)}</code>",
                f'<span class="spark">{sparkline(values)}</span>',
                f"{values[0]:g}",
                f"{values[-1]:g}",
            ]
        )
    body = (
        f"<h1>series <code>{_e(trends['spec_hash'][:12])}</code> &mdash; {len(runs)} run(s)</h1>"
        f"<p>{run_links}</p>"
        "<h2>trends (oldest &rarr; newest)</h2>"
        + _table(["quantity", "trend", "first", "last"], trend_rows)
        + "<h2>spec</h2>"
        + f"<pre>{_e(json.dumps(trends['spec'], indent=2))}</pre>"
    )
    return _PAGE.format(title=f"series {trends['spec_hash'][:12]}", body=body)


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class DashboardServer(BackgroundHTTPServer):
    """The run-store dashboard on a background daemon thread.

    Create via :func:`serve_dashboard`.  The handle mirrors
    :class:`~repro.obs.prometheus.MetricsServer`: bound ``port``/``url``
    plus ``close()``.
    """

    url_path = "/"

    def __init__(self, store_path: str, host: str, port: int) -> None:
        # Fail fast on a missing or unopenable store, before binding the
        # port -- a dashboard over a typo'd path should not look healthy.
        RunStore(store_path, create=False).close()
        dashboard = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                status, content_type, body = dashboard._respond(
                    urlparse(self.path).path
                )
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass  # HTTP chatter should not spam the CLI's stderr

        self._store_path = store_path
        super().__init__(_Handler, host, port, thread_name="repro-dashboard")

    # ------------------------------------------------------------------
    def _respond(self, path: str) -> tuple[int, str, str]:
        """Route one GET; every response is (status, content type, body)."""
        HTML, JSON, TEXT = "text/html; charset=utf-8", "application/json", "text/plain"
        try:
            with RunStore(self._store_path) as store:
                if path in ("/", "/runs"):
                    return 200, HTML, render_run_list(store)
                if path == "/healthz":
                    return 200, TEXT, "ok\n"
                if path == "/api/runs":
                    payload = {
                        "stats": store.stats().to_dict(),
                        "runs": [summary.to_dict() for summary in store.list_runs()],
                    }
                    return 200, JSON, json.dumps(payload, indent=2)
                parts = [part for part in path.split("/") if part]
                if len(parts) == 2 and parts[0] == "runs" and parts[1].isdigit():
                    return 200, HTML, render_run_detail(store, int(parts[1]))
                if (
                    len(parts) == 3
                    and parts[0] == "runs"
                    and parts[1].isdigit()
                    and parts[2] == "flame"
                ):
                    return 200, HTML, render_run_flame(store, int(parts[1]))
                if len(parts) == 2 and parts[0] == "series":
                    return 200, HTML, render_series(store, parts[1])
                if len(parts) == 3 and parts[:2] == ["api", "runs"] and parts[2].isdigit():
                    return 200, JSON, json.dumps(store.export(int(parts[2])), indent=2)
                if len(parts) == 3 and parts[:2] == ["api", "series"]:
                    return 200, JSON, json.dumps(series_trends(store, parts[2]), indent=2)
        except StoreError as exc:
            return 404, TEXT, f"{exc}\n"
        return 404, TEXT, f"no such page: {path}\n"


def serve_dashboard(
    store_path: str, port: int = 0, host: str = "127.0.0.1"
) -> DashboardServer:
    """Serve the dashboard for ``store_path`` on ``http://host:port/``.

    ``port=0`` binds an ephemeral port; read it back from the returned
    server's ``.port`` / ``.url``.  Requests read the store file afresh,
    so runs recorded while the dashboard is up appear on reload.
    """
    return DashboardServer(store_path, host, port)
