"""repro.runstore -- the persistent control plane: every run, kept.

Before this package, an executed :class:`~repro.runspec.spec.RunSpec`
and its telemetry snapshot evaporated with the process.  The run store
gives them a home: a single SQLite file (schema-versioned, migrated in
place on open) recording spec, result, telemetry, traffic fingerprint,
library version and wall-clock metadata for every run -- keyed by the
content hash of the spec, so identical experiments dedupe into one
*series* and re-runs become longitudinal data.

Quickstart::

    from repro.runstore import RunStore, diff_runs
    from repro.runspec import RunSpec, TrafficSpec, execute

    spec = RunSpec(mode="tables", traffic=TrafficSpec(scale=0.02, seed=2018))
    execute(spec, store="runs.db")          # records automatically
    execute(spec, store="runs.db")          # appends to the same series

    with RunStore("runs.db") as store:
        first, second = [s.run_id for s in store.series(store.list_runs()[0].spec_hash)]
        print(diff_runs(store, first, second).render())

The CLI front ends are ``--store PATH`` (or ``REPRO_RUN_STORE``) on
every executing subcommand and the ``repro runs`` family
(``list`` / ``show`` / ``diff`` / ``gc`` / ``export`` / ``serve`` -- the
last one starts the stdlib web dashboard of
:mod:`repro.runstore.dashboard`).
"""

from repro.runstore.dashboard import DashboardServer, serve_dashboard, sparkline
from repro.runstore.diff import DEFAULT_THRESHOLD, Delta, RunDiff, diff_runs, diff_specs
from repro.runstore.migrations import SCHEMA_VERSION, apply_migrations, schema_version
from repro.runstore.store import (
    RUN_STORE_ENV,
    RecordedRun,
    RunStore,
    RunSummary,
    StoreStats,
    open_store,
    spec_fingerprint,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "DashboardServer",
    "Delta",
    "RUN_STORE_ENV",
    "RecordedRun",
    "RunDiff",
    "RunStore",
    "RunSummary",
    "SCHEMA_VERSION",
    "StoreStats",
    "apply_migrations",
    "diff_runs",
    "diff_specs",
    "open_store",
    "schema_version",
    "serve_dashboard",
    "spec_fingerprint",
    "sparkline",
]
