"""Schema migrations for the run store's SQLite database.

The run store is a long-lived file: databases recorded by one library
version must open under every later one.  The schema is therefore
versioned, and every structural change is an entry in :data:`MIGRATIONS`
-- an ordered list of ``(version, statements)`` pairs applied inside one
transaction each.  Opening a store runs every migration past the file's
recorded version; a file *newer* than the library fails loudly instead
of being half-understood.

Version history
---------------
1
    The initial layout: ``runstore_meta`` (key/value, carries
    ``schema_version``), ``specs`` (content-addressed RunSpec JSON, one
    row per distinct spec hash -- identical experiments dedupe here) and
    ``runs`` (one row per execution, referencing its spec by hash, with
    the full result and telemetry JSON).
2
    Adds provenance columns to ``runs``: ``trace_fingerprint`` (the
    content address of the generated traffic, when the run's traffic was
    cacheable) and ``package_version`` (the library that recorded the
    run), plus the ``runs_mode`` index the CLI list filters use.
3
    Adds the ``profiles`` table: one optional row per run holding the
    full :meth:`repro.prof.profile.Profile.to_dict` JSON (stack samples
    and per-span resource attribution).  Profiles live outside
    ``runs.result_json`` for the same reason telemetry does -- listing
    and diffing never parses them unless asked.
"""

from __future__ import annotations

import sqlite3

from repro.exceptions import StoreError

#: The schema version this library writes.
SCHEMA_VERSION = 3

#: Ordered migrations; each entry upgrades the schema *to* its version.
MIGRATIONS: tuple[tuple[int, tuple[str, ...]], ...] = (
    (
        1,
        (
            """
            CREATE TABLE runstore_meta (
                key   TEXT PRIMARY KEY,
                value TEXT NOT NULL
            )
            """,
            """
            CREATE TABLE specs (
                hash              TEXT PRIMARY KEY,
                mode              TEXT NOT NULL,
                label             TEXT NOT NULL DEFAULT '',
                spec_json         TEXT NOT NULL,
                first_recorded_at REAL NOT NULL
            )
            """,
            """
            CREATE TABLE runs (
                id             INTEGER PRIMARY KEY AUTOINCREMENT,
                spec_hash      TEXT NOT NULL REFERENCES specs(hash),
                mode           TEXT NOT NULL,
                source         TEXT NOT NULL,
                label          TEXT NOT NULL DEFAULT '',
                recorded_at    REAL NOT NULL,
                wall_seconds   REAL,
                total_requests INTEGER NOT NULL,
                result_json    TEXT NOT NULL,
                telemetry_json TEXT
            )
            """,
            "CREATE INDEX runs_spec_hash ON runs(spec_hash, id)",
        ),
    ),
    (
        2,
        (
            "ALTER TABLE runs ADD COLUMN trace_fingerprint TEXT",
            "ALTER TABLE runs ADD COLUMN package_version TEXT",
            "CREATE INDEX runs_mode ON runs(mode, id)",
        ),
    ),
    (
        3,
        (
            """
            CREATE TABLE profiles (
                run_id       INTEGER PRIMARY KEY REFERENCES runs(id),
                profile_json TEXT NOT NULL
            )
            """,
        ),
    ),
)


def schema_version(connection: sqlite3.Connection) -> int:
    """The schema version recorded in ``connection`` (0 for a fresh file)."""
    try:
        row = connection.execute(
            "SELECT value FROM runstore_meta WHERE key = 'schema_version'"
        ).fetchone()
    except sqlite3.OperationalError:
        return 0  # no meta table yet: an empty database
    if row is None:
        raise StoreError("runstore_meta exists but carries no schema_version")
    try:
        return int(row[0])
    except ValueError as exc:
        raise StoreError(f"corrupt schema_version {row[0]!r}") from exc


def apply_migrations(
    connection: sqlite3.Connection, *, target: int = SCHEMA_VERSION
) -> int:
    """Bring ``connection`` to schema ``target``; return the final version.

    Each pending migration runs in its own transaction, so a failure
    leaves the database at a consistent (older) version.  A database
    already *past* ``target`` raises :class:`StoreError` -- downgrades
    are not supported, and silently operating on unknown columns is
    worse than refusing.
    """
    current = schema_version(connection)
    if current > target:
        raise StoreError(
            f"run store is at schema v{current}, newer than the v{target} this "
            "library understands; upgrade the library instead of the file"
        )
    for version, statements in MIGRATIONS:
        if version <= current or version > target:
            continue
        try:
            with connection:  # one transaction per migration step
                for statement in statements:
                    connection.execute(statement)
                connection.execute(
                    "INSERT INTO runstore_meta (key, value) VALUES ('schema_version', ?) "
                    "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                    (str(version),),
                )
        except sqlite3.DatabaseError as exc:
            raise StoreError(f"migration to schema v{version} failed: {exc}") from exc
        current = version
    return current
