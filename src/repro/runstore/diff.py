"""Diffing stored runs: spec deltas, metric deltas, telemetry deltas.

The paper's claims are comparative, so the store's primary read path is
comparative too: :func:`diff_runs` takes two stored runs and reports

* **spec changes** -- every leaf of the two spec trees that differs, as
  flattened dot paths (``traffic.scale: 0.02 -> 0.1``),
* **metric deltas** -- every numeric ``RunResult.metrics`` entry,
* **counter deltas** -- every labelled counter series of the stored
  telemetry snapshots (``repro_detector_alerts_total{detector=inhouse}``),
* **quantile deltas** -- p50/p95/p99/p999 of every labelled histogram
  series,
* **timing deltas** -- the per-stage ``RunResult.timings`` seconds,
* **profile deltas** -- per-span self time and peak traced memory, when
  both runs carry a :mod:`repro.prof` capture.

A delta whose relative change exceeds a configurable threshold is a
*regression candidate*; ``repro runs diff --fail-on-regression`` exits
non-zero when any exists, which is the CI hook for longitudinal
perf/behaviour tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import StoreError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.runstore.store import RunStore, RunSummary

#: Default relative-change fraction above which a delta is a regression.
DEFAULT_THRESHOLD = 0.2

#: Quantiles reported per histogram series.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


@dataclass(frozen=True)
class Delta:
    """One numeric quantity in both runs, with its relative change."""

    #: Flattened name (``metrics.kappa``, ``counter.repro_..._total{detector=x}``).
    name: str
    left: float
    right: float

    @property
    def delta(self) -> float:
        return self.right - self.left

    @property
    def change(self) -> float:
        """Relative change versus the left run (``inf`` from a zero base)."""
        if self.left == 0.0:
            return 0.0 if self.right == 0.0 else float("inf")
        return (self.right - self.left) / abs(self.left)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "left": self.left,
            "right": self.right,
            "delta": self.delta,
            "change": self.change,
        }


def _flatten(tree: Mapping[str, Any], prefix: str = "") -> dict[str, Any]:
    """Leaves of a nested mapping as dot-path keys (lists stay values)."""
    flat: dict[str, Any] = {}
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def diff_specs(
    left: Mapping[str, Any] | None, right: Mapping[str, Any] | None
) -> dict[str, tuple[Any, Any]]:
    """Every differing spec leaf as ``path -> (left_value, right_value)``."""
    left_flat = _flatten(left or {})
    right_flat = _flatten(right or {})
    changes: dict[str, tuple[Any, Any]] = {}
    for path in sorted(set(left_flat) | set(right_flat)):
        left_value = left_flat.get(path)
        right_value = right_flat.get(path)
        if left_value != right_value:
            changes[path] = (left_value, right_value)
    return changes


def _series_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _numeric_deltas(
    prefix: str, left: Mapping[str, Any], right: Mapping[str, Any]
) -> list[Delta]:
    deltas = []
    for name in sorted(set(left) | set(right)):
        left_value, right_value = left.get(name, 0), right.get(name, 0)
        if isinstance(left_value, bool) or isinstance(right_value, bool):
            continue
        if not isinstance(left_value, (int, float)) or not isinstance(
            right_value, (int, float)
        ):
            continue
        deltas.append(Delta(f"{prefix}.{name}", float(left_value), float(right_value)))
    return deltas


def _counter_values(telemetry: Mapping[str, Any] | None) -> dict[str, float]:
    """Every labelled counter series of a telemetry snapshot, flattened."""
    values: dict[str, float] = {}
    if not telemetry:
        return values
    for name, entry in telemetry.get("metrics", {}).items():
        if entry.get("kind") != "counter":
            continue
        for series in entry.get("series", []):
            key = name + _series_suffix(series.get("labels", {}))
            values[key] = values.get(key, 0.0) + float(series.get("value", 0))
    return values


def _quantile_values(telemetry: Mapping[str, Any] | None) -> dict[str, float]:
    """p50/p95/p99 of every labelled histogram series of a snapshot.

    The snapshot is rebuilt through :class:`MetricsRegistry` so the
    quantile estimates here are *exactly* the ones the live run would
    have reported -- same bucket interpolation, same min/max clamping.
    """
    values: dict[str, float] = {}
    if not telemetry:
        return values
    registry = MetricsRegistry.from_dict(dict(telemetry))
    for metric in registry.metrics():
        if not isinstance(metric, Histogram):
            continue
        for labels, _series in metric.series():
            suffix = _series_suffix(labels)
            for quantile_name, q in QUANTILES:
                values[f"{metric.name}{suffix}.{quantile_name}"] = metric.quantile(
                    q, **labels
                )
    return values


def _profile_values(
    profile: Mapping[str, Any] | None, *, memory: bool = True
) -> dict[str, float]:
    """Per-span self time and peak memory of a stored profile capture.

    Self time is the span's self sample count over the sampling rate --
    a statistical estimate, but one whose *relative* change between two
    profiled runs of the same spec tracks real hot-path drift.  Memory
    figures are only meaningful against a capture of the same mode
    (resident-set watermarks vs tracemalloc traced bytes differ by
    orders of magnitude), so the caller disables them via ``memory=``
    when the two profiles' modes disagree.
    """
    values: dict[str, float] = {}
    if not profile:
        return values
    hz = float(profile.get("hz") or 0.0)
    for span in profile.get("spans", []):
        path = span.get("path", "")
        if not path:
            continue
        suffix = "{path=" + path + "}"
        if hz > 0:
            values[f"span{suffix}.self_seconds"] = float(span.get("self_samples", 0)) / hz
        if memory:
            values[f"span{suffix}.peak_bytes"] = float(span.get("peak_bytes", 0))
    return values


@dataclass
class RunDiff:
    """Everything that differs (or could regress) between two stored runs."""

    left: RunSummary
    right: RunSummary
    spec_changes: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    metrics: list[Delta] = field(default_factory=list)
    counters: list[Delta] = field(default_factory=list)
    quantiles: list[Delta] = field(default_factory=list)
    timings: list[Delta] = field(default_factory=list)
    profile: list[Delta] = field(default_factory=list)

    # ------------------------------------------------------------------
    def deltas(self) -> list[Delta]:
        """Every numeric delta, across all five sections."""
        return [
            *self.metrics,
            *self.counters,
            *self.quantiles,
            *self.timings,
            *self.profile,
        ]

    def regressions(self, threshold: float = DEFAULT_THRESHOLD) -> list[Delta]:
        """Deltas whose relative change exceeds ``threshold``.

        Wall-clock quantities (timings and the duration histograms) are
        inherently noisy across machines, so they are reported in the
        diff but never counted as regressions; behaviour counters and
        result metrics are deterministic for a given spec and count.
        Profile spans *are* candidates -- both runs opted into profiling,
        so a span whose self time or peak memory moved past the
        threshold is exactly the longitudinal signal the capture exists
        to flag.  The profiler's *own* counters (``repro_profile_*``:
        sample totals, span byte counters) are excluded: they scale with
        wall clock and capture mode, and the curated per-span profile
        deltas already carry that signal.
        """
        if threshold < 0:
            raise StoreError("regression threshold must be non-negative")
        behaviour_counters = [
            delta
            for delta in self.counters
            if not delta.name.startswith("counter.repro_profile_")
        ]
        candidates = [*self.metrics, *behaviour_counters, *self.profile]
        flagged = [
            delta for delta in candidates if abs(delta.change) > threshold
        ]
        flagged.sort(key=lambda delta: -abs(delta.change))
        return flagged

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
            "spec_changes": {
                path: {"left": values[0], "right": values[1]}
                for path, values in self.spec_changes.items()
            },
            "metrics": [delta.to_dict() for delta in self.metrics],
            "counters": [delta.to_dict() for delta in self.counters],
            "quantiles": [delta.to_dict() for delta in self.quantiles],
            "timings": [delta.to_dict() for delta in self.timings],
            "profile": [delta.to_dict() for delta in self.profile],
        }

    def render(self, *, threshold: float = DEFAULT_THRESHOLD, all_deltas: bool = False) -> str:
        """A human-readable diff report.

        By default only *changed* quantities print (plus every spec
        change); ``all_deltas=True`` prints unchanged ones too.
        """
        lines = [
            f"run #{self.left.run_id} ({self.left.mode}, {self.left.source}) -> "
            f"run #{self.right.run_id} ({self.right.mode}, {self.right.source})"
        ]
        if self.left.spec_hash == self.right.spec_hash:
            lines.append(f"same spec (series {self.left.spec_hash[:12]}): re-run comparison")
        if self.spec_changes:
            lines.append("")
            lines.append("spec changes:")
            for path, (left_value, right_value) in self.spec_changes.items():
                lines.append(f"  {path}: {left_value!r} -> {right_value!r}")
        regressions = {delta.name for delta in self.regressions(threshold)}
        for title, deltas in (
            ("metrics", self.metrics),
            ("telemetry counters", self.counters),
            ("telemetry quantiles", self.quantiles),
            ("timings (seconds)", self.timings),
            ("profile spans", self.profile),
        ):
            shown = [d for d in deltas if all_deltas or d.delta != 0.0]
            if not shown:
                continue
            lines.append("")
            lines.append(f"{title}:")
            for delta in shown:
                change = (
                    "new" if delta.change == float("inf") else f"{delta.change:+.1%}"
                )
                marker = "  << regression" if delta.name in regressions else ""
                lines.append(
                    f"  {delta.name}: {delta.left:g} -> {delta.right:g} ({change}){marker}"
                )
        if len(lines) == 1:
            lines.append("no differences")
        return "\n".join(lines)


def diff_results(
    left_summary: RunSummary,
    right_summary: RunSummary,
    left_data: Mapping[str, Any],
    right_data: Mapping[str, Any],
) -> RunDiff:
    """Build a :class:`RunDiff` from two exported run dictionaries."""
    _left_profile = left_data.get("profile") or {}
    _right_profile = right_data.get("profile") or {}
    _same_memory_mode = _left_profile.get("memory", "rss") == _right_profile.get(
        "memory", "rss"
    )
    return RunDiff(
        left=left_summary,
        right=right_summary,
        spec_changes=diff_specs(left_data.get("spec"), right_data.get("spec")),
        metrics=_numeric_deltas(
            "metrics", left_data.get("metrics", {}), right_data.get("metrics", {})
        )
        + _numeric_deltas(
            "alert_counts",
            left_data.get("alert_counts", {}),
            right_data.get("alert_counts", {}),
        ),
        counters=_numeric_deltas(
            "counter",
            _counter_values(left_data.get("telemetry")),
            _counter_values(right_data.get("telemetry")),
        ),
        quantiles=_numeric_deltas(
            "quantile",
            _quantile_values(left_data.get("telemetry")),
            _quantile_values(right_data.get("telemetry")),
        ),
        timings=_numeric_deltas(
            "timings", left_data.get("timings", {}), right_data.get("timings", {})
        ),
        # Span-level comparison only makes sense when both runs were
        # profiled; against an unprofiled run every span would read as an
        # infinite "regression".  Memory figures additionally require the
        # same capture mode on both sides.
        profile=(
            _numeric_deltas(
                "profile",
                _profile_values(left_data.get("profile"), memory=_same_memory_mode),
                _profile_values(right_data.get("profile"), memory=_same_memory_mode),
            )
            if left_data.get("profile") and right_data.get("profile")
            else []
        ),
    )


def diff_runs(store: RunStore, left_id: int, right_id: int) -> RunDiff:
    """Diff two runs of one store by id (see module docstring)."""
    return diff_results(
        store.get(left_id),
        store.get(right_id),
        store.export(left_id),
        store.export(right_id),
    )
