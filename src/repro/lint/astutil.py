"""Small AST helpers shared by the rule implementations.

Nothing here is rule-specific: dotted-name flattening, a lightweight
per-file import map (enough to resolve ``metric_names.FOO`` back to the
module it came from, without executing anything), and class-body
introspection shortcuts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ImportMap:
    """What a module's import statements bind each local name to."""

    #: local alias -> imported module path (``import x.y as z``; also
    #: ``from pkg import mod`` when ``mod`` is a module-looking name).
    modules: dict[str, str] = field(default_factory=dict)
    #: local name -> (module path, original name) for ``from m import n``.
    names: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports.names[local] = (node.module, alias.name)
                    # ``from repro.obs import names`` binds a module too.
                    imports.modules.setdefault(local, f"{node.module}.{alias.name}")
        return imports

    def resolves_to_module(self, local: str, module_path: str) -> bool:
        """Whether local name ``local`` is (an alias of) ``module_path``."""
        return self.modules.get(local) == module_path

    def imported_from(self, local: str, module_path: str) -> str | None:
        """The original name when ``local`` was imported from ``module_path``."""
        entry = self.names.get(local)
        if entry is not None and entry[0] == module_path:
            return entry[1]
        return None


def module_path_of(rel_path: str) -> str:
    """The dotted module path of a repo-relative source path.

    ``src/repro/obs/names.py`` -> ``repro.obs.names``; paths outside a
    ``src/`` layout drop only the ``.py`` suffix.
    """
    parts = rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Every class definition, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def class_has_method(cls: ast.ClassDef, name: str) -> bool:
    """Whether the class *body* defines a function called ``name``."""
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and item.name == name
        for item in cls.body
    )


def class_assigns_true(cls: ast.ClassDef, name: str) -> bool:
    """Whether the class body contains ``name = True`` (marker attribute)."""
    for item in cls.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == name
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return True
    return False


def is_dataclass(cls: ast.ClassDef) -> bool:
    """Whether the class carries a ``@dataclass`` / ``@dataclass(...)`` decorator."""
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def dataclass_fields(cls: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    """``(name, node)`` of every annotated dataclass field in the body.

    ``ClassVar[...]`` annotations are skipped -- they are class state,
    not fields -- as are underscore-private names.
    """
    fields: list[tuple[str, ast.AnnAssign]] = []
    for item in cls.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(item.target, ast.Name):
            continue
        annotation = item.annotation
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        if dotted_name(base) in ("ClassVar", "typing.ClassVar"):
            continue
        fields.append((item.target.id, item))
    return fields


def string_constants(node: ast.AST) -> set[str]:
    """Every string literal appearing anywhere under ``node``."""
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def self_attribute_reads(node: ast.AST) -> set[str]:
    """Every ``self.X`` attribute name read anywhere under ``node``."""
    return {
        child.attr
        for child in ast.walk(node)
        if isinstance(child, ast.Attribute)
        and isinstance(child.value, ast.Name)
        and child.value.id == "self"
    }


def write_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The target expressions a statement writes to (assign/augassign/for...)."""
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
            return
        yield stmt.target
    elif isinstance(stmt, ast.For):
        yield stmt.target


def self_attr_of_target(target: ast.expr) -> str | None:
    """``X`` when ``target`` writes ``self.X`` or ``self.X[...]``, else ``None``."""
    node = target
    if isinstance(node, (ast.Tuple, ast.List)):
        return None  # handled element-wise by callers when needed
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
