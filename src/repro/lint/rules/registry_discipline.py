"""REP004: component families are extended through the public helpers.

Detectors, scenarios, backends, and lint rules all hang off
:class:`repro.registry.Registry` instances, and every family exposes a
``register_*`` helper (or decorator) that validates the entry.  Poking
``registry._factories`` directly -- or importing private names from the
registry module -- bypasses that validation and breaks the did-you-mean
error messages, so both are flagged anywhere outside ``repro.registry``
itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import module_path_of
from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding

_REGISTRY_MODULE = "repro.registry"


@register_rule
class RegistryDisciplineRule(Rule):
    rule_id = "REP004"
    severity = "error"
    summary = (
        "registries are extended via register_* helpers, never by touching "
        "registry internals"
    )
    autofix_hint = "call the family's register_* helper (or Registry.register)"

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if module_path_of(source.rel_path) == _REGISTRY_MODULE:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and node.attr == "_factories":
                yield self.finding(
                    source,
                    node,
                    "access to registry internals (._factories) outside repro.registry",
                    suggestion="use Registry.register / names / create, or the family's register_* helper",
                )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module is not None
                and node.level == 0
                and (
                    node.module == _REGISTRY_MODULE
                    or node.module.startswith(_REGISTRY_MODULE + ".")
                )
            ):
                for alias in node.names:
                    if alias.name.startswith("_"):
                        yield self.finding(
                            source,
                            node,
                            f"import of private registry name {alias.name!r}",
                            suggestion="use the public Registry API",
                        )
