"""REP009: span stage names and the ``SPAN_REFERENCE`` catalogue agree.

Span names are the other half of the telemetry vocabulary: they key the
per-stage timings, the span-tree telemetry, and the profiler's
attribution paths.  ``repro.obs.names.SPAN_REFERENCE`` documents every
stage name the library may open; this rule keeps the two in sync, both
directions -- every statically-resolvable ``trace_span(...)`` /
``registry.span(...)`` first argument must be a catalogued stage, and
every catalogue row must name a stage some call site actually opens.

Resolution mirrors REP002: only string-literal stage names are judged
(dynamic names -- variables, f-strings -- are skipped), and ``.span``
attribute calls whose literal contains ``/`` are skipped too, since a
slash marks a :class:`repro.prof.profile.Profile` *path* lookup rather
than a stage being opened.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap, dotted_name
from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding
from repro.registry import suggest

#: Modules ``trace_span`` is importable from (definition plus re-exports).
_SPAN_MODULES = ("repro.obs.spans", "repro.obs", "repro")


def _span_reference_of(source: SourceFile) -> tuple[dict[str, int], ast.AST | None]:
    """``(stage name -> line, table node)`` of the catalogue module."""
    reference: dict[str, int] = {}
    reference_node: ast.AST | None = None
    for stmt in source.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            not isinstance(target, ast.Name)
            or target.id != "SPAN_REFERENCE"
            or value is None
        ):
            continue
        reference_node = stmt
        for row in ast.walk(value):
            if not isinstance(row, ast.Tuple) or not row.elts:
                continue
            first = row.elts[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                reference.setdefault(first.value, row.lineno)
    return reference, reference_node


def _span_name_of(node: ast.AST, imports: ImportMap) -> str | None:
    """The statically-resolvable stage name a call opens, else ``None``."""
    if not isinstance(node, ast.Call) or not node.args:
        return None
    arg = node.args[0]
    if not isinstance(arg, ast.Constant) or not isinstance(arg.value, str):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        if any(
            imports.imported_from(func.id, module) == "trace_span"
            for module in _SPAN_MODULES
        ):
            return arg.value
        return None
    if isinstance(func, ast.Attribute):
        if func.attr == "trace_span":
            receiver = dotted_name(func.value)
            if receiver is not None and any(
                imports.resolves_to_module(receiver, module)
                for module in _SPAN_MODULES
            ):
                return arg.value
            return None
        if func.attr == "span" and "/" not in arg.value:
            # ``registry.span("stage")``; slashes mark Profile path lookups.
            return arg.value
    return None


@register_rule
class SpanNameRule(Rule):
    rule_id = "REP009"
    severity = "error"
    summary = (
        "span stage names at call sites and in SPAN_REFERENCE must "
        "match, both directions"
    )
    autofix_hint = (
        "add the stage to repro.obs.names.SPAN_REFERENCE (name + meaning row) "
        "or fix the call site to open a catalogued stage"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        catalogue_file = project.file(project.config.metric_catalogue)
        if catalogue_file is None:
            return
        reference, reference_node = _span_reference_of(catalogue_file)

        # Every resolvable call site, gathered first: a project that opens
        # no spans does not need the catalogue table at all.
        sites: list[tuple[SourceFile, ast.AST, str]] = []
        for source in project.files:
            if source.rel_path == catalogue_file.rel_path:
                continue
            imports = ImportMap.of(source.tree)
            for node in ast.walk(source.tree):
                name = _span_name_of(node, imports)
                if name is not None:
                    sites.append((source, node, name))

        if reference_node is None:
            if sites:
                yield self.finding(
                    catalogue_file,
                    catalogue_file.tree.body[0] if catalogue_file.tree.body else None,
                    "span stage names are opened but the catalogue module "
                    "defines no SPAN_REFERENCE table",
                )
            return

        # Direction 1: every opened stage is catalogued ...
        for source, node, name in sites:
            if name not in reference:
                yield self.finding(
                    source,
                    node,
                    f"span stage {name!r} is not in SPAN_REFERENCE",
                    suggestion=_suggest(name, reference),
                )
        # ... and every catalogue row names a stage some call site opens.
        opened = {name for _source, _node, name in sites}
        for name, lineno in sorted(reference.items()):
            if name not in opened:
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=catalogue_file.rel_path,
                    line=lineno,
                    col=1,
                    message=(
                        f"SPAN_REFERENCE row {name!r} does not correspond to any "
                        "trace_span/registry.span call site"
                    ),
                    suggestion=_suggest(name, opened),
                )


def _suggest(name: str, known: dict[str, int] | set[str]) -> str | None:
    match = suggest(name, list(known))
    return f"did you mean {match!r}?" if match else None
