"""REP008: every ``ExecutionSpec`` field is reachable from the CLI.

``ExecutionSpec`` is how a run's execution knobs are stored, replayed,
and compared.  When a field exists on the spec but no ``repro`` CLI path
can set it, runs driven from the command line silently can't express --
or reproduce -- configurations the programmatic API supports.  The rule
compares the spec dataclass's fields against the keyword arguments of
every ``ExecutionSpec(...)`` construction in the CLI module and flags
each unreachable field at its declaration line.

Constructions using ``**kwargs`` make reachability undecidable, so a
single splatted call site disables the rule for that run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dataclass_fields, dotted_name, iter_classes
from repro.lint.engine import Project, Rule, register_rule
from repro.lint.findings import Finding

_SPEC_CLASS = "ExecutionSpec"


@register_rule
class CliDriftRule(Rule):
    rule_id = "REP008"
    severity = "error"
    summary = "every ExecutionSpec field must be settable from repro.cli"
    autofix_hint = (
        "add a CLI flag and pass it through to the ExecutionSpec construction"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        spec_file = project.file(project.config.spec_module)
        cli_file = project.file(project.config.cli_module)
        if spec_file is None or cli_file is None:
            return
        spec_cls = next(
            (cls for cls in iter_classes(spec_file.tree) if cls.name == _SPEC_CLASS),
            None,
        )
        if spec_cls is None:
            return
        fields = dataclass_fields(spec_cls)
        field_names = [name for name, _ in fields]

        reachable: set[str] = set()
        saw_construction = False
        for node in ast.walk(cli_file.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.split(".")[-1] != _SPEC_CLASS:
                continue
            saw_construction = True
            if any(keyword.arg is None for keyword in node.keywords):
                return  # **kwargs: reachability is undecidable
            reachable.update(field_names[: len(node.args)])
            reachable.update(
                keyword.arg for keyword in node.keywords if keyword.arg is not None
            )
        if not saw_construction:
            yield self.finding(
                cli_file,
                cli_file.tree.body[0] if cli_file.tree.body else None,
                f"CLI module never constructs {_SPEC_CLASS}; execution knobs "
                "are not reachable from the command line",
            )
            return
        for name, node in fields:
            if name not in reachable:
                yield self.finding(
                    spec_file,
                    node,
                    f"{_SPEC_CLASS}.{name} is not settable from any CLI code path",
                    suggestion=f"wire a --{name.replace('_', '-')} flag through repro.cli",
                )
