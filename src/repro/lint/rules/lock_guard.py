"""REP006: state a class protects with its lock stays protected.

A class that creates a ``threading.Lock``/``RLock`` in ``__init__`` and
writes some attribute under ``with self._lock:`` has declared that
attribute lock-guarded.  Any *other* write to the same attribute that is
not under the lock is a latent race -- exactly the bug class the
sharded stream runner and the run store were designed to avoid.

Conventions the rule understands:

* ``__init__`` writes are construction, not shared-state mutation, and
  are always allowed;
* methods whose name ends in ``_locked`` document that the caller holds
  the lock and are exempt;
* ``# repro-lint: allow[REP006] reason`` on the write line for anything
  genuinely single-threaded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name, iter_classes, self_attr_of_target, write_targets
from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "Lock",
    "RLock",
}


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attribute names assigned a Lock/RLock anywhere in the class body."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        factory = dotted_name(node.value.func)
        if factory not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attr_of_target(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _holds_lock(stmt: ast.With, locks: set[str]) -> bool:
    for item in stmt.items:
        name = dotted_name(item.context_expr)
        if name is not None and name.startswith("self.") and name[len("self.") :] in locks:
            return True
    return False


def _walk_writes(
    stmts: list[ast.stmt], locks: set[str], under_lock: bool
) -> Iterator[tuple[str, ast.stmt, bool]]:
    """``(attr, stmt, under_lock)`` for every ``self.<attr>`` write."""
    for stmt in stmts:
        for target in write_targets(stmt):
            targets = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for element in targets:
                attr = self_attr_of_target(element)
                if attr is not None:
                    yield attr, stmt, under_lock
        held = under_lock or (isinstance(stmt, ast.With) and _holds_lock(stmt, locks))
        for block in ("body", "orelse", "finalbody"):
            children = getattr(stmt, block, None)
            if children:
                yield from _walk_writes(children, locks, held)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _walk_writes(handler.body, locks, held)


@register_rule
class LockGuardRule(Rule):
    rule_id = "REP006"
    severity = "error"
    summary = (
        "attributes a class writes under its lock must never be written "
        "without it"
    )
    autofix_hint = (
        "wrap the write in 'with self._lock:', rename the method *_locked "
        "if the caller holds it, or pragma a single-threaded write"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not project.in_scope(source, project.config.lock_paths):
            return
        for cls in iter_classes(source.tree):
            locks = _lock_attrs(cls)
            if not locks:
                continue
            # Pass 1: which attributes does this class treat as guarded?
            guarded: set[str] = set()
            writes: list[tuple[str, ast.stmt, bool, str]] = []
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                for attr, stmt, held in _walk_writes(item.body, locks, False):
                    if attr in locks:
                        continue
                    if held:
                        guarded.add(attr)
                    writes.append((attr, stmt, held, item.name))
            # Pass 2: flag unguarded writes of guarded attributes.
            for attr, stmt, held, method in writes:
                if held or attr not in guarded:
                    continue
                if method == "__init__" or method.endswith("_locked"):
                    continue
                yield self.finding(
                    source,
                    stmt,
                    f"{cls.name}.{method} writes self.{attr} without holding the "
                    f"lock that guards it elsewhere in {cls.name}",
                    suggestion="hold the lock for this write (or rename the method *_locked)",
                )
