"""REP001: engine paths must be deterministic under a seed.

The reproduction's headline guarantee -- byte-identical batch/stream
and record/columnar results -- holds only because every simulation and
detection path draws randomness from an explicitly seeded generator and
takes time from the record stream, never from the machine.  This rule
bans the wall clock (``time.time``, ``datetime.now`` and friends) and
global random state (module-level ``random.*``, legacy ``np.random.*``)
inside the configured engine paths.

Seeded constructions remain fine: ``random.Random(seed)``,
``np.random.default_rng(seed)``, and methods on generator objects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap, dotted_name
from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding

#: Wall-clock call suffixes, keyed by the module the receiver must
#: resolve to.
_CLOCK_CALLS = {
    "time": {"time", "time_ns"},
    "datetime": {"now", "utcnow", "today"},
}

#: ``random`` module attributes that are fine to call (explicitly seeded
#: constructions and state plumbing).
_RANDOM_ALLOWED = {"Random", "SystemRandom", "seed", "getstate", "setstate"}

#: ``numpy.random`` attributes that are fine (seeded generator API).
_NP_RANDOM_ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64", "BitGenerator"}


@register_rule
class DeterminismRule(Rule):
    rule_id = "REP001"
    severity = "error"
    summary = (
        "engine paths must not read the wall clock or global random state "
        "(seeded determinism)"
    )
    autofix_hint = (
        "thread a seeded random.Random / np.random.default_rng(seed) through, "
        "or take timestamps from the record stream"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not project.in_scope(source, project.config.deterministic_paths):
            return
        imports = ImportMap.of(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            yield from self._check_call(source, node, name, imports)

    # ------------------------------------------------------------------
    def _check_call(
        self, source: SourceFile, node: ast.Call, name: str, imports: ImportMap
    ) -> Iterator[Finding]:
        parts = name.split(".")
        head, tail = parts[0], parts[-1]

        # time.time() / time.time_ns()
        if len(parts) == 2 and imports.resolves_to_module(head, "time"):
            if tail in _CLOCK_CALLS["time"]:
                yield self.finding(
                    source,
                    node,
                    f"call to {name}() reads the wall clock in an engine path",
                    suggestion="derive time from the record stream (or time.perf_counter for pure telemetry)",
                )
            return

        # datetime.now() / datetime.datetime.now() / date.today()
        if tail in _CLOCK_CALLS["datetime"]:
            receiver = parts[:-1]
            is_datetime = False
            if receiver and imports.imported_from(receiver[0], "datetime") in (
                "datetime",
                "date",
            ):
                is_datetime = len(receiver) == 1
            elif receiver and imports.resolves_to_module(receiver[0], "datetime"):
                is_datetime = len(receiver) == 2 and receiver[1] in ("datetime", "date")
            if is_datetime:
                yield self.finding(
                    source,
                    node,
                    f"call to {name}() reads the wall clock in an engine path",
                    suggestion="pass timestamps in explicitly; engine results must not depend on run time",
                )
            return

        # random.<fn>() on the module's hidden global generator
        if len(parts) == 2 and imports.resolves_to_module(head, "random"):
            if tail not in _RANDOM_ALLOWED:
                yield self.finding(
                    source,
                    node,
                    f"call to {name}() uses the global (unseeded) random generator",
                    suggestion="use an explicitly seeded random.Random instance",
                )
            return

        # from random import shuffle; shuffle(...)
        if len(parts) == 1 and imports.imported_from(head, "random") not in (
            None,
            *sorted(_RANDOM_ALLOWED),
        ):
            yield self.finding(
                source,
                node,
                f"call to random.{imports.imported_from(head, 'random')}() uses the "
                "global (unseeded) random generator",
                suggestion="use an explicitly seeded random.Random instance",
            )
            return

        # np.random.<fn>() legacy global-state API
        if (
            len(parts) == 3
            and parts[1] == "random"
            and imports.resolves_to_module(head, "numpy")
            and tail not in _NP_RANDOM_ALLOWED
        ):
            yield self.finding(
                source,
                node,
                f"call to {name}() uses numpy's legacy global random state",
                suggestion="use np.random.default_rng(seed)",
            )
