"""REP003: batch detectors keep the columnar engine in lockstep.

The columnar substrate only reproduces the record-path results because
every detector either implements ``analyze_columns`` or deliberately
falls back to the record path.  A detector that defines ``analyze``
without either is the drift this rule exists to catch: the columnar
engine would quietly produce different Table 1 numbers.

The explicit fallback is a class-body marker::

    class SessionDetector(Detector):
        columnar_fallback = True  # record-path semantics are the spec

The same contract repeats one level up for the frame-native alert
arrays: a detector that implements ``analyze_columns`` must either
produce :class:`~repro.columns.alertframe.DetectorAlerts` via
``alert_columns`` or declare ``frame_fallback = True`` to state that
the frame pipeline may bridge its dict-path alert set into arrays.
Silence is drift either way.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import class_assigns_true, class_has_method, dotted_name, iter_classes
from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding

FALLBACK_MARKER = "columnar_fallback"
FRAME_FALLBACK_MARKER = "frame_fallback"


def _is_detector_subclass(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1].endswith("Detector"):
            return True
    return False


@register_rule
class EngineParityRule(Rule):
    rule_id = "REP003"
    severity = "error"
    summary = (
        "Detector subclasses defining analyze must define analyze_columns "
        f"or set {FALLBACK_MARKER} = True"
    )
    autofix_hint = (
        "implement analyze_columns over the columnar batch, or add "
        f"'{FALLBACK_MARKER} = True' to opt into the record-path fallback"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not project.in_scope(source, project.config.detector_paths):
            return
        for cls in iter_classes(source.tree):
            if not _is_detector_subclass(cls):
                continue
            if not class_has_method(cls, "analyze"):
                continue
            if class_has_method(cls, "analyze_columns"):
                continue
            if class_assigns_true(cls, FALLBACK_MARKER):
                continue
            yield self.finding(
                source,
                cls,
                f"detector {cls.name} defines analyze without analyze_columns "
                f"and does not declare {FALLBACK_MARKER} = True",
                suggestion=(
                    f"implement {cls.name}.analyze_columns or mark the class "
                    f"with {FALLBACK_MARKER} = True"
                ),
            )


@register_rule
class FrameParityRule(Rule):
    rule_id = "REP010"
    severity = "error"
    summary = (
        "Detector subclasses defining analyze_columns must define alert_columns "
        f"or set {FRAME_FALLBACK_MARKER} = True"
    )
    autofix_hint = (
        "produce DetectorAlerts arrays via alert_columns, or add "
        f"'{FRAME_FALLBACK_MARKER} = True' to let the frame pipeline bridge "
        "the dict-path alert set"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not project.in_scope(source, project.config.detector_paths):
            return
        for cls in iter_classes(source.tree):
            if not _is_detector_subclass(cls):
                continue
            if not class_has_method(cls, "analyze_columns"):
                continue
            if class_has_method(cls, "alert_columns"):
                continue
            if class_assigns_true(cls, FRAME_FALLBACK_MARKER):
                continue
            yield self.finding(
                source,
                cls,
                f"detector {cls.name} defines analyze_columns without alert_columns "
                f"and does not declare {FRAME_FALLBACK_MARKER} = True",
                suggestion=(
                    f"implement {cls.name}.alert_columns or mark the class "
                    f"with {FRAME_FALLBACK_MARKER} = True"
                ),
            )
