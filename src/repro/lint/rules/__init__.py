"""The built-in project-invariant rules.

Importing this package registers every rule (each module applies
:func:`repro.lint.engine.register_rule` at import time):

========  ==========================================================
REP001    seeded determinism in engine paths (no wall clock, no
          global ``random`` state)
REP002    metric-name discipline: instrumentation sites and the
          ``METRIC_REFERENCE`` catalogue match, both directions
REP003    engine parity: batch detectors implement the columnar
          path or declare the record-path fallback explicitly
REP004    registry discipline: component families are extended
          through ``register_*`` helpers, never registry internals
REP005    spec round-trip parity: ``to_dict``/``from_dict`` cover
          every field of every ``*Spec``/``RunResult`` dataclass
REP006    lock guard: attributes a class writes under its lock are
          never written without it
REP007    exception hygiene: no bare ``except:``; no silently
          swallowed exceptions in engine paths
REP008    CLI drift: every ``ExecutionSpec`` field is reachable
          from ``repro.cli``
REP009    span-name discipline: ``trace_span``/``registry.span``
          stage names and the ``SPAN_REFERENCE`` catalogue match,
          both directions
========  ==========================================================

Adding a rule: subclass :class:`repro.lint.engine.Rule` in a new module
here (or in third-party code), decorate it with ``@register_rule``, and
import the module.  Fixture-backed firing tests live in
``tests/lint/``.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    cli_drift,
    determinism,
    engine_parity,
    exception_hygiene,
    lock_guard,
    metric_names,
    registry_discipline,
    span_names,
    spec_roundtrip,
)
