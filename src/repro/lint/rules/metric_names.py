"""REP002: instrumentation sites and the metric catalogue agree.

``repro.obs.names`` is the single source of truth for telemetry names:
every constant it defines must be documented in ``METRIC_REFERENCE``,
every catalogue row must describe a defined constant, and every
``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call site must
use a catalogued name.  Drift in either direction means dashboards and
alerts silently reference series that no longer exist (or never did).

Call-site first arguments are resolved statically: string literals,
names imported from the catalogue module, and ``names.FOO``-style
attribute reads.  Dynamic names (variables, f-strings) are skipped --
this rule only judges what it can prove.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap, dotted_name, module_path_of
from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding
from repro.registry import suggest

_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")


def _module_assignment(stmt: ast.stmt) -> tuple[ast.Name | None, ast.expr | None]:
    """``(target, value)`` of a single-target module assignment (plain or
    annotated), else ``(None, None)``."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return stmt.target, stmt.value
    return None, None


def _catalogue_of(source: SourceFile) -> tuple[dict[str, str], dict[str, int], ast.AST | None]:
    """``(constants, reference_names, reference_node)`` of the names module.

    ``constants`` maps constant name -> metric-name string for every
    module-level ``FOO = "..."`` assignment; ``reference_names`` maps
    each ``METRIC_REFERENCE`` row's metric name to its line.
    """
    constants: dict[str, str] = {}
    reference: dict[str, int] = {}
    reference_node: ast.AST | None = None
    for stmt in source.tree.body:
        target, value = _module_assignment(stmt)
        if target is None or value is None:
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            constants[target.id] = value.value
        elif target.id == "METRIC_REFERENCE":
            reference_node = stmt
            for row in ast.walk(value):
                if not isinstance(row, ast.Tuple) or not row.elts:
                    continue
                first = row.elts[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    reference[first.value] = row.lineno
                elif isinstance(first, ast.Name) and first.id in constants:
                    reference[constants[first.id]] = row.lineno
    return constants, reference, reference_node


@register_rule
class MetricNameRule(Rule):
    rule_id = "REP002"
    severity = "error"
    summary = (
        "metric names at instrumentation sites and in METRIC_REFERENCE "
        "must match, both directions"
    )
    autofix_hint = (
        "add the metric to repro.obs.names (constant + METRIC_REFERENCE row) "
        "or fix the call site to use a catalogued constant"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        catalogue_file = project.file(project.config.metric_catalogue)
        if catalogue_file is None:
            return
        catalogue_module = module_path_of(catalogue_file.rel_path)
        constants, reference, reference_node = _catalogue_of(catalogue_file)
        if reference_node is None:
            yield self.finding(
                catalogue_file,
                catalogue_file.tree.body[0] if catalogue_file.tree.body else None,
                "metric catalogue module defines no METRIC_REFERENCE table",
            )
            return

        # Direction 1: every defined constant is catalogued ...
        for stmt in catalogue_file.tree.body:
            target, _ = _module_assignment(stmt)
            if target is None or target.id not in constants:
                continue
            value = constants[target.id]
            if value not in reference:
                yield self.finding(
                    catalogue_file,
                    stmt,
                    f"metric constant {target.id} = {value!r} has no METRIC_REFERENCE row",
                    suggestion=_suggest(value, reference),
                )
        # ... and every catalogue row describes a defined constant.
        known_values = set(constants.values())
        for value, lineno in sorted(reference.items()):
            if value not in known_values:
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=catalogue_file.rel_path,
                    line=lineno,
                    col=1,
                    message=(
                        f"METRIC_REFERENCE row {value!r} does not correspond to any "
                        "metric constant in the catalogue module"
                    ),
                    suggestion=_suggest(value, known_values),
                )

        # Direction 2: every resolvable instrumentation call site uses a
        # catalogued name.
        for source in project.files:
            if source.rel_path == catalogue_file.rel_path:
                continue
            imports = ImportMap.of(source.tree)
            for node in ast.walk(source.tree):
                name = _instrumented_name(node, imports, constants, catalogue_module)
                if name is None:
                    continue
                if name not in reference:
                    yield self.finding(
                        source,
                        node,
                        f"metric name {name!r} is not in METRIC_REFERENCE",
                        suggestion=_suggest(name, reference),
                    )


def _instrumented_name(
    node: ast.AST,
    imports: ImportMap,
    constants: dict[str, str],
    catalogue_module: str,
) -> str | None:
    """The statically-resolvable metric name of an instrumentation call."""
    if not isinstance(node, ast.Call) or not node.args:
        return None
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _INSTRUMENT_METHODS:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name):
        original = imports.imported_from(arg.id, catalogue_module)
        if original is not None:
            return constants.get(original)
        return None
    if isinstance(arg, ast.Attribute):
        dotted = dotted_name(arg)
        if dotted is None or "." not in dotted:
            return None
        head, _, const = dotted.rpartition(".")
        receiver = dotted.split(".")[0]
        if imports.resolves_to_module(receiver, catalogue_module):
            return constants.get(const)
    return None


def _suggest(name: str, known: dict[str, int] | set[str]) -> str | None:
    match = suggest(name, list(known))
    return f"did you mean {match!r}?" if match else None
