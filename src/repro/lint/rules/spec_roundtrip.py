"""REP005: explicit ``to_dict``/``from_dict`` cover every field.

The run-spec layer guarantees ``from_dict(to_dict(x)) == x`` so stored
runs replay bit-for-bit.  Generic implementations (driven by
``dataclasses.fields``) keep that guarantee automatically; the risk is
the *explicit* serializers -- add a field to the dataclass, forget the
serializer, and round-trips silently drop data.

For every ``*Spec`` / ``RunResult`` dataclass that writes its own
``to_dict`` or ``from_dict``, each field name must be visible inside
that method: as a string key, a ``self.<field>`` read (``to_dict``), or
a keyword argument (``from_dict``).  Findings anchor at the field's
declaration line, so one pragma covers a deliberately-unserialized
field in both directions::

    raw: Any = None  # repro-lint: allow[REP005] transient, never persisted
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (
    dataclass_fields,
    is_dataclass,
    iter_classes,
    self_attribute_reads,
    string_constants,
)
from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding


def _covered(cls: ast.ClassDef) -> bool:
    name = cls.name
    return name.endswith("Spec") or name == "RunResult"


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _keyword_args(func: ast.FunctionDef) -> set[str]:
    return {
        keyword.arg
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        for keyword in node.keywords
        if keyword.arg is not None
    }


@register_rule
class SpecRoundTripRule(Rule):
    rule_id = "REP005"
    severity = "error"
    summary = (
        "explicit to_dict/from_dict on *Spec/RunResult dataclasses must "
        "mention every field"
    )
    autofix_hint = (
        "serialize the field in both methods, or pragma the field line when "
        "it is deliberately transient"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for cls in iter_classes(source.tree):
            if not _covered(cls) or not is_dataclass(cls):
                continue
            to_dict = _method(cls, "to_dict")
            from_dict = _method(cls, "from_dict")
            if to_dict is None and from_dict is None:
                continue
            fields = dataclass_fields(cls)
            if to_dict is not None:
                mentioned = string_constants(to_dict) | self_attribute_reads(to_dict)
                for name, node in fields:
                    if name not in mentioned:
                        yield self.finding(
                            source,
                            node,
                            f"{cls.name}.{name} is not serialized by {cls.name}.to_dict",
                            suggestion=f'emit "{name}": self.{name} (or pragma the field)',
                        )
            if from_dict is not None:
                mentioned = string_constants(from_dict) | _keyword_args(from_dict)
                for name, node in fields:
                    if name not in mentioned:
                        yield self.finding(
                            source,
                            node,
                            f"{cls.name}.{name} is not restored by {cls.name}.from_dict",
                            suggestion=f"read {name!r} from the payload (or pragma the field)",
                        )
