"""REP007: no bare ``except:``, no silently swallowed errors.

A bare ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit`` and
is flagged everywhere in the scanned roots.  An ``except`` whose entire
body is ``pass`` is flagged (as a warning) inside the configured engine
and persistence paths, where an eaten exception can silently corrupt
results.  Deliberate best-effort cleanup stays expressible::

    except OSError:  # repro-lint: allow[REP007] best-effort tmp cleanup
        pass
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Project, Rule, SourceFile, register_rule
from repro.lint.findings import Finding


@register_rule
class ExceptionHygieneRule(Rule):
    rule_id = "REP007"
    severity = "error"
    summary = "no bare except; no except bodies that only pass in engine paths"
    autofix_hint = (
        "catch a specific exception type; log or re-raise instead of passing"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        in_engine = project.in_scope(source, project.config.exception_paths)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source,
                    node,
                    "bare except: catches SystemExit and KeyboardInterrupt",
                    suggestion="catch Exception (or the specific error) instead",
                )
            elif in_engine and all(isinstance(stmt, ast.Pass) for stmt in node.body):
                yield self.finding(
                    source,
                    node,
                    "exception swallowed (except body is only 'pass') in an engine path",
                    suggestion="record the failure (metrics/log) or re-raise",
                    severity="warning",
                )
