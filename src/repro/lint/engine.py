"""The rule engine: parse once, dispatch every rule, report findings.

The engine walks the configured roots, parses each Python source into a
:class:`SourceFile` (AST, raw lines, pragma suppressions), and hands the
parsed project to every registered rule.  Rules come in two shapes:

* **per-file** -- ``check_file(source, project)`` runs once per source
  file (determinism, exception hygiene, ...);
* **project** -- ``check_project(project)`` runs once over the whole
  tree and may correlate files (metric-name discipline, CLI drift).

Rules register through :func:`register_rule` into a
:class:`repro.registry.Registry` keyed by rule id, so third-party
invariants plug in exactly like detectors and scenarios do.

Suppression and baseline
------------------------
A finding is dropped when its source line carries a pragma::

    frozen = time.time()  # repro-lint: allow[REP001] wall-clock display

and *baselined* (reported separately, never failing the gate) when its
:meth:`~repro.lint.findings.Finding.fingerprint` appears in the checked-in
baseline file -- the burn-down list of accepted legacy findings.
"""

from __future__ import annotations

import abc
import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.exceptions import LintError
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, severity_rank
from repro.registry import Registry

#: ``# repro-lint: allow[REP001]`` or ``allow[REP001,REP007] reason...``
_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([A-Z0-9,\s]+)\]")

BASELINE_VERSION = 1


# ----------------------------------------------------------------------
# Parsed sources
# ----------------------------------------------------------------------
@dataclass
class SourceFile:
    """One parsed Python source file."""

    #: POSIX path relative to the lint root (the path findings carry).
    rel_path: str
    source: str
    tree: ast.Module
    #: line number -> set of rule ids allowed on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, rel_path: str, source: str) -> "SourceFile":
        tree = ast.parse(source, filename=rel_path)
        suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
                suppressions[lineno] = rules
        return cls(rel_path=rel_path, source=source, tree=tree, suppressions=suppressions)

    def suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.suppressions.get(finding.line, ())


@dataclass
class Project:
    """Every parsed source file plus the active configuration."""

    root: Path
    config: LintConfig
    files: list[SourceFile]

    def file(self, rel_path: str) -> SourceFile | None:
        """The parsed file at ``rel_path``, or ``None`` when not scanned."""
        for source in self.files:
            if source.rel_path == rel_path:
                return source
        return None

    def in_scope(self, source: SourceFile, prefixes: tuple[str, ...]) -> bool:
        return self.config.matches(source.rel_path, prefixes)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule(abc.ABC):
    """One project invariant, checked statically.

    Subclasses set the class attributes and override :meth:`check_file`
    (per-file rules), :meth:`check_project` (cross-file rules), or both.
    """

    #: Stable id (``"REP001"``); the registry key and the baseline key.
    rule_id: str = ""
    #: Default severity of this rule's findings.
    severity: str = "error"
    #: One-line statement of the invariant (``repro lint --list-rules``).
    summary: str = ""
    #: How a finding is typically fixed (shown with ``--list-rules``).
    autofix_hint: str = ""

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        """Findings of this rule in one file (default: none)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Cross-file findings of this rule (default: none)."""
        return iter(())

    # ------------------------------------------------------------------
    def finding(
        self,
        source: SourceFile,
        node: ast.AST | None,
        message: str,
        *,
        suggestion: str | None = None,
        severity: str | None = None,
    ) -> Finding:
        """Build a finding of this rule at ``node``'s location."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) + 1 if node is not None else 1
        return Finding(
            rule=self.rule_id,
            severity=severity or self.severity,
            path=source.rel_path,
            line=line,
            col=col,
            message=message,
            suggestion=suggestion,
        )


RULES: Registry[Rule] = Registry("lint rule", LintError)


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a :class:`Rule` under its ``rule_id``."""
    if not cls.rule_id:
        raise LintError(f"rule class {cls.__name__} has no rule_id")
    severity_rank(cls.severity)
    RULES.register(cls.rule_id, cls)
    return cls


def available_rules() -> list[Rule]:
    """One instance of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [RULES.create(rule_id) for rule_id in RULES.names()]


def _load_builtin_rules() -> None:
    # Importing the rules package runs every @register_rule decorator;
    # idempotent because Registry rejects double registration and the
    # module body only executes once.
    from repro.lint import rules  # noqa: F401


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> set[str]:
    """The accepted-finding fingerprints of a baseline file.

    A missing file is an empty baseline (the common initial state).
    """
    path = Path(path)
    if not path.is_file():
        return set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read lint baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != "repro-lint-baseline":
        raise LintError(f"{path} is not a repro-lint baseline file")
    if data.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} has version {data.get('version')!r}; "
            f"this library reads version {BASELINE_VERSION}"
        )
    fingerprints = data.get("findings", [])
    if not isinstance(fingerprints, list) or not all(isinstance(f, str) for f in fingerprints):
        raise LintError(f"baseline {path} findings must be a list of fingerprint strings")
    return set(fingerprints)


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    fingerprints = sorted({finding.fingerprint() for finding in findings})
    payload = {
        "format": "repro-lint-baseline",
        "version": BASELINE_VERSION,
        "findings": fingerprints,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(fingerprints)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint run produced."""

    #: Findings that count (not suppressed, not baselined), sorted.
    findings: list[Finding]
    #: Findings matched by the baseline file (the burn-down backlog).
    baselined: list[Finding]
    #: Number of findings silenced by inline ``allow[...]`` pragmas.
    suppressed: int
    #: Files parsed and checked.
    checked_files: int
    #: Baseline fingerprints that matched nothing -- stale entries a
    #: burn-down should delete.
    stale_baseline: list[str]

    def counts(self) -> dict[str, int]:
        """Finding counts by severity (only severities that occur)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def worst_at_or_above(self, severity: str) -> bool:
        """Whether any finding is at least ``severity`` (the CI gate)."""
        threshold = severity_rank(severity)
        return any(severity_rank(f.severity) >= threshold for f in self.findings)

    def to_dict(self) -> dict[str, object]:
        return {
            "format": "repro-lint",
            "version": 1,
            "checked_files": self.checked_files,
            "counts": self.counts(),
            "suppressed": self.suppressed,
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }


def collect_sources(root: Path, roots: tuple[str, ...]) -> list[tuple[str, Path]]:
    """``(rel_path, absolute_path)`` of every Python source in scope."""
    seen: set[str] = set()
    sources: list[tuple[str, Path]] = []
    for entry in roots:
        base = root / entry
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            raise LintError(f"lint root {entry!r} does not exist under {root}")
        for path in candidates:
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).as_posix()
            if rel not in seen:
                seen.add(rel)
                sources.append((rel, path))
    return sources


def parse_project(root: str | Path, config: LintConfig) -> Project:
    """Parse every source under ``config.roots`` into a :class:`Project`.

    A file that does not parse becomes a synthetic ``REP000`` finding at
    run time rather than an exception here -- see :func:`run_lint`.
    """
    root = Path(root).resolve()
    files: list[SourceFile] = []
    for rel, path in collect_sources(root, config.roots):
        source = path.read_text(encoding="utf-8")
        files.append(SourceFile.parse(rel, source))
    return Project(root=root, config=config, files=files)


def run_lint(
    root: str | Path,
    *,
    config: LintConfig | None = None,
    rules: Iterable[Rule] | None = None,
    baseline: set[str] | None = None,
) -> LintReport:
    """Run the rule suite over a project tree.

    Parameters
    ----------
    root:
        Repository root all configured paths are relative to.
    config:
        Lint configuration; defaults to :class:`LintConfig` defaults
        (callers wanting ``pyproject.toml`` settings pass
        :func:`repro.lint.config.load_config` output).
    rules:
        The rules to run; defaults to every registered rule, filtered by
        the config's ``select`` / ``ignore``.
    baseline:
        Accepted fingerprints; defaults to the config's baseline file.
    """
    config = config or LintConfig()
    root = Path(root).resolve()
    if rules is None:
        rules = available_rules()
        if config.select:
            rules = [rule for rule in rules if rule.rule_id in config.select]
        if config.ignore:
            rules = [rule for rule in rules if rule.rule_id not in config.ignore]
    if baseline is None:
        baseline = set()
        if config.baseline is not None:
            baseline = load_baseline(root / config.baseline)

    syntax_findings: list[Finding] = []
    files: list[SourceFile] = []
    for rel, path in collect_sources(root, config.roots):
        source = path.read_text(encoding="utf-8")
        try:
            files.append(SourceFile.parse(rel, source))
        except SyntaxError as exc:
            syntax_findings.append(
                Finding(
                    rule="REP000",
                    severity="error",
                    path=rel,
                    line=exc.lineno or 1,
                    col=exc.offset or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    project = Project(root=root, config=config, files=files)

    raw: list[Finding] = list(syntax_findings)
    for rule in rules:
        for source in project.files:
            raw.extend(rule.check_file(source, project))
        raw.extend(rule.check_project(project))

    findings: list[Finding] = []
    baselined: list[Finding] = []
    suppressed = 0
    matched_fingerprints: set[str] = set()
    for finding in sorted(raw, key=Finding.sort_key):
        source_file = project.file(finding.path)
        if source_file is not None and source_file.suppressed(finding):
            suppressed += 1
            continue
        if finding.fingerprint() in baseline:
            matched_fingerprints.add(finding.fingerprint())
            baselined.append(finding)
            continue
        findings.append(finding)
    return LintReport(
        findings=findings,
        baselined=baselined,
        suppressed=suppressed,
        checked_files=len(project.files),
        stale_baseline=sorted(baseline - matched_fingerprints),
    )
