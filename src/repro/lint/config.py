"""Lint configuration: which paths each invariant governs.

The defaults describe this repository; ``[tool.repro-lint]`` in
``pyproject.toml`` overrides them (the same config surface the ruff and
mypy gates read), and tests inject a :class:`LintConfig` directly to
point the project rules at fixture trees.

All paths are POSIX-style and relative to the lint root; a file is in
scope for a path list when its relative path starts with one of the
entries (an empty list disables the scope check entirely -- every file
matches).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import LintError

#: The paper's correctness guarantees are about the engines: seeded
#: determinism (REP001) applies to everything that computes results.
DEFAULT_ENGINE_PATHS = (
    "src/repro/core",
    "src/repro/detectors",
    "src/repro/stream",
    "src/repro/columns",
    "src/repro/traffic",
)

#: Exception hygiene (REP007's swallowed-``except`` check) additionally
#: covers the persistence and enforcement layers -- anywhere an eaten
#: error could silently change results.
DEFAULT_EXCEPTION_PATHS = DEFAULT_ENGINE_PATHS + (
    "src/repro/trace",
    "src/repro/mitigation",
    "src/repro/runstore",
    "src/repro/runspec",
    "src/repro/obs",
)


@dataclass(frozen=True)
class LintConfig:
    """Everything :func:`repro.lint.engine.run_lint` needs besides a root."""

    #: Directories (or files) scanned for Python sources.
    roots: tuple[str, ...] = ("src/repro",)
    #: Baseline file of accepted legacy findings (``None`` = no baseline).
    baseline: str | None = "lint-baseline.json"
    #: Rule ids to run; empty means every registered rule.
    select: tuple[str, ...] = ()
    #: Rule ids to skip.
    ignore: tuple[str, ...] = ()
    #: REP001 determinism scope.
    deterministic_paths: tuple[str, ...] = DEFAULT_ENGINE_PATHS
    #: REP003 engine-parity scope (where Detector subclasses live).
    detector_paths: tuple[str, ...] = ("src/repro",)
    #: REP006 lock-guard scope (threaded classes).
    lock_paths: tuple[str, ...] = ("src/repro",)
    #: REP007 swallowed-exception scope (bare ``except:`` is flagged
    #: everywhere regardless).
    exception_paths: tuple[str, ...] = DEFAULT_EXCEPTION_PATHS
    #: REP002: the module defining the metric-name catalogue.
    metric_catalogue: str = "src/repro/obs/names.py"
    #: REP008: the module defining ``ExecutionSpec`` ...
    spec_module: str = "src/repro/runspec/spec.py"
    #: ... and the CLI module every field must be reachable from.
    cli_module: str = "src/repro/cli.py"

    def matches(self, rel_path: str, prefixes: tuple[str, ...]) -> bool:
        """Whether ``rel_path`` falls under one of ``prefixes``."""
        if not prefixes:
            return True
        return any(rel_path == p or rel_path.startswith(p.rstrip("/") + "/") for p in prefixes)


def _coerce(name: str, value: Any, default: Any) -> Any:
    if isinstance(default, tuple):
        if not isinstance(value, (list, tuple)) or not all(isinstance(v, str) for v in value):
            raise LintError(f"[tool.repro-lint] {name} must be a list of strings")
        return tuple(value)
    if default is None or isinstance(default, str):
        if value is not None and not isinstance(value, str):
            raise LintError(f"[tool.repro-lint] {name} must be a string")
        return value
    raise LintError(f"[tool.repro-lint] {name} has unsupported type")  # pragma: no cover


def load_config(root: str | Path, *, pyproject: str | Path | None = None) -> LintConfig:
    """The lint configuration of a project root.

    Reads ``[tool.repro-lint]`` from ``pyproject.toml`` under ``root``
    (or an explicit ``pyproject`` path); keys use dashes or underscores
    interchangeably.  Unknown keys are rejected with the valid set, the
    same strictness the run-spec loader applies.
    """
    config = LintConfig()
    path = Path(pyproject) if pyproject is not None else Path(root) / "pyproject.toml"
    if not path.is_file():
        return config
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, Mapping):
        raise LintError("[tool.repro-lint] must be a table")
    known = {f.name: getattr(config, f.name) for f in fields(LintConfig)}
    updates: dict[str, Any] = {}
    for raw_key, value in section.items():
        key = raw_key.replace("-", "_")
        if key not in known:
            raise LintError(
                f"unknown [tool.repro-lint] key {raw_key!r}; expected one of "
                f"{sorted(k.replace('_', '-') for k in known)}"
            )
        updates[key] = _coerce(raw_key, value, known[key])
    return replace(config, **updates)


def replace_baseline(config: LintConfig, baseline: str | None) -> LintConfig:
    """``config`` with its baseline path swapped (CLI flag overrides)."""
    return replace(config, baseline=baseline)


__all__ = [
    "LintConfig",
    "load_config",
    "replace_baseline",
    "DEFAULT_ENGINE_PATHS",
    "DEFAULT_EXCEPTION_PATHS",
]
