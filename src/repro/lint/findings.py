"""Lint findings: what a rule reports and how it travels.

A :class:`Finding` is one violation of one rule at one source location.
Findings are plain data -- :meth:`Finding.to_dict` /
:meth:`Finding.from_dict` round-trip through JSON (the ``repro lint
--json`` output and the CI artifact), and :meth:`Finding.fingerprint`
gives the *line-insensitive* identity the baseline file stores, so
unrelated edits that shift line numbers never invalidate a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import LintError
from repro.registry import unknown_name_message

#: Finding severities, mildest first.  ``--fail-on`` compares against
#: this order; rules pick a default severity per rule class.
SEVERITIES = ("info", "warning", "error")


def severity_rank(severity: str) -> int:
    """The position of ``severity`` in :data:`SEVERITIES` (validates it)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError as exc:
        raise LintError(unknown_name_message("severity", severity, SEVERITIES)) from exc


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: The rule that fired (``"REP001"``).
    rule: str
    #: One of :data:`SEVERITIES`.
    severity: str
    #: Repo-relative POSIX path of the offending file.
    path: str
    #: 1-based source line.
    line: int
    #: 1-based source column.
    col: int
    #: What is wrong, in one sentence.
    message: str
    #: A did-you-mean / how-to-fix hint, when the rule has one.
    suggestion: str | None = None

    def __post_init__(self) -> None:
        severity_rank(self.severity)
        if not self.rule:
            raise LintError("a finding needs a rule id")
        if self.line < 1 or self.col < 1:
            raise LintError(
                f"finding locations are 1-based, got line {self.line} col {self.col}"
            )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """The baseline identity: rule, file and message -- no line numbers.

        Editing elsewhere in a file moves findings around without
        changing what they say, so the baseline matches on content, not
        position.
        """
        return f"{self.rule}|{self.path}|{self.message}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """The one-line human form (``path:line:col: RULE [severity] ...``)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"
        if self.suggestion:
            text += f" ({self.suggestion})"
        return text

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The finding as a JSON-ready dictionary (round-trips)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suggestion": self.suggestion,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (strict keys)."""
        if not isinstance(data, Mapping):
            raise LintError(f"a finding must be a mapping, got {type(data).__name__}")
        known = {"rule", "severity", "path", "line", "col", "message", "suggestion"}
        unknown = set(data) - known
        if unknown:
            raise LintError(f"unknown finding keys {sorted(unknown)}; expected {sorted(known)}")
        try:
            return cls(
                rule=data["rule"],
                severity=data["severity"],
                path=data["path"],
                line=data["line"],
                col=data["col"],
                message=data["message"],
                suggestion=data.get("suggestion"),
            )
        except KeyError as exc:
            raise LintError(f"finding dictionary is missing key {exc}") from exc
