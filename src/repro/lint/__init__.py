"""Project-invariant static analysis for the reproduction.

Generic linters police Python; this package polices the *paper's*
guarantees: seeded determinism, batch/stream and record/columnar
parity, metric-catalogue discipline, spec round-trips, lock hygiene.
Rules are AST-based (stdlib only), registered like every other component
family, and surfaced through ``repro lint``.

>>> from repro.lint import run_lint
>>> report = run_lint(".")
>>> report.counts()
{}
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import (
    BASELINE_VERSION,
    RULES,
    LintReport,
    Project,
    Rule,
    SourceFile,
    available_rules,
    load_baseline,
    register_rule,
    run_lint,
    write_baseline,
)
from repro.lint.findings import SEVERITIES, Finding, severity_rank

__all__ = [
    "BASELINE_VERSION",
    "Finding",
    "LintConfig",
    "LintReport",
    "Project",
    "RULES",
    "Rule",
    "SEVERITIES",
    "SourceFile",
    "available_rules",
    "load_baseline",
    "load_config",
    "register_rule",
    "run_lint",
    "severity_rank",
    "write_baseline",
]
