"""Scenario composition over recorded traces.

Real experiments are rarely "one scenario, one run": you want the
recorded background week with a recorded attack dropped on top of day
three, or a 10% sample of production traffic, or two campaigns back to
back.  These operators compose *traces* -- they stream block-by-block
through :class:`~repro.trace.store.TraceReader` /
:class:`~repro.trace.store.TraceWriter`, never materialising more than
one block per input, so composing data sets larger than memory works.

All operators carry ground-truth labels through when **every** input is
labelled (a mix of labelled and unlabelled inputs yields an unlabelled
trace -- a partially labelled data set would poison the labelled
evaluation), and return the :class:`~repro.trace.store.TraceInfo` of the
output.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import replace
from datetime import timedelta
from typing import Iterator, Sequence

from repro.exceptions import TraceError
from repro.logs.dataset import DatasetMetadata
from repro.logs.record import LogRecord
from repro.trace.store import TraceInfo, TraceReader, TraceWriter

#: ``(record, label, actor_class)`` as yielded by ``TraceReader.iter_labelled``.
_LabelledStream = Iterator[tuple[LogRecord, str | None, str]]


def _open_readers(paths: Sequence[str]) -> list[TraceReader]:
    if not paths:
        raise TraceError("at least one input trace is required")
    return [TraceReader(path) for path in paths]


def _combined_name(op: str, readers: Sequence[TraceReader]) -> str:
    names = [reader.info.dataset.get("name") or "unnamed" for reader in readers]
    return f"{op}({'+'.join(names)})"


def _output_metadata(op: str, readers: Sequence[TraceReader]) -> DatasetMetadata:
    return DatasetMetadata(
        name=_combined_name(op, readers),
        description=f"{op} of {len(readers)} trace(s)",
        source="repro.trace.ops",
    )


def _strip_labels_unless_all(readers: Sequence[TraceReader], stream: _LabelledStream) -> _LabelledStream:
    if all(reader.info.labelled for reader in readers):
        return stream
    return ((record, None, "") for record, _label, _actor in stream)


def _write_stream(
    output: str,
    metadata: DatasetMetadata,
    stream: _LabelledStream,
    *,
    reassign_ids: bool,
) -> TraceInfo:
    with TraceWriter(output, metadata=metadata) as writer:
        if reassign_ids:
            for index, (record, label, actor_class) in enumerate(stream):
                record = replace(record, request_id=f"r{index}")
                writer.write(record, label=label, actor_class=actor_class)
        else:
            for record, label, actor_class in stream:
                writer.write(record, label=label, actor_class=actor_class)
        return writer.close()


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
def concat_traces(inputs: Sequence[str], output: str) -> TraceInfo:
    """Append traces end to end (request ids are reassigned to stay unique)."""
    readers = _open_readers(inputs)

    def stream() -> _LabelledStream:
        for reader in readers:
            yield from reader.iter_labelled()

    return _write_stream(
        output,
        _output_metadata("concat", readers),
        _strip_labels_unless_all(readers, stream()),
        reassign_ids=True,
    )


def shift_trace(input_path: str, output: str, *, seconds: float) -> TraceInfo:
    """Time-shift every record by ``seconds`` (ids and labels are kept)."""
    reader = _open_readers([input_path])[0]
    offset = timedelta(seconds=seconds)

    def stream() -> _LabelledStream:
        for record, label, actor_class in reader.iter_labelled():
            yield replace(record, timestamp=record.timestamp + offset), label, actor_class

    metadata = replace(reader.read_metadata(), name=_combined_name("shift", [reader]))
    return _write_stream(output, metadata, stream(), reassign_ids=False)


def sample_trace(
    input_path: str, output: str, *, fraction: float, seed: int = 0
) -> TraceInfo:
    """Keep each record independently with probability ``fraction``.

    The draw is seeded per call, so the same (trace, fraction, seed)
    always yields the same sample -- a sampled trace is as reproducible
    as the recording it came from.  Ids are kept (a subset cannot collide).
    """
    if not 0.0 < fraction <= 1.0:
        raise TraceError(f"sample fraction must be in (0, 1], got {fraction}")
    reader = _open_readers([input_path])[0]
    rng = random.Random(seed)

    def stream() -> _LabelledStream:
        for item in reader.iter_labelled():
            if rng.random() < fraction:
                yield item

    metadata = replace(reader.read_metadata(), name=_combined_name("sample", [reader]))
    return _write_stream(output, metadata, stream(), reassign_ids=False)


def interleave_traces(
    base: str,
    overlay: str,
    output: str,
    *,
    shift_overlay_seconds: float = 0.0,
    sample_overlay: float | None = None,
    seed: int = 0,
) -> TraceInfo:
    """Merge an overlay trace onto a base trace in timestamp order.

    This is the "recorded attack onto recorded background" operator: the
    overlay can first be time-shifted (to land the campaign where you
    want it in the base window) and down-sampled (to dial its intensity),
    then the two streams are heap-merged by timestamp -- both inputs must
    be time-ordered, which the writer records in the footer.  Request ids
    are reassigned; the output is labelled only if both inputs are.
    """
    readers = _open_readers([base, overlay])
    for reader in readers:
        if not reader.info.time_ordered:
            raise TraceError(
                f"interleave needs time-ordered inputs; {reader.path!r} is not "
                "(concat it through a sorted rewrite first)"
            )
    base_reader, overlay_reader = readers
    offset = timedelta(seconds=shift_overlay_seconds)
    rng = random.Random(seed)

    def overlay_stream() -> _LabelledStream:
        for record, label, actor_class in overlay_reader.iter_labelled():
            if sample_overlay is not None and rng.random() >= sample_overlay:
                continue
            if shift_overlay_seconds:
                record = replace(record, timestamp=record.timestamp + offset)
            yield record, label, actor_class

    if sample_overlay is not None and not 0.0 < sample_overlay <= 1.0:
        raise TraceError(f"sample_overlay must be in (0, 1], got {sample_overlay}")

    merged = heapq.merge(
        base_reader.iter_labelled(),
        overlay_stream(),
        key=lambda item: item[0].timestamp,
    )
    return _write_stream(
        output,
        _output_metadata("mix", readers),
        _strip_labels_unless_all(readers, merged),
        reassign_ids=True,
    )
