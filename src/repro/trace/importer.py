"""Import real Apache access logs into the trace format.

The paper's data modality is eight days of rotated production access
logs.  This importer turns exactly that into a trace: one or more
combined/common-log-format files -- plain or gzipped, individually named
or discovered as a rotation set (``access.log``, ``access.log.1``,
``access.log.2.gz``, ...) -- are parsed line by line through
:mod:`repro.logs.parser` and streamed straight into a
:class:`~repro.trace.store.TraceWriter`.  Nothing is ever fully
materialised, so multi-gigabyte log collections import in bounded
memory, and the resulting trace replays through every workload the same
way generated traffic does.

Imported traces are unlabelled (production logs carry no ground truth);
``tables`` and ``stream`` runs accept them directly.
"""

from __future__ import annotations

import logging
import os
import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import LogParseError, TraceError
from repro.logs.dataset import DatasetMetadata
from repro.logs.parser import open_log, parse_line
from repro.trace.store import TraceInfo, TraceWriter

logger = logging.getLogger(__name__)

_ROTATION_SUFFIX = re.compile(r"^\.(\d+)(\.gz)?$")


def expand_rotated(path: str) -> list[str]:
    """Discover the rotation set of a base log file, oldest first.

    Given ``access.log``, finds sibling ``access.log.<N>`` and
    ``access.log.<N>.gz`` files and returns them ordered oldest to
    newest (highest rotation number first, the base file last) -- the
    chronological order in which the traffic was served, so the imported
    trace comes out time-ordered when the individual files are.
    """
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    rotated: list[tuple[int, str]] = []
    try:
        siblings = os.listdir(directory)
    except OSError as exc:
        raise TraceError(f"cannot list rotation set of {path!r}: {exc}") from exc
    for name in siblings:
        if not name.startswith(base):
            continue
        match = _ROTATION_SUFFIX.match(name[len(base):])
        if match:
            rotated.append((int(match.group(1)), os.path.join(directory, name)))
    ordered = [p for _number, p in sorted(rotated, key=lambda item: -item[0])]
    if os.path.exists(path):
        ordered.append(path)
    if not ordered:
        raise TraceError(f"no log files found for rotation set {path!r}")
    return ordered


@dataclass
class ImportReport:
    """Outcome of one import run."""

    files: list[str] = field(default_factory=list)
    total_lines: int = 0
    parsed: int = 0
    skipped: int = 0
    trace: TraceInfo | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation (the CLI's ``trace import --json``)."""
        return {
            "files": list(self.files),
            "total_lines": self.total_lines,
            "parsed": self.parsed,
            "skipped": self.skipped,
            "trace": None if self.trace is None else self.trace.to_dict(),
        }


def import_clf(
    inputs: Sequence[str],
    output: str,
    *,
    rotated: bool = False,
    skip_malformed: bool = True,
    request_id_prefix: str = "r",
) -> ImportReport:
    """Import access-log files into a trace at ``output``.

    Parameters
    ----------
    inputs:
        Log files to import, in chronological order.  ``.gz`` files are
        decompressed transparently.
    rotated:
        Expand each input into its rotation set first (see
        :func:`expand_rotated`).
    skip_malformed:
        Count-and-skip lines that do not parse (real logs always contain
        a little garbage); when false the first bad line raises
        :class:`~repro.exceptions.LogParseError`.
    request_id_prefix:
        Ids are assigned ``r0, r1, ...`` across the whole import, the
        same numbering a batch parse of the concatenated files produces.
    """
    files: list[str] = []
    for path in inputs:
        files.extend(expand_rotated(path) if rotated else [path])
    if not files:
        raise TraceError("no input log files to import")

    report = ImportReport(files=list(files))
    metadata = DatasetMetadata(
        name=os.path.basename(files[-1]),
        description=f"imported from {len(files)} access-log file(s)",
        source="apache-clf",
    )
    with TraceWriter(output, metadata=metadata) as writer:
        for path in files:
            line_number = 0
            try:
                handle = open_log(path)
            except OSError as exc:
                raise TraceError(f"cannot read log file {path!r}: {exc}") from exc
            with handle:
                for line in handle:
                    line_number += 1
                    if not line.strip():
                        continue
                    report.total_lines += 1
                    try:
                        record = parse_line(
                            line,
                            request_id=f"{request_id_prefix}{report.parsed}",
                            line_number=line_number,
                        )
                    except LogParseError as exc:
                        if not skip_malformed:
                            raise
                        report.skipped += 1
                        logger.debug(
                            "skipped malformed log line",
                            extra={"file": path, "line": line_number, "error": str(exc)},
                        )
                        continue
                    writer.write(record)
                    report.parsed += 1
        report.trace = writer.close()
    return report
