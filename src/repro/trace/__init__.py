"""repro.trace -- a persistent, replayable substrate for traffic.

Every workload in this reproduction consumes a stream of
:class:`~repro.logs.record.LogRecord` objects; until this package, that
stream had to be regenerated (or re-parsed) from scratch on every run.
A *trace* is the write-once/replay-many answer: a chunked, columnar,
compressed on-disk format (:mod:`repro.trace.format`) with

* a :class:`TraceWriter` / :class:`TraceReader` pair that streams block
  by block, so traces far larger than memory record and replay in
  bounded space (:mod:`repro.trace.store`);
* an O(1) footer -- record count, time range, label presence, per-block
  index -- behind :func:`trace_info` and ``repro trace info``;
* a content-addressed generation cache keyed by the hash of the
  generation inputs, which makes ``execute()`` record on first run and
  replay thereafter (:mod:`repro.trace.cache`);
* composition operators (concat, time-shift, sample, interleave an
  attack onto a background) that stream traces into new traces
  (:mod:`repro.trace.ops`); and
* an importer for real Apache combined-log-format files, including
  gzipped and rotated sets (:mod:`repro.trace.importer`) -- the paper's
  actual data modality.

Quickstart::

    from repro.trace import write_trace, read_trace, trace_info

    write_trace(dataset, "march.trace")     # record once (labels included)
    dataset = read_trace("march.trace")     # replay many, ~O(I/O)
    print(trace_info("march.trace").records)  # footer only, O(1)

or let the cache do it transparently::

    spec = RunSpec(mode="tables", traffic=TrafficSpec(scale=0.1, cache=True))
    execute(spec)   # generates and records under .repro-cache/
    execute(spec)   # replays the recording
"""

from repro.trace.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    GenerationCache,
    default_cache,
    traffic_fingerprint,
)
from repro.trace.format import DEFAULT_BLOCK_SIZE, FORMAT_VERSION
from repro.trace.importer import ImportReport, expand_rotated, import_clf
from repro.trace.ops import concat_traces, interleave_traces, sample_trace, shift_trace
from repro.trace.store import (
    TraceInfo,
    TraceReader,
    TraceWriter,
    read_trace,
    trace_info,
    write_trace,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_DIR",
    "FORMAT_VERSION",
    "GenerationCache",
    "ImportReport",
    "TraceInfo",
    "TraceReader",
    "TraceWriter",
    "concat_traces",
    "default_cache",
    "expand_rotated",
    "import_clf",
    "interleave_traces",
    "read_trace",
    "sample_trace",
    "shift_trace",
    "trace_info",
    "traffic_fingerprint",
    "write_trace",
]
