"""The binary layout of a trace file (version 1).

A trace is a write-once, replay-many container for a stream of
:class:`~repro.logs.record.LogRecord` objects (optionally with their
ground-truth labels).  The layout is chunked and columnar::

    +--------------------------------------------------------------+
    | MAGIC  b"RTRC\\x01"                                          |
    +--------------------------------------------------------------+
    | block 0:  b"B" + uint32 length + zlib(columnar block body)   |
    | block 1:  ...                                                |
    +--------------------------------------------------------------+
    | strings:  b"D" + uint32 length + zlib(JSON string tables)    |
    +--------------------------------------------------------------+
    | meta:     b"M" + uint32 length + JSON metadata               |
    +--------------------------------------------------------------+
    | trailer:  uint64 strings offset, uint64 meta offset, MAGIC   |
    +--------------------------------------------------------------+

Each block holds up to ``block_size`` records, stored as columns:
timestamps are delta-encoded microseconds (plus a per-record UTC-offset
column, so exotic timezones survive the round trip), numeric columns are
packed 64-bit arrays, and every string column (client IP, method, path,
protocol, referrer, user agent, ident, auth user, actor class) is
dictionary-encoded against trace-global string tables written once in
the strings section.  Request ids are stored verbatim (as a JSON list
per block) because they are unique by construction and would defeat a
dictionary.  The whole block body is zlib-compressed.

The meta section is deliberately tiny and *uncompressed*: record count,
time range, label presence, the per-block index (offset, count, time
range) and the originating dataset metadata.  A reader seeks to the
fixed-size trailer, jumps to the meta section and has everything
``repro trace info`` needs without touching a single block -- O(1) in
the trace length.

This module is the pure byte-level layer: it converts between
:class:`BlockColumns` (plain Python lists) and bytes.  Record-object
conversion lives in :mod:`repro.trace.store`.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass, field

from repro.exceptions import TraceError

#: File magic, doubling as the format version stamp.
MAGIC = b"RTRC\x01"

#: Version recorded in the meta section (bump together with :data:`MAGIC`).
FORMAT_VERSION = 1

#: Section tags.
BLOCK_TAG = b"B"
STRINGS_TAG = b"D"
META_TAG = b"M"

#: The dictionary-encoded string columns, in on-disk order.
DICT_COLUMNS = (
    "client_ip",
    "method",
    "path",
    "protocol",
    "referrer",
    "user_agent",
    "ident",
    "auth_user",
)

#: Fixed label table (index 0 / 1 in the label column).
LABEL_NAMES = ("benign", "malicious")

#: Default number of records per block.
DEFAULT_BLOCK_SIZE = 8192

_SECTION_HEADER = struct.Struct("<cI")
_TRAILER = struct.Struct("<QQ5s")
TRAILER_SIZE = _TRAILER.size

_LITTLE_ENDIAN = sys.byteorder == "little"


def _pack_ints(values: list[int]) -> bytes:
    arr = array("q", values)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        arr.byteswap()
    return arr.tobytes()


def _unpack_ints(buf: bytes) -> list[int]:
    arr = array("q")
    arr.frombytes(buf)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        arr.byteswap()
    return arr.tolist()


@dataclass
class BlockColumns:
    """One block of records, as parallel plain-Python columns.

    All lists have one entry per record.  ``dict_indices`` maps each
    :data:`DICT_COLUMNS` name to a list of indices into the trace-global
    string table for that column; ``labels`` / ``actor_indices`` are
    ``None`` for unlabelled traces; ``extras`` is ``None`` when every
    record's ``extra`` mapping is empty (the overwhelmingly common case).
    """

    request_ids: list[str] = field(default_factory=list)
    timestamps_us: list[int] = field(default_factory=list)
    tz_offsets_s: list[int] = field(default_factory=list)
    statuses: list[int] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)
    dict_indices: dict[str, list[int]] = field(
        default_factory=lambda: {name: [] for name in DICT_COLUMNS}
    )
    labels: list[int] | None = None
    actor_indices: list[int] | None = None
    extras: list[dict] | None = None

    def __len__(self) -> int:
        return len(self.timestamps_us)


def _delta_encode(values: list[int]) -> list[int]:
    if not values:
        return []
    deltas = [0] * len(values)
    previous = values[0]
    for index in range(1, len(values)):
        current = values[index]
        deltas[index] = current - previous
        previous = current
    return deltas


def _delta_decode(first: int, deltas: list[int]) -> list[int]:
    out = [0] * len(deltas)
    running = first
    for index, delta in enumerate(deltas):
        running += delta
        out[index] = running
    return out


def encode_block(columns: BlockColumns) -> bytes:
    """Encode one block of columns as a compressed body (no section header)."""
    count = len(columns)
    if count == 0:
        raise TraceError("cannot encode an empty block")
    first_ts = columns.timestamps_us[0]
    parts: list[bytes] = [struct.pack("<Iq", count, first_ts)]

    def add(payload: bytes) -> None:
        parts.append(struct.pack("<I", len(payload)))
        parts.append(payload)

    add(_pack_ints(_delta_encode(columns.timestamps_us)))
    # UTC offsets are near-constant; stored plain, zlib erases the runs.
    add(_pack_ints(columns.tz_offsets_s))
    add(_pack_ints(columns.statuses))
    add(_pack_ints(columns.sizes))
    for name in DICT_COLUMNS:
        add(_pack_ints(columns.dict_indices[name]))
    add(json.dumps(columns.request_ids, separators=(",", ":")).encode("utf-8"))
    add(_pack_ints(columns.labels) if columns.labels is not None else b"")
    add(_pack_ints(columns.actor_indices) if columns.actor_indices is not None else b"")
    add(
        json.dumps(columns.extras, separators=(",", ":")).encode("utf-8")
        if columns.extras is not None
        else b""
    )
    return zlib.compress(b"".join(parts))


def decode_block(body: bytes) -> BlockColumns:
    """Decode a compressed block body back into :class:`BlockColumns`."""
    try:
        raw = zlib.decompress(body)
    except zlib.error as exc:
        raise TraceError(f"corrupt trace block: {exc}") from exc
    view = memoryview(raw)
    try:
        count, first_ts = struct.unpack_from("<Iq", view, 0)
        offset = 12

        def take() -> bytes:
            nonlocal offset
            (length,) = struct.unpack_from("<I", view, offset)
            offset += 4
            payload = bytes(view[offset : offset + length])
            if len(payload) != length:
                raise TraceError("truncated trace block")
            offset += length
            return payload

        timestamps = _delta_decode(first_ts, _unpack_ints(take()))
        tz_offsets = _unpack_ints(take())
        statuses = _unpack_ints(take())
        sizes = _unpack_ints(take())
        dict_indices = {name: _unpack_ints(take()) for name in DICT_COLUMNS}
        request_ids = json.loads(take().decode("utf-8"))
        labels_buf = take()
        actors_buf = take()
        extras_buf = take()
    except (struct.error, ValueError) as exc:
        raise TraceError(f"corrupt trace block: {exc}") from exc

    columns = BlockColumns(
        request_ids=request_ids,
        timestamps_us=timestamps,
        tz_offsets_s=tz_offsets,
        statuses=statuses,
        sizes=sizes,
        dict_indices=dict_indices,
        labels=_unpack_ints(labels_buf) if labels_buf else None,
        actor_indices=_unpack_ints(actors_buf) if actors_buf else None,
        extras=json.loads(extras_buf.decode("utf-8")) if extras_buf else None,
    )
    lengths = {
        len(columns.request_ids),
        len(columns.timestamps_us),
        len(columns.tz_offsets_s),
        len(columns.statuses),
        len(columns.sizes),
        *(len(indices) for indices in columns.dict_indices.values()),
    }
    if lengths != {count}:
        raise TraceError(f"inconsistent column lengths in trace block (expected {count})")
    return columns


def encode_section(tag: bytes, payload: bytes) -> bytes:
    """Frame a section payload with its tag and length."""
    return _SECTION_HEADER.pack(tag, len(payload)) + payload


def read_section(handle, expected_tag: bytes) -> bytes:
    """Read one framed section from ``handle``, checking its tag."""
    header = handle.read(_SECTION_HEADER.size)
    if len(header) != _SECTION_HEADER.size:
        raise TraceError("truncated trace file (section header)")
    tag, length = _SECTION_HEADER.unpack(header)
    if tag != expected_tag:
        raise TraceError(f"unexpected trace section {tag!r} (wanted {expected_tag!r})")
    payload = handle.read(length)
    if len(payload) != length:
        raise TraceError("truncated trace file (section payload)")
    return payload


def encode_trailer(strings_offset: int, meta_offset: int) -> bytes:
    """The fixed-size trailer pointing at the strings and meta sections."""
    return _TRAILER.pack(strings_offset, meta_offset, MAGIC)


def decode_trailer(buf: bytes) -> tuple[int, int]:
    """Parse the trailer, returning (strings offset, meta offset)."""
    if len(buf) != TRAILER_SIZE:
        raise TraceError("truncated trace file (trailer)")
    strings_offset, meta_offset, magic = _TRAILER.unpack(buf)
    if magic != MAGIC:
        raise TraceError(
            "not a repro trace file (bad trailer magic); "
            "was it written by a different format version?"
        )
    return strings_offset, meta_offset


def encode_strings_section(tables: dict[str, list[str]], actors: list[str]) -> bytes:
    """Encode the trace-global string tables (dictionary values)."""
    payload = json.dumps(
        {"columns": tables, "actors": actors}, separators=(",", ":")
    ).encode("utf-8")
    return zlib.compress(payload)


def decode_strings_section(payload: bytes) -> tuple[dict[str, list[str]], list[str]]:
    """Inverse of :func:`encode_strings_section`."""
    try:
        data = json.loads(zlib.decompress(payload).decode("utf-8"))
        tables = data["columns"]
        actors = data["actors"]
    except (zlib.error, ValueError, KeyError) as exc:
        raise TraceError(f"corrupt trace string tables: {exc}") from exc
    missing = set(DICT_COLUMNS) - set(tables)
    if missing:
        raise TraceError(f"trace string tables missing columns: {sorted(missing)}")
    return tables, actors
