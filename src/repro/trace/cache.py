"""Content-addressed generation cache.

Synthetic traffic generation is pure: the same scenario name, scale,
seed and parameters always produce the same data set.  That makes the
generated traffic cacheable by the *hash of its generation inputs* --
the first run records the data set as a trace under ``.repro-cache/``
and every later run (in any process) replays it at I/O speed instead of
re-simulating every actor.

The cache is two-tier:

* an in-process LRU of materialised :class:`~repro.logs.dataset.Dataset`
  objects, so sweeps that execute many specs over the same traffic pay
  for at most one decode per process, and
* the on-disk trace files themselves, shared across processes and runs.

:func:`~repro.runspec.execute.build_dataset` consults the cache when a
spec sets ``TrafficSpec(cache=True)``; nothing else in the library
changes, which is what makes the caching transparent.

The cache directory defaults to ``.repro-cache`` in the working
directory and can be moved with the ``REPRO_CACHE_DIR`` environment
variable.  Entries are ordinary trace files -- ``repro trace info`` on a
cache entry tells you exactly what is in it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import OrderedDict
from typing import Any, Callable, Mapping

from repro.exceptions import TraceError
from repro.logs.dataset import Dataset
from repro.obs import names as metric_names
from repro.obs.metrics import resolve_registry
from repro.trace.format import FORMAT_VERSION
from repro.trace.store import TraceInfo, read_trace, trace_info, write_trace

logger = logging.getLogger(__name__)

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default number of materialised data sets kept in process memory.
DEFAULT_MEMORY_SLOTS = 4


def traffic_fingerprint(
    *,
    scenario: str,
    scale: float | None = None,
    seed: int | None = None,
    params: Mapping[str, Any] | None = None,
) -> str:
    """A stable content address for one set of generation inputs.

    The fingerprint is the SHA-256 of the canonical JSON of everything
    that determines the generated traffic: scenario name, scale, seed,
    extra factory parameters, the trace format version *and the library
    version* -- the traffic generator's behaviour is part of the
    content, so an upgrade that changes generation can never silently
    replay traffic recorded by an older version.  Parameter order does
    not matter; non-JSON-serializable parameters raise
    :class:`TraceError` because they cannot be addressed stably.
    """
    from repro import __version__ as library_version  # late: package init order

    try:
        canonical = json.dumps(
            {
                "kind": "scenario",
                "scenario": scenario,
                "scale": scale,
                "seed": seed,
                "params": dict(params or {}),
                "trace_format": FORMAT_VERSION,
                "library_version": library_version,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    except (TypeError, ValueError) as exc:
        raise TraceError(
            f"cannot fingerprint scenario {scenario!r}: parameters are not "
            f"JSON-serializable ({exc})"
        ) from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


class GenerationCache:
    """A directory of content-addressed traces plus an in-process LRU."""

    def __init__(self, root: str | None = None, *, memory_slots: int = DEFAULT_MEMORY_SLOTS):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = root
        self.memory_slots = memory_slots
        self._memory: OrderedDict[str, Dataset] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> str:
        """The trace path a fingerprint maps to."""
        return os.path.join(self.root, f"{fingerprint}.trace")

    def _remember(self, fingerprint: str, dataset: Dataset) -> None:
        if self.memory_slots < 1:
            return
        self._memory[fingerprint] = dataset
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def load(self, fingerprint: str, *, registry=None) -> Dataset | None:
        """The cached data set for a fingerprint, or ``None`` on a miss.

        A corrupt or unreadable cache entry (e.g. a run killed mid-write
        before the atomic rename, or a stale format) is treated as a
        miss and removed, so the caller simply regenerates.
        """
        registry = resolve_registry(registry)
        cached = self._memory.get(fingerprint)
        if cached is not None:
            self._memory.move_to_end(fingerprint)
            self.memory_hits += 1
            registry.counter(
                metric_names.CACHE_HITS, "Generation-cache hits by tier."
            ).inc(tier="memory")
            logger.debug("cache hit", extra={"tier": "memory", "fingerprint": fingerprint})
            return cached
        path = self.path_for(fingerprint)
        if not os.path.exists(path):
            return None
        try:
            dataset = read_trace(path, registry=registry)
        except TraceError:
            logger.warning(
                "corrupt cache entry removed", extra={"fingerprint": fingerprint, "path": path}
            )
            try:
                os.remove(path)
            except OSError:  # repro-lint: allow[REP007] best-effort removal, corruption already logged
                pass
            return None
        self.disk_hits += 1
        registry.counter(
            metric_names.CACHE_HITS, "Generation-cache hits by tier."
        ).inc(tier="disk")
        logger.debug("cache hit", extra={"tier": "disk", "fingerprint": fingerprint})
        self._remember(fingerprint, dataset)
        return dataset

    def store(self, fingerprint: str, dataset: Dataset, *, registry=None) -> str:
        """Record a data set under its fingerprint (atomic rename)."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(fingerprint)
        temp_path = f"{path}.tmp.{os.getpid()}"
        try:
            write_trace(dataset, temp_path, registry=registry)
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):
                try:
                    os.remove(temp_path)
                except OSError:  # repro-lint: allow[REP007] best-effort tmp cleanup
                    pass
        self._remember(fingerprint, dataset)
        return path

    def get_or_generate(
        self, fingerprint: str, builder: Callable[[], Dataset], *, registry=None
    ) -> Dataset:
        """Replay the cached traffic, or generate-and-record on first use."""
        cached = self.load(fingerprint, registry=registry)
        if cached is not None:
            return cached
        self.misses += 1
        resolve_registry(registry).counter(
            metric_names.CACHE_MISSES, "Generation-cache misses (traffic regenerated)."
        ).inc()
        logger.debug("cache miss", extra={"fingerprint": fingerprint})
        dataset = builder()
        self.store(fingerprint, dataset, registry=registry)
        return dataset

    # ------------------------------------------------------------------
    def entries(self) -> list[TraceInfo]:
        """Footer summaries of every cache entry on disk."""
        if not os.path.isdir(self.root):
            return []
        infos = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".trace"):
                continue
            try:
                infos.append(trace_info(os.path.join(self.root, name)))
            except TraceError:
                continue
        return infos

    def clear_memory(self) -> None:
        """Drop the in-process LRU (disk entries stay)."""
        self._memory.clear()

    def clear(self) -> int:
        """Delete every on-disk entry; returns how many were removed."""
        self.clear_memory()
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for name in os.listdir(self.root):
            if name.endswith(".trace"):
                try:
                    os.remove(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    continue
        return removed


_DEFAULT_CACHES: dict[str, GenerationCache] = {}


def default_cache() -> GenerationCache:
    """The process-wide cache for the current cache directory.

    The directory is re-resolved from ``REPRO_CACHE_DIR`` on every call
    (one cache instance per directory), so tests and tools that point the
    variable somewhere else get an isolated cache without global resets.
    """
    root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    cache = _DEFAULT_CACHES.get(root)
    if cache is None:
        cache = GenerationCache(root)
        _DEFAULT_CACHES[root] = cache
    return cache
