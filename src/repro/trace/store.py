"""The trace store: :class:`TraceWriter`, :class:`TraceReader`, :class:`TraceInfo`.

The writer turns a stream of validated
:class:`~repro.logs.record.LogRecord` objects (optionally with labels)
into the chunked columnar file described in :mod:`repro.trace.format`;
the reader walks it back block by block, so traces far larger than
memory replay in bounded space.  Because every record admitted by the
writer was a fully validated ``LogRecord``, the reader trusts the
columns and rebuilds records through a fast slot-filling path instead of
re-running constructor validation -- replaying a trace is several times
cheaper than regenerating the traffic it recorded.

Module-level helpers cover the common whole-dataset cases::

    info = write_trace(dataset, "march.trace")   # record once
    dataset = read_trace("march.trace")          # replay many
    trace_info("march.trace").records            # O(1), footer only
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import IO, Iterator

import numpy as np

from repro.exceptions import TraceError
from repro.logs.dataset import BENIGN, MALICIOUS, Dataset, DatasetMetadata, GroundTruth
from repro.logs.record import LogRecord, RequestMethod
from repro.obs import names as metric_names
from repro.obs.metrics import resolve_registry
from repro.trace.format import (
    BLOCK_TAG,
    DEFAULT_BLOCK_SIZE,
    DICT_COLUMNS,
    FORMAT_VERSION,
    LABEL_NAMES,
    MAGIC,
    META_TAG,
    STRINGS_TAG,
    TRAILER_SIZE,
    BlockColumns,
    decode_block,
    decode_strings_section,
    decode_trailer,
    encode_block,
    encode_section,
    encode_strings_section,
    encode_trailer,
    read_section,
)

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)
_ONE_US = timedelta(microseconds=1)
_ONE_S = timedelta(seconds=1)
_LABEL_INDEX = {name: index for index, name in enumerate(LABEL_NAMES)}


def _timestamp_us(moment: datetime) -> int:
    """Exact integer microseconds since the epoch (no float rounding)."""
    return (moment - _EPOCH) // _ONE_US


def _utc_offset_s(moment: datetime) -> int:
    offset = moment.utcoffset()
    if offset is None:  # pragma: no cover - LogRecord normalizes to aware
        return 0
    seconds = offset // _ONE_S
    if offset != timedelta(seconds=seconds):
        raise TraceError(
            f"cannot store sub-second UTC offset {offset!r}; "
            "trace timestamps carry whole-second offsets"
        )
    return seconds


# ----------------------------------------------------------------------
# Info
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceInfo:
    """Everything the footer knows about a trace -- read in O(1)."""

    path: str
    records: int
    labelled: bool
    time_ordered: bool
    block_count: int
    block_size: int
    time_range: tuple[datetime, datetime] | None
    dataset: dict
    version: int
    file_size: int

    def to_dict(self) -> dict:
        """JSON-ready representation (the CLI's ``trace info --json``)."""
        first, last = (None, None) if self.time_range is None else self.time_range
        return {
            "path": self.path,
            "records": self.records,
            "labelled": self.labelled,
            "time_ordered": self.time_ordered,
            "blocks": self.block_count,
            "block_size": self.block_size,
            "time_range": None if first is None else [first.isoformat(), last.isoformat()],
            "dataset": dict(self.dataset),
            "version": self.version,
            "file_size": self.file_size,
        }

    def render(self) -> str:
        """Human-readable summary (the CLI's ``trace info``)."""
        lines = [
            f"trace:        {self.path}",
            f"records:      {self.records:,}",
            f"blocks:       {self.block_count} (block size {self.block_size:,})",
            f"file size:    {self.file_size:,} bytes",
            f"labelled:     {'yes' if self.labelled else 'no'}",
            f"time ordered: {'yes' if self.time_ordered else 'no'}",
        ]
        if self.time_range is not None:
            first, last = self.time_range
            lines.append(f"time range:   {first.isoformat()} .. {last.isoformat()}")
        name = self.dataset.get("name", "")
        scenario = self.dataset.get("scenario", "")
        if name:
            origin = name if not scenario or scenario == name else f"{name} ({scenario})"
            lines.append(f"dataset:      {origin}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class TraceWriter:
    """Stream records into a trace file.

    Use as a context manager; the footer (string tables, meta section,
    trailer) is written by :meth:`close`.  Labels are all-or-nothing: the
    first :meth:`write` decides whether the trace is labelled, and later
    writes must agree, so a trace can always answer "is this labelled?"
    from its footer alone.
    """

    def __init__(
        self,
        path: str,
        *,
        metadata: DatasetMetadata | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        registry=None,
    ) -> None:
        if block_size < 1:
            raise TraceError("block_size must be at least 1")
        self.path = path
        self.block_size = block_size
        self._registry = resolve_registry(registry)
        self.metadata = metadata or DatasetMetadata()
        self._handle: IO[bytes] | None = open(path, "wb")
        self._handle.write(MAGIC)
        self._tables: dict[str, dict[str, int]] = {name: {} for name in DICT_COLUMNS}
        self._actors: dict[str, int] = {}
        self._pending = BlockColumns()
        self._pending_labels: list[int] = []
        self._pending_actors: list[int] = []
        self._pending_extras: list[dict] = []
        self._pending_has_extra = False
        self._blocks: list[list[int]] = []  # [offset, count, min_us, max_us]
        self._records = 0
        self._labelled: bool | None = None
        self._time_ordered = True
        self._last_us: int | None = None
        self._min_us: int | None = None
        self._max_us: int | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if self._handle is not None:
                self.close()
        else:
            # Do not write a footer over a failed run -- close the raw
            # handle and leave the (invalid, footer-less) file behind for
            # the caller to discard.
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    def _intern(self, column: str, value: str) -> int:
        table = self._tables[column]
        index = table.get(value)
        if index is None:
            index = len(table)
            table[value] = index
        return index

    def _intern_actor(self, value: str) -> int:
        index = self._actors.get(value)
        if index is None:
            index = len(self._actors)
            self._actors[value] = index
        return index

    def write(self, record: LogRecord, *, label: str | None = None, actor_class: str = "") -> None:
        """Append one record (with its ground-truth label, if any)."""
        if self._handle is None:
            raise TraceError(f"trace writer for {self.path!r} is closed")
        has_label = label is not None
        if self._labelled is None:
            self._labelled = has_label
        elif self._labelled != has_label:
            raise TraceError(
                "a trace is labelled all-or-nothing: "
                f"record {record.request_id!r} {'has' if has_label else 'lacks'} a label "
                f"but the trace is {'labelled' if self._labelled else 'unlabelled'}"
            )
        if has_label:
            if label not in _LABEL_INDEX:
                raise TraceError(
                    f"unknown label {label!r}; expected {BENIGN!r} or {MALICIOUS!r}"
                )
            self._pending_labels.append(_LABEL_INDEX[label])
            self._pending_actors.append(self._intern_actor(actor_class))

        us = _timestamp_us(record.timestamp)
        if self._last_us is not None and us < self._last_us:
            self._time_ordered = False
        self._last_us = us
        self._min_us = us if self._min_us is None else min(self._min_us, us)
        self._max_us = us if self._max_us is None else max(self._max_us, us)

        pending = self._pending
        pending.request_ids.append(record.request_id)
        pending.timestamps_us.append(us)
        pending.tz_offsets_s.append(_utc_offset_s(record.timestamp))
        pending.statuses.append(record.status)
        pending.sizes.append(record.response_size)
        indices = pending.dict_indices
        indices["client_ip"].append(self._intern("client_ip", record.client_ip))
        indices["method"].append(self._intern("method", record.method.value))
        indices["path"].append(self._intern("path", record.path))
        indices["protocol"].append(self._intern("protocol", record.protocol))
        indices["referrer"].append(self._intern("referrer", record.referrer))
        indices["user_agent"].append(self._intern("user_agent", record.user_agent))
        indices["ident"].append(self._intern("ident", record.ident))
        indices["auth_user"].append(self._intern("auth_user", record.auth_user))
        extra = dict(record.extra) if record.extra else {}
        if extra:
            self._pending_has_extra = True
        self._pending_extras.append(extra)

        self._records += 1
        if len(pending) >= self.block_size:
            self._flush_block()

    def write_dataset(self, dataset: Dataset) -> None:
        """Append every record of a data set (labels included when complete)."""
        truth = dataset.ground_truth if dataset.is_labelled else None
        if truth is None:
            for record in dataset:
                self.write(record)
        else:
            for record in dataset:
                request_id = record.request_id
                self.write(
                    record,
                    label=truth.label_of(request_id),
                    actor_class=truth.actor_class_of(request_id),
                )

    # ------------------------------------------------------------------
    def _flush_block(self) -> None:
        pending = self._pending
        if not len(pending):
            return
        assert self._handle is not None
        if self._labelled:
            pending.labels = self._pending_labels
            pending.actor_indices = self._pending_actors
        if self._pending_has_extra:
            pending.extras = self._pending_extras
        offset = self._handle.tell()
        body = encode_block(pending)
        section = encode_section(BLOCK_TAG, body)
        self._handle.write(section)
        registry = self._registry
        if registry.enabled:
            registry.counter(
                metric_names.TRACE_BLOCKS_WRITTEN, "Trace blocks encoded and written."
            ).inc()
            registry.counter(
                metric_names.TRACE_WRITTEN_BYTES, "Compressed trace bytes written."
            ).inc(len(section))
            registry.counter(
                metric_names.TRACE_RECORDS_WRITTEN, "Records appended to trace files."
            ).inc(len(pending))
        self._blocks.append(
            [offset, len(pending), min(pending.timestamps_us), max(pending.timestamps_us)]
        )
        self._pending = BlockColumns()
        self._pending_labels = []
        self._pending_actors = []
        self._pending_extras = []
        self._pending_has_extra = False

    def _metadata_dict(self) -> dict:
        meta = self.metadata
        try:
            extra = json.loads(json.dumps(dict(meta.extra)))
        except (TypeError, ValueError):
            extra = {}
        return {
            "name": meta.name,
            "description": meta.description,
            "source": meta.source,
            "scenario": meta.scenario,
            "scale": meta.scale,
            "seed": meta.seed,
            "extra": extra,
        }

    def close(self) -> TraceInfo:
        """Flush pending records, write the footer and return the info."""
        if self._handle is None:
            raise TraceError(f"trace writer for {self.path!r} is already closed")
        # Imported here, not at module level: repro.trace is reachable
        # from the package __init__, which defines __version__ last.
        from repro import __version__ as library_version

        self._flush_block()
        handle = self._handle
        strings_offset = handle.tell()
        tables = {name: list(table) for name, table in self._tables.items()}
        handle.write(
            encode_section(STRINGS_TAG, encode_strings_section(tables, list(self._actors)))
        )
        meta_offset = handle.tell()
        meta = {
            "format": "repro-trace",
            "version": FORMAT_VERSION,
            "library_version": library_version,
            "records": self._records,
            "labelled": bool(self._labelled),
            "time_ordered": self._time_ordered,
            "block_size": self.block_size,
            "blocks": self._blocks,
            "time_range_us": (
                None if self._min_us is None else [self._min_us, self._max_us]
            ),
            "dataset": self._metadata_dict(),
        }
        handle.write(encode_section(META_TAG, json.dumps(meta, separators=(",", ":")).encode("utf-8")))
        handle.write(encode_trailer(strings_offset, meta_offset))
        handle.close()
        self._handle = None
        return _info_from_meta(self.path, meta, os.path.getsize(self.path))


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
def _info_from_meta(path: str, meta: dict, file_size: int) -> TraceInfo:
    time_range_us = meta.get("time_range_us")
    time_range = None
    if time_range_us is not None:
        first = _EPOCH + timedelta(microseconds=time_range_us[0])
        last = _EPOCH + timedelta(microseconds=time_range_us[1])
        time_range = (first, last)
    return TraceInfo(
        path=path,
        records=meta["records"],
        labelled=meta["labelled"],
        time_ordered=meta["time_ordered"],
        block_count=len(meta["blocks"]),
        block_size=meta["block_size"],
        time_range=time_range,
        dataset=dict(meta.get("dataset", {})),
        version=meta["version"],
        file_size=file_size,
    )


class TraceReader:
    """Read a trace file written by :class:`TraceWriter`.

    Construction reads only the fixed-size trailer and the small meta
    section, so :attr:`info` is O(1) in the trace length.  Iteration
    decodes one block at a time (out-of-core); :meth:`read_dataset`
    materialises everything into a :class:`~repro.logs.dataset.Dataset`.
    """

    def __init__(self, path: str, *, registry=None) -> None:
        self.path = path
        self._registry = resolve_registry(registry)
        try:
            size = os.path.getsize(path)
        except OSError as exc:
            raise TraceError(f"cannot read trace {path!r}: {exc}") from exc
        if size < len(MAGIC) + TRAILER_SIZE:
            raise TraceError(f"{path!r} is too small to be a trace file")
        with open(path, "rb") as handle:
            if handle.read(len(MAGIC)) != MAGIC:
                raise TraceError(f"{path!r} is not a repro trace file (bad magic)")
            handle.seek(size - TRAILER_SIZE)
            strings_offset, meta_offset = decode_trailer(handle.read(TRAILER_SIZE))
            if not len(MAGIC) <= strings_offset <= meta_offset < size:
                raise TraceError(f"{path!r} has an out-of-range trace footer")
            handle.seek(meta_offset)
            try:
                meta = json.loads(read_section(handle, META_TAG).decode("utf-8"))
            except ValueError as exc:
                raise TraceError(f"corrupt trace metadata in {path!r}: {exc}") from exc
        if meta.get("format") != "repro-trace":
            raise TraceError(f"{path!r} metadata does not describe a repro trace")
        if meta.get("version") != FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace version {meta.get('version')!r} in {path!r} "
                f"(this library reads version {FORMAT_VERSION})"
            )
        self._meta = meta
        self._strings_offset = strings_offset
        self._file_size = size
        self.info = _info_from_meta(path, meta, size)
        self._resolved: tuple[dict[str, list], list[str]] | None = None

    def __len__(self) -> int:
        return self.info.records

    def _account_block_read(self, compressed_bytes: int) -> None:
        registry = self._registry
        if registry.enabled:
            registry.counter(
                metric_names.TRACE_BLOCKS_READ, "Trace blocks decoded."
            ).inc()
            registry.counter(
                metric_names.TRACE_READ_BYTES, "Compressed trace bytes read."
            ).inc(compressed_bytes)

    # ------------------------------------------------------------------
    def _load_strings(self) -> tuple[dict[str, list], list[str]]:
        """The resolved string tables (methods as enum members), cached."""
        if self._resolved is None:
            with open(self.path, "rb") as handle:
                handle.seek(self._strings_offset)
                tables, actors = decode_strings_section(read_section(handle, STRINGS_TAG))
            resolved: dict[str, list] = dict(tables)
            resolved["method"] = [RequestMethod(value) for value in tables["method"]]
            self._resolved = (resolved, actors)
        return self._resolved

    # ------------------------------------------------------------------
    def iter_blocks(
        self, *, start: datetime | None = None, end: datetime | None = None
    ) -> Iterator[tuple[list[LogRecord], BlockColumns]]:
        """Yield ``(records, raw columns)`` one block at a time.

        ``start``/``end`` (inclusive/exclusive) prune whole blocks via
        the footer index before any decompression happens; records inside
        boundary blocks are filtered individually.
        """
        tables, _ = self._load_strings()
        start_us = None if start is None else _timestamp_us(start)
        end_us = None if end is None else _timestamp_us(end)
        with open(self.path, "rb") as handle:
            for offset, _count, min_us, max_us in self._meta["blocks"]:
                if start_us is not None and max_us < start_us:
                    continue
                if end_us is not None and min_us >= end_us:
                    continue
                handle.seek(offset)
                columns = decode_block(read_section(handle, BLOCK_TAG))
                self._account_block_read(handle.tell() - offset)
                records = _records_from_columns(columns, tables)
                if start_us is not None or end_us is not None:
                    keep = [
                        index
                        for index, us in enumerate(columns.timestamps_us)
                        if (start_us is None or us >= start_us)
                        and (end_us is None or us < end_us)
                    ]
                    if len(keep) != len(records):
                        columns = _select_columns(columns, keep)
                        records = [records[index] for index in keep]
                if records:
                    yield records, columns

    def iter_records(
        self, *, start: datetime | None = None, end: datetime | None = None
    ) -> Iterator[LogRecord]:
        """Yield records block by block (out-of-core replay)."""
        for records, _columns in self.iter_blocks(start=start, end=end):
            yield from records

    def iter_labelled(
        self, *, start: datetime | None = None, end: datetime | None = None
    ) -> Iterator[tuple[LogRecord, str | None, str]]:
        """Yield ``(record, label, actor_class)``; label is ``None`` when unlabelled."""
        _, actors = self._load_strings()
        for records, columns in self.iter_blocks(start=start, end=end):
            if columns.labels is None:
                for record in records:
                    yield record, None, ""
            else:
                for record, label_index, actor_index in zip(
                    records, columns.labels, columns.actor_indices
                ):
                    yield record, LABEL_NAMES[label_index], actors[actor_index]

    # ------------------------------------------------------------------
    def read_metadata(self) -> DatasetMetadata:
        """The originating dataset's metadata, rebuilt from the footer."""
        data = dict(self._meta.get("dataset", {}))
        return DatasetMetadata(
            name=data.get("name", "unnamed"),
            description=data.get("description", ""),
            source=data.get("source", "trace"),
            scenario=data.get("scenario", ""),
            scale=data.get("scale", 1.0),
            seed=data.get("seed"),
            extra=data.get("extra", {}),
        )

    def read_frame(self):
        """Map the trace straight into a :class:`~repro.columns.RecordFrame`.

        The zero-decode path of the columnar batch pipeline: block
        columns are concatenated into numpy arrays and the trace-global
        string tables become the frame's dictionaries as-is -- no
        ``LogRecord`` object is ever built.  Replaying a trace into the
        columnar pipeline therefore skips per-record decoding entirely.
        """
        # Imported lazily: repro.columns is a consumer of this module.
        from repro.columns import RecordFrame

        with open(self.path, "rb") as handle:
            handle.seek(self._strings_offset)
            tables, actors = decode_strings_section(read_section(handle, STRINGS_TAG))

        request_ids: list[str] = []
        timestamps: list[int] = []
        tz_offsets: list[int] = []
        statuses: list[int] = []
        sizes: list[int] = []
        codes: dict[str, list[int]] = {name: [] for name in DICT_COLUMNS}
        labels: list[int] | None = [] if self.info.labelled else None
        actor_codes: list[int] | None = [] if self.info.labelled else None
        extras: list[dict] | None = None

        with open(self.path, "rb") as handle:
            for offset, _count, _min_us, _max_us in self._meta["blocks"]:
                handle.seek(offset)
                columns = decode_block(read_section(handle, BLOCK_TAG))
                self._account_block_read(handle.tell() - offset)
                block_start = len(request_ids)
                request_ids.extend(columns.request_ids)
                timestamps.extend(columns.timestamps_us)
                tz_offsets.extend(columns.tz_offsets_s)
                statuses.extend(columns.statuses)
                sizes.extend(columns.sizes)
                for name in DICT_COLUMNS:
                    codes[name].extend(columns.dict_indices[name])
                if labels is not None and columns.labels is not None:
                    labels.extend(columns.labels)
                    assert actor_codes is not None and columns.actor_indices is not None
                    actor_codes.extend(columns.actor_indices)
                if columns.extras is not None:
                    if extras is None:
                        extras = [{} for _ in range(block_start)]
                    extras.extend(columns.extras)
                elif extras is not None:
                    extras.extend({} for _ in range(len(columns)))

        tz_offsets_us = np.asarray(tz_offsets, dtype=np.int64) * 1_000_000
        if self._registry.enabled:
            self._registry.counter(
                metric_names.FRAME_ROWS, "Rows loaded into a RecordFrame."
            ).inc(len(request_ids), source="trace")
        return RecordFrame(
            request_ids=request_ids,
            timestamps_us=np.asarray(timestamps, dtype=np.int64),
            tz_offsets_us=tz_offsets_us,
            statuses=np.asarray(statuses, dtype=np.int64),
            sizes=np.asarray(sizes, dtype=np.int64),
            codes={name: np.asarray(values, dtype=np.int64) for name, values in codes.items()},
            tables=dict(tables),
            labels=None if labels is None else np.asarray(labels, dtype=np.int64),
            actor_codes=None if actor_codes is None else np.asarray(actor_codes, dtype=np.int64),
            actor_table=list(actors),
            extras=extras,
            metadata=self.read_metadata(),
            time_ordered=True if self.info.time_ordered else None,
        )

    def read_dataset(self) -> Dataset:
        """Materialise the whole trace as a :class:`Dataset` (with labels)."""
        _, actors = self._load_strings()
        records: list[LogRecord] = []
        ids: list[str] = []
        labels: list[str] = []
        actor_classes: list[str] = []
        labelled = self.info.labelled
        for block_records, columns in self.iter_blocks():
            records.extend(block_records)
            if labelled:
                ids.extend(columns.request_ids)
                labels.extend(LABEL_NAMES[index] for index in columns.labels)
                actor_classes.extend(actors[index] for index in columns.actor_indices)
        truth = GroundTruth.from_columns(ids, labels, actor_classes) if labelled else None
        return Dataset(
            records,
            ground_truth=truth,
            metadata=self.read_metadata(),
            time_ordered=self.info.time_ordered,
        )


def _select_columns(columns: BlockColumns, keep: list[int]) -> BlockColumns:
    """Project a block onto a subset of its record indices."""
    return BlockColumns(
        request_ids=[columns.request_ids[i] for i in keep],
        timestamps_us=[columns.timestamps_us[i] for i in keep],
        tz_offsets_s=[columns.tz_offsets_s[i] for i in keep],
        statuses=[columns.statuses[i] for i in keep],
        sizes=[columns.sizes[i] for i in keep],
        dict_indices={
            name: [indices[i] for i in keep] for name, indices in columns.dict_indices.items()
        },
        labels=None if columns.labels is None else [columns.labels[i] for i in keep],
        actor_indices=(
            None if columns.actor_indices is None else [columns.actor_indices[i] for i in keep]
        ),
        extras=None if columns.extras is None else [columns.extras[i] for i in keep],
    )


def _records_from_columns(columns: BlockColumns, tables: dict[str, list]) -> list[LogRecord]:
    """Rebuild the block's records through the fast slot-filling path.

    Every record admitted into a trace was a validated ``LogRecord``, so
    the constructor's ``__post_init__`` checks are skipped here; the
    hypothesis round-trip suite pins the equivalence of the two paths.
    """
    # Resolve every column to a list of final values first: index lookups
    # in list comprehensions run close to C speed, which keeps the
    # record-assembly loop below as narrow as possible.
    delta = timedelta
    epoch_for: dict[int, datetime] = {
        offset: _EPOCH.astimezone(timezone(delta(seconds=offset)))
        for offset in set(columns.tz_offsets_s)
    }
    if len(epoch_for) == 1:
        (epoch,) = epoch_for.values()
        timestamps = [epoch + delta(microseconds=us) for us in columns.timestamps_us]
    else:
        timestamps = [
            epoch_for[off] + delta(microseconds=us)
            for us, off in zip(columns.timestamps_us, columns.tz_offsets_s)
        ]
    indices = columns.dict_indices
    ips = tables["client_ip"]
    methods = tables["method"]
    paths = tables["path"]
    protocols = tables["protocol"]
    referrers = tables["referrer"]
    agents = tables["user_agent"]
    idents = tables["ident"]
    auth_users = tables["auth_user"]
    extras = columns.extras

    new = object.__new__
    fill = object.__setattr__
    cls = LogRecord
    records: list[LogRecord] = []
    append = records.append
    for rid, ts, ip, method, path, protocol, referrer, agent, ident, auth_user, status, size in zip(
        columns.request_ids,
        timestamps,
        [ips[i] for i in indices["client_ip"]],
        [methods[i] for i in indices["method"]],
        [paths[i] for i in indices["path"]],
        [protocols[i] for i in indices["protocol"]],
        [referrers[i] for i in indices["referrer"]],
        [agents[i] for i in indices["user_agent"]],
        [idents[i] for i in indices["ident"]],
        [auth_users[i] for i in indices["auth_user"]],
        columns.statuses,
        columns.sizes,
    ):
        record = new(cls)
        fill(record, "request_id", rid)
        fill(record, "timestamp", ts)
        fill(record, "client_ip", ip)
        fill(record, "method", method)
        fill(record, "path", path)
        fill(record, "protocol", protocol)
        fill(record, "status", status)
        fill(record, "response_size", size)
        fill(record, "referrer", referrer)
        fill(record, "user_agent", agent)
        fill(record, "ident", ident)
        fill(record, "auth_user", auth_user)
        fill(record, "extra", {})
        append(record)
    if extras is not None:
        # Non-empty ``extra`` mappings are rare; patch them in afterwards
        # rather than widening the hot loop above.
        for record, extra in zip(records, extras):
            if extra:
                fill(record, "extra", dict(extra))
    return records


# ----------------------------------------------------------------------
# Whole-file helpers
# ----------------------------------------------------------------------
def write_trace(
    dataset: Dataset, path: str, *, block_size: int = DEFAULT_BLOCK_SIZE, registry=None
) -> TraceInfo:
    """Record a data set (records, labels, metadata) as a trace file."""
    with TraceWriter(
        path, metadata=dataset.metadata, block_size=block_size, registry=registry
    ) as writer:
        writer.write_dataset(dataset)
        return writer.close()


def read_trace(path: str, *, registry=None) -> Dataset:
    """Replay a trace file into a fully materialised :class:`Dataset`."""
    return TraceReader(path, registry=registry).read_dataset()


def trace_info(path: str) -> TraceInfo:
    """The footer summary of a trace -- O(1), no block is ever read."""
    return TraceReader(path).info
