"""Execute a :class:`~repro.runspec.spec.RunSpec`.

:func:`execute` is the single entry point behind every workload: it
dispatches on the spec's mode to the batch pipeline (``tables`` /
``evaluate``), the streaming engine (``stream``) or the closed-loop
simulator (``defend``), and always returns a uniform
:class:`~repro.runspec.result.RunResult`.  The legacy entry points
(:class:`~repro.core.experiment.PaperExperiment`,
:class:`~repro.stream.engine.StreamEngine`,
:func:`~repro.mitigation.scenarios.run_defense`) remain available; this
layer composes them, it does not replace them.

Component construction goes through the name-based registries
(:mod:`repro.detectors.registry`, the online-detector registry in
:mod:`repro.stream.detectors`, :func:`repro.traffic.scenarios.get_scenario`,
:func:`repro.mitigation.policy.get_policy`), so a spec referencing a
third-party component works as soon as that component is registered.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:
    from repro.runstore.store import RunStore

from repro.core.configurations import compare_configurations
from repro.core.evaluation import per_actor_class_detection
from repro.core.experiment import ExperimentResult, PaperExperiment
from repro.core.framestats import per_actor_rates_from_frame
from repro.core.reporting import render_evaluation_rows, render_table1
from repro.detectors.registry import create_detector
from repro.exceptions import SpecError
from repro.logs.dataset import Dataset
from repro.logs.parser import LogParser
from repro.logs.record import LogRecord
from repro.mitigation.metrics import MitigationReport, build_report, render_mitigation_report
from repro.mitigation.policy import get_policy
from repro.mitigation.scenarios import run_defense
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.obs.spans import trace_span
from repro.prof.profiler import ProfileOptions, Profiler
from repro.runspec.result import RunResult
from repro.runspec.spec import (
    DEFAULT_SCENARIO,
    AdjudicationSpec,
    PolicySpec,
    RunSpec,
    TrafficSpec,
)
from repro.stream.adjudicator import WindowedAdjudicator
from repro.stream.detectors import create_online_detector, default_online_detectors
from repro.stream.engine import StreamEngine, StreamResult
from repro.stream.runner import ShardedStreamRunner
from repro.stream.sources import dataset_replay, trace_replay
from repro.trace.cache import default_cache, traffic_fingerprint
from repro.trace.store import TraceReader, read_trace
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import get_scenario

#: Optional progress hook: called with the live engine at every
#: ``progress_every`` milestone of a single-shard streaming run.
ProgressHook = Callable[[StreamEngine], None]


def build_dataset(
    traffic: TrafficSpec, *, registry: MetricsRegistry | None = None
) -> Dataset:
    """Materialize the traffic a spec describes (replay, parse or generate).

    Dispatches on the spec's resolved source: ``trace`` replays a
    recorded trace file, ``log`` parses an access log (gzipped or
    plain), and ``scenario`` generates synthetic traffic -- through the
    content-addressed generation cache when the spec sets ``cache=True``,
    so the simulation runs once and later calls replay its recording.
    ``registry`` collects dataset counters (and the trace/cache layers'
    own metrics) when given.
    """
    registry = resolve_registry(registry)
    source = traffic.resolved_source()
    with trace_span("dataset", registry=registry, source=source):
        dataset = _build_dataset(traffic, source, registry)
    if registry.enabled:
        registry.counter(
            metric_names.DATASETS_BUILT, "Data sets materialized, by traffic source."
        ).inc(source=source)
        if dataset.is_labelled:
            registry.counter(
                metric_names.LABELLED_RECORDS, "Records carrying ground-truth labels."
            ).inc(len(dataset))
    return dataset


def _build_dataset(traffic: TrafficSpec, source: str, registry: MetricsRegistry) -> Dataset:
    if source == "trace":
        assert traffic.path is not None  # TrafficSpec validates this
        return read_trace(traffic.path, registry=registry)
    if source == "log":
        records = LogParser(skip_malformed=True).parse_file(traffic.log_file)
        return Dataset(records)
    name = traffic.scenario or DEFAULT_SCENARIO
    kwargs = traffic.scenario_kwargs()

    def generate() -> Dataset:
        try:
            scenario = get_scenario(name, **kwargs)
        except TypeError as exc:
            raise SpecError(
                f"scenario {name!r} does not accept the given parameters "
                f"{sorted(kwargs)}: {exc}"
            ) from exc
        return generate_dataset(scenario)

    if traffic.cache:
        fingerprint = traffic_fingerprint(
            scenario=name, scale=traffic.scale, seed=traffic.seed, params=traffic.params
        )
        return default_cache().get_or_generate(fingerprint, generate, registry=registry)
    return generate()


def _validate_for_mode(spec: RunSpec) -> None:
    """Reject spec fields the selected mode would silently ignore.

    :meth:`RunSpec.from_dict` already rejects unknown keys; this is the
    execution-time counterpart for *known* fields that simply do not
    apply to the workload -- a defend run has no scenario to replay, a
    batch run has no shards -- so a misplaced setting fails loudly
    instead of executing a different run than the config describes.
    """

    def reject(condition: bool, message: str) -> None:
        if condition:
            raise SpecError(f"{spec.mode!r} mode {message}")

    traffic, execution = spec.traffic, spec.execution
    if spec.mode == "defend":
        reject(traffic.scenario is not None, "generates its own closed-loop traffic; remove traffic.scenario")
        reject(traffic.log_file is not None, "generates its own closed-loop traffic; remove traffic.log_file")
        reject(traffic.path is not None, "generates its own closed-loop traffic; remove traffic.path")
        reject(traffic.source is not None, "generates its own closed-loop traffic; remove traffic.source")
        reject(traffic.cache, "generates its own closed-loop traffic; caching applies to scenario traffic")
        reject(traffic.scale is not None, "has no scenario scale; use traffic.total_requests")
        reject(bool(traffic.params), "takes no scenario params; use the defend-specific traffic fields")
        reject(
            spec.adjudication is not None and spec.adjudication.mode != "parallel",
            "adjudicates with parallel k-out-of-n voting only",
        )
    else:
        reject(spec.policy is not None, "applies no enforcement policy; remove the policy block")
        reject(traffic.campaign != "scripted", "has no attack campaign; campaign is defend-only")
        reject(
            traffic.total_requests is not None,
            "sizes traffic via the scenario; put total_requests in traffic.params",
        )
        reject(
            traffic.identities_per_node != 8,
            "has no adaptive attackers; identities_per_node is defend-only",
        )
    if spec.mode in ("tables", "evaluate"):
        reject(spec.adjudication is not None, "computes every k-out-of-2 scheme; remove the adjudication block")
        reject(execution.shards != 1, "runs the batch pipeline; shards are stream-only")
        reject(execution.max_skew_seconds != 0.0, "replays in order; max_skew_seconds is stream-only")
        reject(execution.track_latency, "has no per-request latency; track_latency is stream-only")
        reject(execution.progress_every != 0, "emits no live progress; progress_every is stream-only")
        reject(
            execution.workers != 1 and execution.engine != "columnar",
            "shards frames across workers only with execution.engine 'columnar'",
        )
    else:
        reject(
            execution.workers != 1,
            "does not shard record frames; workers is tables/evaluate-only",
        )
    if spec.mode != "evaluate":
        reject(
            execution.compare_configurations,
            "has no configuration comparison; compare_configurations is evaluate-only",
        )
    if spec.mode in ("stream", "defend"):
        reject(
            execution.engine != "columnar",
            "processes records one at a time; execution.engine is batch-only",
        )
    if spec.mode == "defend":
        reject(execution.shards != 1, "runs a single closed loop; shards are stream-only")
        reject(execution.max_skew_seconds != 0.0, "replays in order; max_skew_seconds is stream-only")
        reject(execution.track_latency, "has no per-request latency; track_latency is stream-only")
        reject(execution.progress_every != 0, "emits no live progress; progress_every is stream-only")


def _spec_trace_fingerprint(spec: RunSpec) -> str | None:
    """The traffic's content address, when the spec's traffic has one.

    Scenario-generated traffic is pure, so its generation-cache
    fingerprint identifies the exact data set the run analysed; a log or
    trace file has no stable content address here (hashing gigabytes on
    every run would defeat the <2% recording budget), and ``defend``
    runs generate closed-loop traffic that depends on enforcement.
    """
    if spec.mode == "defend" or spec.traffic.resolved_source() != "scenario":
        return None
    return traffic_fingerprint(
        scenario=spec.traffic.scenario or DEFAULT_SCENARIO,
        scale=spec.traffic.scale,
        seed=spec.traffic.seed,
        params=spec.traffic.params,
    )


def execute(
    spec: RunSpec,
    *,
    progress: ProgressHook | None = None,
    dataset: Dataset | None = None,
    registry: MetricsRegistry | None = None,
    store: str | os.PathLike[str] | RunStore | None = None,
    profile: Any = None,
) -> RunResult:
    """Run the workload a spec describes and return its uniform result.

    Parameters
    ----------
    spec:
        The declarative run description.
    progress:
        Optional live-progress hook for single-shard ``stream`` runs.
    dataset:
        Optional pre-built data set matching ``spec.traffic``.  Sweeps
        and benchmarks that run many specs over the same traffic pass it
        to skip regeneration; the spec remains the source of truth for
        what the traffic *is*.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When
        given, every layer the run touches records counters, duration
        histograms and tracing spans into it; the result carries the
        full snapshot as ``RunResult.telemetry`` and the span-derived
        per-stage durations are folded into ``RunResult.timings``
        (legacy timing keys are preserved).  ``None`` keeps the run
        uninstrumented at near-zero overhead.
    store:
        Optional :class:`~repro.runstore.store.RunStore` (or a path to
        one): the finished result -- spec, tables, metrics, telemetry,
        traffic fingerprint, wall clock -- is appended to the store, so
        the run becomes longitudinal data (``repro runs list/diff``).  A
        path is opened (and created on first use) and closed again;
        ``None`` falls back to the ``REPRO_RUN_STORE`` environment
        variable, and keeps the run unrecorded when that is unset too.
    profile:
        Profile the run: ``True`` (defaults), a
        :class:`~repro.prof.profiler.ProfileOptions` or a mapping of its
        fields samples stacks on a background thread and attributes CPU
        time and memory to the run's tracing spans; the result carries
        the capture as ``RunResult.profile`` (and it lands in the run
        store's ``profiles`` table when the run is recorded).  Profiling
        needs span telemetry, so a run profiled without a ``registry``
        gets a private one.  ``None`` / ``False`` (the default) keep the
        no-profiling fast path at zero cost.
    """
    registry = resolve_registry(registry)
    _validate_for_mode(spec)
    options = ProfileOptions.coerce(profile)
    if options is not None and not registry.enabled:
        # The span tree is the profiler's attribution key; a profiled
        # run therefore always carries telemetry, even when the caller
        # did not ask for any.
        registry = MetricsRegistry()
    wall_started = time.perf_counter()
    if registry.enabled:
        registry.counter(metric_names.RUNS, "RunSpec executions, by mode.").inc(
            mode=spec.mode
        )
    profiler = Profiler(registry, options) if options is not None else None
    if profiler is not None:
        profiler.start()
    try:
        if spec.mode == "defend":
            if dataset is not None:
                raise SpecError("defend mode generates its own closed-loop traffic")
            result = _run_defend(spec, registry)
        elif spec.mode == "stream":
            result = _run_stream(spec, progress, dataset, registry)
        else:
            runners = {"tables": _run_tables, "evaluate": _run_evaluate}
            try:
                runner = runners[spec.mode]
            except KeyError as exc:  # pragma: no cover - RunSpec validates mode
                raise SpecError(f"unknown run mode {spec.mode!r}") from exc
            result = runner(spec, dataset, registry)
    finally:
        captured = profiler.stop() if profiler is not None else None
    if captured is not None:
        result.profile = captured.to_dict()
    if registry.enabled:
        # Span-derived per-stage durations, with the legacy keys kept
        # verbatim on top (they win any name collision).
        result.timings = {**registry.stage_timings(), **result.timings}
        result.telemetry = registry.to_dict()
    # Late import: repro.runstore builds on this module's RunResult.
    from repro.runstore.store import open_store

    opened = open_store(store)  # None consults $REPRO_RUN_STORE
    if opened is not None:
        try:
            opened.record(
                result,
                wall_seconds=time.perf_counter() - wall_started,
                trace_fingerprint=_spec_trace_fingerprint(spec),
            )
        finally:
            if opened is not store:
                opened.close()
    return result


# ----------------------------------------------------------------------
# Batch modes (tables / evaluate)
# ----------------------------------------------------------------------
def _paper_experiment(
    spec: RunSpec,
    dataset: Dataset | None = None,
    registry: MetricsRegistry | None = None,
) -> tuple[Dataset | None, ExperimentResult]:
    """Run the pairwise paper experiment a batch spec describes.

    The ``"columnar"`` engine runs frame-natively: the traffic becomes a
    :class:`~repro.columns.RecordFrame` (for trace-backed specs straight
    from :meth:`~repro.trace.store.TraceReader.read_frame`, so no
    :class:`Dataset` is ever materialised and the returned dataset is
    ``None``) and detection *and* table analysis run as columnar kernels,
    sharded across ``execution.workers`` processes when asked.  The
    ``"records"`` engine keeps the legacy object path; both produce
    identical results.
    """
    registry = resolve_registry(registry)
    if spec.detectors and len(spec.detectors) != 2:
        raise SpecError(
            f"the paper experiment is pairwise: {spec.mode!r} mode needs exactly "
            f"two detectors, got {len(spec.detectors)}"
        )
    frame = None
    if spec.execution.engine == "columnar":
        if dataset is None and spec.traffic.resolved_source() == "trace":
            path = spec.traffic.path
            assert path is not None  # TrafficSpec validates this
            with trace_span("dataset", registry=registry, source="trace"):
                frame = TraceReader(path).read_frame()
        else:
            if dataset is None:
                dataset = build_dataset(spec.traffic, registry=registry)
            from repro.columns import RecordFrame

            frame = RecordFrame.from_dataset(dataset, registry=registry)
    elif dataset is None:
        dataset = build_dataset(spec.traffic, registry=registry)
    if spec.detectors:
        first, second = (
            create_detector(detector.name, **detector.params) for detector in spec.detectors
        )
        experiment = PaperExperiment(first, second)
    else:
        experiment = PaperExperiment()
    with trace_span("experiment", registry=registry, engine=spec.execution.engine):
        if frame is not None:
            result = experiment.run_on_frame(
                frame,
                workers=spec.execution.workers,
                registry=registry,
                dataset=dataset,
            )
        else:
            result = experiment.run_on(dataset, engine=spec.execution.engine, registry=registry)
    return dataset, result


def _source_of(spec: RunSpec, result: ExperimentResult) -> str:
    if spec.traffic.log_file:
        return spec.traffic.log_file
    if result.dataset is not None:
        return result.dataset.metadata.name
    assert result.frame is not None  # frame-native runs always carry the frame
    return result.frame.metadata.name


def _batch_result(spec: RunSpec, result: ExperimentResult) -> RunResult:
    breakdown = result.breakdown
    metrics: dict[str, Any] = {
        "both": breakdown.both,
        "neither": breakdown.neither,
        "first_only": breakdown.first_only,
        "second_only": breakdown.second_only,
    }
    metrics.update(result.diversity_metrics.as_dict())
    return RunResult(
        mode=spec.mode,
        source=_source_of(spec, result),
        label=spec.label,
        total_requests=result.total_requests,
        alert_counts=dict(result.alert_counts),
        metrics=metrics,
        timings=dict(result.timings),
        spec=spec.to_dict(),
        raw=result,
    )


def _run_tables(
    spec: RunSpec,
    dataset: Dataset | None = None,
    registry: MetricsRegistry | None = None,
) -> RunResult:
    _dataset, result = _paper_experiment(spec, dataset, registry)
    run_result = _batch_result(spec, result)
    run_result.tables = {
        "table1": result.render_table1(),
        "table2": result.render_table2(),
        "table3": result.render_table3(),
        "table4": result.render_table4(),
    }
    return run_result


def _run_evaluate(
    spec: RunSpec,
    dataset: Dataset | None = None,
    registry: MetricsRegistry | None = None,
) -> RunResult:
    dataset, result = _paper_experiment(spec, dataset, registry)
    run_result = _batch_result(spec, result)

    tool_rows = [evaluation.as_dict() for evaluation in result.tool_evaluations]
    scheme_rows = [evaluation.as_dict() for evaluation in result.adjudication_evaluations]
    run_result.rows["tool_evaluation"] = tool_rows
    run_result.rows["adjudication_evaluation"] = scheme_rows
    run_result.tables["tool_evaluation"] = render_evaluation_rows(
        tool_rows, title="Per-tool labelled evaluation"
    )
    run_result.tables["adjudication_evaluation"] = render_evaluation_rows(
        scheme_rows, title="Adjudication schemes (k-out-of-2)"
    )

    labelled = dataset.is_labelled if dataset is not None else (
        result.frame is not None and result.frame.is_labelled
    )
    if labelled:
        first, second = result.matrix.detector_names[:2]
        if dataset is not None:
            first_rates = per_actor_class_detection(dataset, result.matrix.alerted_by(first))
            second_rates = per_actor_class_detection(dataset, result.matrix.alerted_by(second))
        else:
            # Frame-native run (trace source): the per-actor rates come
            # from the frame's actor dictionary, no record objects needed.
            assert result.frame is not None
            first_rates = per_actor_rates_from_frame(
                result.frame, result.matrix.column(first)
            )
            second_rates = per_actor_rates_from_frame(
                result.frame, result.matrix.column(second)
            )
        actor_rows = [
            {"actor_class": actor, first: first_rates[actor], second: second_rates[actor]}
            for actor in first_rates
        ]
        run_result.rows["actor_class_detection"] = actor_rows
        run_result.tables["actor_class_detection"] = render_evaluation_rows(
            actor_rows, title="Detection rate per actor class"
        )

    if spec.execution.compare_configurations:
        if dataset is None:
            # The configuration comparison replays the record path; a
            # frame-native run materialises the data set for it once.
            assert result.frame is not None
            dataset = result.frame.to_dataset()
        if spec.detectors:
            first_detector, second_detector = (
                create_detector(d.name, **d.params) for d in spec.detectors
            )
        else:
            defaults = PaperExperiment()
            first_detector, second_detector = defaults.first_detector, defaults.second_detector
        comparison = compare_configurations(dataset, first_detector, second_detector)
        config_rows = []
        for outcome in comparison.outcomes:
            row: dict[str, Any] = {
                "configuration": outcome.name,
                "alerts": outcome.alert_count,
                "workload": outcome.total_workload,
            }
            if outcome.confusion is not None:
                row["sensitivity"] = outcome.confusion.sensitivity()
                row["specificity"] = outcome.confusion.specificity()
            config_rows.append(row)
        run_result.rows["configurations"] = config_rows
        run_result.tables["configurations"] = render_evaluation_rows(
            config_rows, title="Parallel vs serial configurations"
        )
    return run_result


# ----------------------------------------------------------------------
# Stream mode
# ----------------------------------------------------------------------
def _online_detectors(spec: RunSpec) -> list[Any]:
    if not spec.detectors:
        return default_online_detectors()
    return [create_online_detector(d.name, **d.params) for d in spec.detectors]


def _stream_source(
    spec: RunSpec, dataset: Dataset | None, registry: MetricsRegistry
) -> tuple[Iterable[LogRecord], int, str]:
    """The record feed of a stream run, plus its size and display name.

    Trace-backed specs feed the engine straight from
    :func:`~repro.stream.sources.trace_replay` -- block by block, never
    materialising the whole data set -- which is what lets the stream
    workload replay traces far larger than memory.  Every other source
    materialises a :class:`Dataset` as before.
    """
    if dataset is None and spec.traffic.resolved_source() == "trace":
        path = spec.traffic.path
        assert path is not None  # TrafficSpec validates this
        reader = TraceReader(path)
        return (
            trace_replay(path, registry=registry),
            reader.info.records,
            reader.read_metadata().name,
        )
    if dataset is None:
        dataset = build_dataset(spec.traffic, registry=registry)
    source = spec.traffic.log_file or dataset.metadata.name
    return dataset_replay(dataset), len(dataset), source


def _run_stream(
    spec: RunSpec,
    progress: ProgressHook | None,
    dataset: Dataset | None = None,
    registry: MetricsRegistry | None = None,
) -> RunResult:
    registry = resolve_registry(registry)
    with trace_span("source", registry=registry):
        records, total_requests, source = _stream_source(spec, dataset, registry)
    adjudication = spec.adjudication or AdjudicationSpec()
    execution = spec.execution

    def engine_factory(engine_registry: MetricsRegistry | None = None) -> StreamEngine:
        detectors = _online_detectors(spec)
        return StreamEngine(
            detectors,
            adjudicator=WindowedAdjudicator(
                [detector.name for detector in detectors],
                k=adjudication.k,
                mode=adjudication.mode,
                window_seconds=adjudication.window_seconds,
            ),
            max_skew_seconds=execution.max_skew_seconds,
            track_latency=execution.track_latency,
            registry=engine_registry,
        )

    started = time.perf_counter()
    with trace_span("stream", registry=registry, shards=execution.shards):
        if execution.shards > 1:
            # Worker engines stay uninstrumented (they may live in other
            # processes); the runner folds their merged counts into the
            # registry at the join.
            runner = ShardedStreamRunner(
                engine_factory,
                shards=execution.shards,
                backend=execution.backend,
                registry=registry,
            )
            result = runner.run(records)
        else:
            engine = engine_factory(registry)
            engine.reset()
            # Milestone-based progress: with a reorder buffer one process()
            # call can release zero or several records, so a plain modulo
            # check would skip or repeat milestones.
            next_progress = execution.progress_every or float("inf")
            for record in records:
                engine.process(record)
                if engine.stats.records >= next_progress:
                    if progress is not None:
                        progress(engine)
                    next_progress = (
                        engine.stats.records // execution.progress_every + 1
                    ) * execution.progress_every
            result = engine.finish()
    wall_seconds = time.perf_counter() - started

    return _stream_result(spec, source, total_requests, result, wall_seconds)


def _stream_result(
    spec: RunSpec, source: str, total_requests: int, result: StreamResult, wall_seconds: float
) -> RunResult:
    metrics: dict[str, Any] = {
        "records": result.stats.records,
        "sessions_opened": result.stats.sessions_opened,
        "sessions_closed": result.stats.sessions_closed,
        "ensemble_alerts": result.stats.ensemble_alerts,
        "records_per_second": result.stats.records_per_second(),
    }
    metrics.update(
        {f"latency_{name}": value for name, value in result.latency_percentiles().items()}
    )
    summary = []
    if result.adjudication is not None:
        metrics["adjudication_scheme"] = result.adjudication.scheme_name
        metrics["adjudicated_alerts"] = result.adjudication.alert_count
        metrics["adjudicated_rate"] = result.adjudication.alert_rate()
        summary.append(
            f"adjudicated ({result.adjudication.scheme_name}): "
            f"{result.adjudication.alert_count:,} of {total_requests:,} requests alerted "
            f"({result.adjudication.alert_rate():.1%})"
        )
    summary.append(
        f"sessions: {result.stats.sessions_closed:,} closed; "
        f"throughput: {result.stats.records_per_second():,.0f} requests/sec"
    )
    return RunResult(
        mode=spec.mode,
        source=source,
        label=spec.label,
        total_requests=total_requests,
        alert_counts=result.alert_counts(),
        metrics=metrics,
        tables={
            "table1": render_table1(
                total_requests,
                result.alert_counts(),
                title="Streaming Table 1 - HTTP requests alerted by the online detectors",
            )
        },
        timings={"stream_seconds": wall_seconds, "busy_seconds": result.stats.busy_seconds},
        summary=summary,
        spec=spec.to_dict(),
        raw=result,
    )


# ----------------------------------------------------------------------
# Defend mode
# ----------------------------------------------------------------------
def _run_defend(spec: RunSpec, registry: MetricsRegistry | None = None) -> RunResult:
    if spec.detectors:
        raise SpecError(
            "defend mode fields the standard online ensemble; "
            "custom detector lists are not supported"
        )
    registry = resolve_registry(registry)
    policy_spec = spec.policy or PolicySpec()
    policy = get_policy(policy_spec.name, **policy_spec.params)
    adjudication = spec.adjudication or AdjudicationSpec(k=2, window_seconds=600.0)
    traffic = spec.traffic

    started = time.perf_counter()
    with trace_span("simulate", registry=registry, campaign=traffic.campaign):
        result = run_defense(
            total_requests=traffic.total_requests if traffic.total_requests is not None else 8_000,
            adaptive=traffic.campaign == "adaptive",
            policy=policy,
            seed=traffic.seed if traffic.seed is not None else 314,
            k=adjudication.k,
            identities_per_node=traffic.identities_per_node,
            window_seconds=adjudication.window_seconds,
            registry=registry,
        )
    wall_seconds = time.perf_counter() - started
    with trace_span("report", registry=registry):
        report = build_report(result, policy_name=policy.name)

    return RunResult(
        mode=spec.mode,
        source=result.dataset.metadata.name,
        label=spec.label,
        total_requests=report.total_requests,
        alert_counts=result.stream_result.alert_counts(),
        metrics={
            "served_requests": report.served_requests,
            "denied_requests": report.denied_requests,
            "requests_saved": report.requests_saved,
            "bytes_saved": report.bytes_saved,
            "challenges_passed": report.challenges_passed,
            "challenges_failed": report.challenges_failed,
            "attacker_attempted": report.attacker_attempted,
            "attacker_served": report.attacker_served,
            "attacker_yield": report.attacker_yield,
            "attacker_actors_blocked": report.attacker_actors_blocked,
            "attacker_identity_rotations": report.attacker_identity_rotations,
            "attacker_gave_up": report.attacker_gave_up,
            "median_time_to_first_block": report.median_time_to_first_block,
            "median_time_served": report.median_time_served,
            "false_block_rate": report.false_block_rate,
            "human_lockout_rate": report.human_lockout_rate,
        },
        tables={
            "table5": render_mitigation_report(
                report,
                title=(
                    "Table 5 - Closed-loop enforcement outcomes "
                    f"({traffic.campaign} campaign)"
                ),
            )
        },
        timings={"defense_seconds": wall_seconds},
        enforcement=_enforcement_summary(report),
        spec=spec.to_dict(),
        raw={"simulation": result, "report": report},
    )


def _enforcement_summary(report: MitigationReport) -> dict[str, Any]:
    return {
        "policy": report.policy_name,
        "action_counts": dict(report.action_counts),
        "attacker_actors": report.attacker_actors,
        "attacker_actors_blocked": report.attacker_actors_blocked,
        "benign_attempted": report.benign_attempted,
        "benign_denied": report.benign_denied,
        "humans_total": report.humans_total,
        "humans_challenged": report.humans_challenged,
        "humans_challenges_failed": report.humans_challenges_failed,
        "humans_denied_ever": report.humans_denied_ever,
    }
