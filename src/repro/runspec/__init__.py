"""repro.runspec -- one declarative, serializable entry point for every workload.

The reproduction grew four divergent entry points (the batch
:class:`~repro.core.experiment.PaperExperiment`, the labelled-evaluation
path, the :class:`~repro.stream.engine.StreamEngine`, and the closed-loop
:func:`~repro.mitigation.scenarios.run_defense`).  This package makes an
experiment *data* instead: a :class:`RunSpec` dataclass tree fully
describes a run, round-trips through JSON, and a single
:func:`execute` call dispatches it to the right workload, returning a
uniform :class:`RunResult`.

Quickstart::

    from repro.runspec import RunSpec, TrafficSpec, execute, load_runspec

    spec = RunSpec(mode="tables", traffic=TrafficSpec(scale=0.02, seed=2018))
    result = execute(spec)
    print(result.render())                 # the Tables 1-4 report
    print(result.alert_counts)             # {'commercial': ..., 'inhouse': ...}

    spec.save("spec.json")                 # ... later, or on another machine:
    same = execute(load_runspec("spec.json"))

Specs reference detectors, scenarios, policies and adjudication schemes
by registry name, so third-party components plug in by registering a
factory (see :mod:`repro.registry`).
"""

from repro.runspec.execute import build_dataset, execute
from repro.runspec.result import RunResult
from repro.runspec.spec import (
    ADJUDICATION_MODES,
    BACKENDS,
    CAMPAIGNS,
    DEFAULT_SCENARIO,
    RUN_MODES,
    TRAFFIC_SOURCES,
    AdjudicationSpec,
    DetectorSpec,
    ExecutionSpec,
    PolicySpec,
    RunSpec,
    TrafficSpec,
    load_runspec,
)

__all__ = [
    "ADJUDICATION_MODES",
    "AdjudicationSpec",
    "BACKENDS",
    "CAMPAIGNS",
    "DEFAULT_SCENARIO",
    "DetectorSpec",
    "ExecutionSpec",
    "PolicySpec",
    "RUN_MODES",
    "RunResult",
    "RunSpec",
    "TRAFFIC_SOURCES",
    "TrafficSpec",
    "build_dataset",
    "execute",
    "load_runspec",
]
