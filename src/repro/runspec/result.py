"""The uniform result of executing any :class:`~repro.runspec.spec.RunSpec`.

Every workload -- batch tables, labelled evaluation, streaming, closed
loop -- returns the same :class:`RunResult` shape: flat numeric
``metrics``, per-detector ``alert_counts``, rendered plain-text
``tables``, structured ``rows`` (list-of-dict tables), stage ``timings``
and, for ``defend`` runs, an ``enforcement`` summary.  ``to_dict()``
makes the whole thing JSON-serializable (the ``--json`` output of every
CLI subcommand), and ``render()`` reproduces the human-readable report
the legacy entry points printed.

Because results are uniform, cross-workload identities become one-line
assertions::

    # batch/stream equivalence of the ported detectors
    assert execute(stream_spec).alert_counts == execute(batch_spec).alert_counts

    # the pass-through policy enforces nothing
    assert execute(passthrough_spec).metrics["denied_requests"] == 0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import SpecError


@dataclass
class RunResult:
    """Everything one executed run produced, in a uniform shape."""

    #: The workload that ran (one of :data:`~repro.runspec.spec.RUN_MODES`).
    mode: str
    #: Where the traffic came from (scenario name or log-file path).
    source: str
    total_requests: int
    #: Requests alerted per detector (the Table-1 numbers).
    alert_counts: dict[str, int] = field(default_factory=dict)
    #: Flat scalar metrics (counts, rates, medians), keyed by name.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Rendered plain-text tables, in report order.
    tables: dict[str, str] = field(default_factory=dict)
    #: Structured row tables (evaluations, comparisons), keyed by name.
    rows: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    #: Stage timings in seconds.
    timings: dict[str, float] = field(default_factory=dict)
    #: Metrics-registry snapshot (counters, histograms, span tree) when
    #: the run was executed with a registry; ``None`` otherwise.  The
    #: schema is :meth:`repro.obs.metrics.MetricsRegistry.to_dict`.
    telemetry: dict[str, Any] | None = None
    #: Captured profile (stack samples, per-span resource attribution)
    #: when the run was executed with ``profile=``; ``None`` otherwise.
    #: The schema is :meth:`repro.prof.profile.Profile.to_dict`.
    profile: dict[str, Any] | None = None
    #: Human-readable summary lines appended after the tables.
    summary: list[str] = field(default_factory=list)
    #: Closed-loop enforcement summary (``defend`` runs only).
    enforcement: dict[str, Any] | None = None
    #: The spec that produced this result, as a dictionary.
    spec: dict[str, Any] | None = None
    #: Free-form label copied from the spec.
    label: str = ""
    #: The underlying workload result object (ExperimentResult,
    #: StreamResult or SimulationResult).  Not serialized.
    raw: Any = None  # repro-lint: allow[REP005] transient handle, never persisted

    # ------------------------------------------------------------------
    def metric(self, name: str) -> Any:
        """One scalar metric by name (raises :class:`SpecError` when absent)."""
        try:
            return self.metrics[name]
        except KeyError as exc:
            raise SpecError(
                f"result has no metric {name!r}; available: {sorted(self.metrics)}"
            ) from exc

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The result as a JSON-ready dictionary (``raw`` is excluded)."""
        return {
            "mode": self.mode,
            "source": self.source,
            "label": self.label,
            "total_requests": self.total_requests,
            "alert_counts": dict(self.alert_counts),
            "metrics": dict(self.metrics),
            "tables": dict(self.tables),
            "rows": {name: [dict(row) for row in rows] for name, rows in self.rows.items()},
            "timings": dict(self.timings),
            "telemetry": dict(self.telemetry) if self.telemetry is not None else None,
            "profile": dict(self.profile) if self.profile is not None else None,
            "summary": list(self.summary),
            "enforcement": dict(self.enforcement) if self.enforcement is not None else None,
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a (raw-less) result from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise SpecError(f"a RunResult must be a mapping, got {type(data).__name__}")
        try:
            return cls(
                mode=data["mode"],
                source=data["source"],
                total_requests=data["total_requests"],
                alert_counts=dict(data.get("alert_counts", {})),
                metrics=dict(data.get("metrics", {})),
                tables=dict(data.get("tables", {})),
                rows={name: list(rows) for name, rows in data.get("rows", {}).items()},
                timings=dict(data.get("timings", {})),
                telemetry=(
                    dict(data["telemetry"]) if data.get("telemetry") is not None else None
                ),
                profile=(
                    dict(data["profile"]) if data.get("profile") is not None else None
                ),
                summary=list(data.get("summary", [])),
                enforcement=(
                    dict(data["enforcement"]) if data.get("enforcement") is not None else None
                ),
                spec=data.get("spec"),
                label=data.get("label", ""),
            )
        except KeyError as exc:
            raise SpecError(f"run-result dictionary is missing key {exc}") from exc

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The human-readable report (the legacy entry points' output)."""
        parts = list(self.tables.values())
        if self.summary:
            parts.append("\n".join(self.summary))
        return "\n\n".join(part for part in parts if part)
