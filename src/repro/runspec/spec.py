"""The declarative run-specification tree.

A :class:`RunSpec` fully describes one workload run -- which traffic to
analyse, which detectors to field, how their votes are adjudicated, how
to execute (shards, backend), and, for the closed loop, which
enforcement policy to apply.  Specs are plain data:
:meth:`RunSpec.to_dict` / :meth:`RunSpec.from_dict` round-trip through
JSON, so a spec can live in a config file, be queued in a sweep script,
be diffed against another spec, and be replayed later --
``execute(RunSpec.from_dict(json.load(f)))`` reproduces the run.

The tree
--------
* :class:`TrafficSpec` -- the scenario (by registry name + parameters)
  or an existing log file to replay; for ``defend`` runs, the campaign
  variant and budget.
* :class:`DetectorSpec` -- one detector by registry name + parameters
  (batch registry for ``tables``/``evaluate``, online registry for
  ``stream``).
* :class:`AdjudicationSpec` -- how detector votes combine (parallel
  k-out-of-n or the serial modes, with the decision window).
* :class:`ExecutionSpec` -- sharding, backend, reorder-buffer skew,
  latency tracking and progress cadence.
* :class:`PolicySpec` -- the enforcement policy by registry name
  (``defend`` runs only).

Validation happens at construction time: every spec dataclass checks its
fields in ``__post_init__`` and raises
:class:`~repro.exceptions.SpecError`, and :meth:`RunSpec.from_dict`
additionally rejects unknown keys with a did-you-mean suggestion, so a
typo in a config file fails loudly instead of being silently ignored.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Self

from repro.detectors.pipeline import ENGINES
from repro.exceptions import SpecError
from repro.registry import unknown_name_message

#: The workloads :func:`~repro.runspec.execute.execute` can dispatch to.
RUN_MODES = ("tables", "evaluate", "stream", "defend")

#: Closed-loop campaign variants (``defend`` mode).
CAMPAIGNS = ("scripted", "adaptive")

#: Sharded-execution backends (``stream`` mode with ``shards > 1``).
BACKENDS = ("serial", "thread", "process")

# Batch pipeline engines (``tables`` / ``evaluate`` modes) are imported
# from repro.detectors.pipeline above: the pipeline that implements them
# is their single source of truth.

#: Vote-combination modes of the windowed adjudicator.
ADJUDICATION_MODES = ("parallel", "serial-confirm", "serial-escalate")

#: Where a run's traffic comes from: generated from a scenario, parsed
#: from an access log, or replayed from a recorded trace file.
TRAFFIC_SOURCES = ("scenario", "log", "trace")


def _check_choice(kind: str, value: str, choices: tuple[str, ...]) -> None:
    if value not in choices:
        raise SpecError(unknown_name_message(kind, value, choices))


def _as_plain_dict(params: Mapping[str, Any]) -> dict[str, Any]:
    try:
        return dict(params)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"params must be a mapping, got {params!r}") from exc


class _SpecBase:
    """Shared serialization for the spec dataclasses."""

    if TYPE_CHECKING:
        # Subclasses are dataclasses; this gives ``cls(**data)`` in
        # from_dict a keyword-accepting constructor to check against.
        def __init__(self, **kwargs: Any) -> None: ...

    def to_dict(self) -> dict[str, Any]:
        """The spec as a JSON-ready dictionary (nested specs recurse)."""
        result: dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, _SpecBase):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = [item.to_dict() if isinstance(item, _SpecBase) else item for item in value]
            elif isinstance(value, Mapping):
                value = dict(value)
            result[spec_field.name] = value
        return result

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> Self:
        """Rebuild the spec from :meth:`to_dict` output (strict keys)."""
        if not isinstance(data, Mapping):
            raise SpecError(f"a {cls.__name__} must be a mapping, got {type(data).__name__}")
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        for key in data:
            if key not in known:
                raise SpecError(unknown_name_message(f"{cls.__name__} key", key, known))
        return cls(**{key: value for key, value in data.items()})


#: Scenario used when a spec leaves :attr:`TrafficSpec.scenario` unset.
DEFAULT_SCENARIO = "amadeus_march_2018"


@dataclass(frozen=True)
class TrafficSpec(_SpecBase):
    """Which traffic a run analyses (or, for ``defend``, generates)."""

    #: Registry name of the scenario (``tables``/``evaluate``/``stream``
    #: modes; ``None`` selects :data:`DEFAULT_SCENARIO`).
    scenario: str | None = None
    #: Fraction of the paper's data-set size (scenarios that accept it).
    scale: float | None = None
    #: Simulation seed; ``None`` uses the scenario/campaign default.
    seed: int | None = None
    #: Extra keyword arguments forwarded to the scenario factory.
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Replay an existing access log instead of generating the scenario.
    log_file: str | None = None
    #: Where the traffic comes from (:data:`TRAFFIC_SOURCES`); ``None``
    #: infers it: ``"trace"`` when :attr:`path` is set, ``"log"`` when
    #: :attr:`log_file` is set, ``"scenario"`` otherwise.
    source: str | None = None
    #: Trace file to replay (``source="trace"``).
    path: str | None = None
    #: Record generated scenario traffic in the content-addressed
    #: generation cache (``.repro-cache/``) on first run and replay it
    #: from there on every later run.  Scenario source only.
    cache: bool = False
    #: Closed-loop campaign variant (``defend`` mode).
    campaign: str = "scripted"
    #: Closed-loop request budget (``defend`` mode; ``None`` = default).
    total_requests: int | None = None
    #: Identity-pool size of each adaptive node (``defend`` mode).
    identities_per_node: int = 8

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _as_plain_dict(self.params))
        _check_choice("campaign", self.campaign, CAMPAIGNS)
        if self.source is not None:
            _check_choice("traffic source", self.source, TRAFFIC_SOURCES)
        if self.path is not None and self.log_file is not None:
            raise SpecError("traffic.path (a trace) and traffic.log_file are mutually exclusive")
        if self.source == "trace" and self.path is None:
            raise SpecError("traffic source 'trace' needs traffic.path")
        if self.source == "log" and self.log_file is None:
            raise SpecError("traffic source 'log' needs traffic.log_file")
        if self.path is not None and self.source not in (None, "trace"):
            raise SpecError(
                "traffic.path names a trace file; remove it or set source='trace' "
                f"(source is {self.source!r})"
            )
        if self.log_file is not None and self.source == "scenario":
            raise SpecError("traffic source 'scenario' generates traffic; remove traffic.log_file")
        resolved = self.resolved_source()
        if resolved == "trace":
            for name, value in (
                ("scenario", self.scenario),
                ("scale", self.scale),
                ("seed", self.seed),
            ):
                if value is not None:
                    raise SpecError(
                        f"a trace replays exactly what was recorded; remove traffic.{name}"
                    )
            if self.params:
                raise SpecError("a trace replays exactly what was recorded; remove traffic.params")
        if self.cache and resolved != "scenario":
            raise SpecError(
                "traffic.cache records *generated* traffic; it does not apply to "
                f"source {resolved!r}"
            )
        if self.scale is not None and self.scale <= 0:
            raise SpecError("traffic scale must be positive")
        if self.total_requests is not None and self.total_requests <= 0:
            raise SpecError("total_requests must be positive")
        if self.identities_per_node < 1:
            raise SpecError("identities_per_node must be at least 1")

    def resolved_source(self) -> str:
        """The effective traffic source (explicit or inferred)."""
        if self.source is not None:
            return self.source
        if self.path is not None:
            return "trace"
        if self.log_file is not None:
            return "log"
        return "scenario"

    def scenario_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for the scenario factory."""
        kwargs = dict(self.params)
        if self.scale is not None:
            kwargs["scale"] = self.scale
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs


@dataclass(frozen=True)
class DetectorSpec(_SpecBase):
    """One detector, by registry name."""

    name: str
    #: Keyword arguments forwarded to the detector factory.
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("a detector spec needs a non-empty name")
        object.__setattr__(self, "params", _as_plain_dict(self.params))


@dataclass(frozen=True)
class AdjudicationSpec(_SpecBase):
    """How detector votes combine into the ensemble decision."""

    #: ``parallel`` (k-out-of-n) or one of the serial modes.
    mode: str = "parallel"
    #: Votes required to alert in ``parallel`` mode.
    k: int = 1
    #: Width of the trailing decision window, in seconds.
    window_seconds: float = 300.0

    def __post_init__(self) -> None:
        _check_choice("adjudication mode", self.mode, ADJUDICATION_MODES)
        if self.k < 1:
            raise SpecError("adjudication k must be at least 1")
        if self.window_seconds <= 0:
            raise SpecError("window_seconds must be positive")


@dataclass(frozen=True)
class ExecutionSpec(_SpecBase):
    """How a run executes (independent of what it computes)."""

    #: Number of visitor-sharded engine workers (``stream`` mode).
    shards: int = 1
    #: Sharded execution backend (with ``shards > 1``).
    backend: str = "thread"
    #: Reorder-buffer bound for out-of-order records, in seconds.
    max_skew_seconds: float = 0.0
    #: Record per-request decision latencies (``stream`` mode).
    track_latency: bool = False
    #: Emit a progress snapshot every N records (0 disables).
    progress_every: int = 0
    #: Also compare parallel vs serial deployments (``evaluate`` mode).
    compare_configurations: bool = False
    #: Batch pipeline engine (``tables`` / ``evaluate`` modes):
    #: ``"columnar"`` (vectorized, default) or ``"records"`` (legacy
    #: record-object path).  Both produce identical results.
    engine: str = "columnar"
    #: Multi-process frame sharding of the columnar batch pipeline
    #: (``tables`` / ``evaluate`` modes): the record frame is
    #: hash-sharded by client IP across this many worker processes.
    #: 1 (default) runs single-process; the results are identical.
    workers: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise SpecError("shards must be at least 1")
        if self.workers < 1:
            raise SpecError("workers must be at least 1")
        _check_choice("backend", self.backend, BACKENDS)
        _check_choice("engine", self.engine, ENGINES)
        if self.max_skew_seconds < 0:
            raise SpecError("max_skew_seconds must be non-negative")
        if self.progress_every < 0:
            raise SpecError("progress_every must be non-negative")


@dataclass(frozen=True)
class PolicySpec(_SpecBase):
    """The enforcement policy of a ``defend`` run, by registry name."""

    name: str = "standard"
    #: Keyword arguments forwarded to the policy factory.
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("a policy spec needs a non-empty name")
        object.__setattr__(self, "params", _as_plain_dict(self.params))


@dataclass(frozen=True)
class RunSpec(_SpecBase):
    """One fully described workload run.

    ``execute(spec)`` dispatches on :attr:`mode`:

    * ``"tables"`` -- the batch paper experiment (Tables 1-4),
    * ``"evaluate"`` -- the labelled extension analyses,
    * ``"stream"`` -- the real-time streaming engine,
    * ``"defend"`` -- the closed-loop enforcement simulation.
    """

    mode: str = "tables"
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    #: Detectors to field; empty selects the mode's default ensemble.
    detectors: tuple[DetectorSpec, ...] = ()
    adjudication: AdjudicationSpec | None = None
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    policy: PolicySpec | None = None
    #: Free-form label carried through to the result (sweep bookkeeping).
    label: str = ""

    def __post_init__(self) -> None:
        _check_choice("run mode", self.mode, RUN_MODES)
        object.__setattr__(self, "detectors", tuple(self.detectors))
        for detector in self.detectors:
            if not isinstance(detector, DetectorSpec):
                raise SpecError(f"detectors must be DetectorSpec instances, got {detector!r}")

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec tree from :meth:`to_dict` output (strict keys)."""
        if not isinstance(data, Mapping):
            raise SpecError(f"a RunSpec must be a mapping, got {type(data).__name__}")
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        for key in data:
            if key not in known:
                raise SpecError(unknown_name_message("RunSpec key", key, known))
        kwargs: dict[str, Any] = {
            key: value
            for key, value in data.items()
            if key in ("mode", "label")
        }
        if "traffic" in data:
            kwargs["traffic"] = TrafficSpec.from_dict(data["traffic"])
        if "detectors" in data:
            detectors = data["detectors"]
            if not isinstance(detectors, (list, tuple)):
                raise SpecError("detectors must be a list of detector specs")
            kwargs["detectors"] = tuple(DetectorSpec.from_dict(item) for item in detectors)
        if data.get("adjudication") is not None:
            kwargs["adjudication"] = AdjudicationSpec.from_dict(data["adjudication"])
        if "execution" in data:
            kwargs["execution"] = ExecutionSpec.from_dict(data["execution"])
        if data.get("policy") is not None:
            kwargs["policy"] = PolicySpec.from_dict(data["policy"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def to_json(self, *, indent: int | None = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid spec JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def load_runspec(path: str) -> RunSpec:
    """Load a :class:`RunSpec` from a JSON config file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec file {path!r}: {exc}") from exc
    return RunSpec.from_json(text)
