"""Merge ``BENCH_<group>.json`` files into one benchmark trajectory file.

The benchmark conftest hook (``benchmarks/conftest.py``) writes one
machine-readable JSON file per benchmark group.  CI uploads those as
artifacts; this script merges every ``BENCH_*.json`` it finds into a
single ``BENCH_SUMMARY.json`` so one download (and one diff against the
previous run) covers the whole benchmark trajectory::

    python scripts/bench_summary.py                  # merge ./BENCH_*.json
    python scripts/bench_summary.py --dir results/   # merge another directory
    python scripts/bench_summary.py --output traj.json

The summary nests each group under its name and carries the per-group
scale/seed, so groups measured at different scales stay distinguishable.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def merge_bench_files(paths: list[str]) -> dict:
    """Merge benchmark group payloads into one summary dictionary."""
    groups: dict[str, dict] = {}
    for path in sorted(paths):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        name = payload.get("group") or os.path.basename(path)[len("BENCH_") : -len(".json")]
        groups[name] = {
            "scale": payload.get("scale"),
            "seed": payload.get("seed"),
            "results": payload.get("results", {}),
            "source_file": os.path.basename(path),
        }
    return {"format": "repro-bench-summary", "version": 1, "groups": groups}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=".", help="directory to scan for BENCH_*.json files"
    )
    parser.add_argument(
        "--output",
        default="BENCH_SUMMARY.json",
        help="path of the merged trajectory file to write",
    )
    args = parser.parse_args(argv)

    paths = [
        path
        for path in glob.glob(os.path.join(args.dir, "BENCH_*.json"))
        if os.path.basename(path) != os.path.basename(args.output)
    ]
    if not paths:
        print(f"no BENCH_*.json files found under {args.dir!r}", file=sys.stderr)
        return 1

    summary = merge_bench_files(paths)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    names = ", ".join(sorted(summary["groups"]))
    print(f"merged {len(paths)} group file(s) ({names}) into {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
