"""Merge ``BENCH_<group>.json`` files into one benchmark trajectory file.

The benchmark conftest hook (``benchmarks/conftest.py``) writes one
machine-readable JSON file per benchmark group.  CI uploads those as
artifacts; this script merges every ``BENCH_*.json`` it finds into a
single ``BENCH_SUMMARY.json`` so one download (and one diff against the
previous run) covers the whole benchmark trajectory::

    python scripts/bench_summary.py                  # merge ./BENCH_*.json
    python scripts/bench_summary.py --dir results/   # merge another directory
    python scripts/bench_summary.py --output traj.json
    python scripts/bench_summary.py --store runs.db  # add run-store trajectories

With no ``BENCH_*.json`` files the script still writes a valid, empty
summary and exits 0, so CI jobs that conditionally skip benchmarks do
not need to special-case the artifact step.  ``--store`` additionally
reads ``bench``-mode runs recorded by ``benchmarks/conftest.py`` (via
``REPRO_RUN_STORE``) out of a :mod:`repro.runstore` database and emits
their longitudinal series under a ``store_trajectories`` key -- this is
the only code path that needs ``PYTHONPATH=src``.

The summary nests each group under its name and carries the per-group
scale/seed, so groups measured at different scales stay distinguishable.
Benchmarks that embed a ``repro.obs`` telemetry snapshot (the
``metrics=`` kwarg of ``record_bench``) additionally contribute a
``key_counters`` section per group: the throughput counters below,
summed across label sets, so the trajectory file carries work-done
alongside wall-clock without anyone re-opening the raw snapshots.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Throughput counters lifted out of embedded telemetry snapshots.
#: Values mirror :mod:`repro.obs.names`; kept literal so this script
#: stays stdlib-only and runnable without ``PYTHONPATH=src``.
KEY_COUNTERS = (
    "repro_records_ingested_total",
    "repro_sessions_closed_total",
    "repro_detector_runs_total",
    "repro_detector_alerts_total",
    "repro_enforcement_actions_total",
)


def extract_key_counters(results: dict) -> dict[str, float]:
    """Sum the :data:`KEY_COUNTERS` found in embedded metrics snapshots."""
    totals: dict[str, float] = {}
    for values in results.values():
        snapshot = values.get("metrics") if isinstance(values, dict) else None
        if not isinstance(snapshot, dict) or snapshot.get("format") != "repro-obs":
            continue
        for counter_name in KEY_COUNTERS:
            entry = snapshot.get("metrics", {}).get(counter_name)
            if not entry or entry.get("kind") != "counter":
                continue
            total = sum(series.get("value", 0) for series in entry.get("series", []))
            totals[counter_name] = totals.get(counter_name, 0) + total
    return totals


def merge_bench_files(paths: list[str]) -> dict:
    """Merge benchmark group payloads into one summary dictionary."""
    groups: dict[str, dict] = {}
    for path in sorted(paths):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        name = payload.get("group") or os.path.basename(path)[len("BENCH_") : -len(".json")]
        results = payload.get("results", {})
        group = {
            "scale": payload.get("scale"),
            "seed": payload.get("seed"),
            "results": results,
            "source_file": os.path.basename(path),
        }
        key_counters = extract_key_counters(results)
        if key_counters:
            group["key_counters"] = key_counters
        groups[name] = group
    return {"format": "repro-bench-summary", "version": 1, "groups": groups}


def store_trajectories(store_path: str) -> dict[str, list[dict]]:
    """Per-group longitudinal series of ``bench``-mode runs in a run store.

    Each entry is oldest-first: the run id, when it was recorded, the
    library version that produced it and the flat benchmark metrics --
    the whole performance trajectory of one benchmark group across
    sessions.
    """
    from repro.runstore import RunStore  # needs PYTHONPATH=src

    trajectories: dict[str, list[dict]] = {}
    with RunStore(store_path, create=False) as store:
        bench_runs = store.list_runs(mode="bench", limit=None)
        for spec_hash in sorted({run.spec_hash for run in bench_runs}):
            for summary in store.series(spec_hash):
                data = store.export(summary.run_id)
                trajectories.setdefault(summary.source, []).append(
                    {
                        "run_id": summary.run_id,
                        "recorded_at": summary.recorded_at,
                        "package_version": summary.package_version,
                        "scale": (data.get("spec") or {}).get("scale"),
                        "metrics": data.get("metrics", {}),
                    }
                )
    return trajectories


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=".", help="directory to scan for BENCH_*.json files"
    )
    parser.add_argument(
        "--output",
        default="BENCH_SUMMARY.json",
        help="path of the merged trajectory file to write",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="also read bench-mode run series from this repro.runstore database",
    )
    args = parser.parse_args(argv)

    paths = [
        path
        for path in glob.glob(os.path.join(args.dir, "BENCH_*.json"))
        if os.path.basename(path) != os.path.basename(args.output)
    ]
    if not paths:
        print(f"no BENCH_*.json files found under {args.dir!r}", file=sys.stderr)

    summary = merge_bench_files(paths)
    if args.store:
        summary["store_trajectories"] = store_trajectories(args.store)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    names = ", ".join(sorted(summary["groups"])) or "none"
    print(f"merged {len(paths)} group file(s) ({names}) into {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
