"""Smoke-test the live ``/metrics`` endpoint during a ``repro stream`` run.

CI's observability job runs this script: it launches ``repro stream
--metrics-port 0`` as a subprocess, reads the advertised endpoint URL
off stdout, scrapes it repeatedly *while the run is still executing*,
and validates every scraped exposition line against the Prometheus
text-format grammar.  Stdlib only -- the scrape side deliberately uses
``urllib`` so the check exercises the exposition as an outside client
would, not through ``repro.obs`` itself::

    python scripts/ci_metrics_smoke.py
    python scripts/ci_metrics_smoke.py --scenario balanced_small --scrapes 5

Exit status is non-zero when the endpoint never comes up, a scrape
fails to parse, or the run itself fails.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time
import urllib.request

URL_LINE = re.compile(r"serving metrics at (?P<url>http://\S+)")

#: ``name{labels} value`` -- the exposition sample-line grammar.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" ([0-9eE.+-]+|\+Inf|-Inf|NaN)$"
)

#: Metrics the stream run is guaranteed to expose once records flow.
#: Engine *counters* are bulk-exported at finish, so the live mid-run
#: signals are the run marker, the per-record latency histogram and --
#: because the run is spawned with ``--profile`` -- the profiler's
#: sample counter ticking on its background thread.
EXPECTED_METRICS = (
    "repro_runs_total",
    "repro_verdict_seconds_count",
    "repro_profile_samples_total",
)


def validate_exposition(text: str) -> int:
    """Assert every non-comment line parses; return the sample count."""
    samples = 0
    for line in text.splitlines():
        if not line or line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if not SAMPLE_LINE.match(line):
            raise ValueError(f"unparseable exposition line: {line!r}")
        samples += 1
    return samples


def scrape(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        if response.status != 200:
            raise ValueError(f"GET {url} returned {response.status}")
        return response.read().decode("utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="amadeus_march_2018")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scrapes", type=int, default=3, help="mid-run scrape count")
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=0,
        help="port to serve /metrics on (default 0: the OS picks a free one "
        "and the run advertises it, so parallel CI jobs never collide)",
    )
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "stream",
        "--scenario",
        args.scenario,
        "--scale",
        str(args.scale),
        "--seed",
        str(args.seed),
        "--metrics-port",
        str(args.metrics_port),
        # Profile the run too: the smoke test then also proves the
        # sampler's live counter reaches the exposition mid-run.
        "--profile",
    ]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env["PYTHONUNBUFFERED"] = "1"

    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, env=env, text=True, bufsize=1
    )
    try:
        # The URL line is printed before the run starts executing.
        deadline = time.monotonic() + args.timeout
        url = None
        for line in process.stdout:
            match = URL_LINE.search(line)
            if match:
                url = match.group("url")
                break
        if url is None:
            raise RuntimeError("the stream run never advertised a metrics URL")
        print(f"scraping {url} while the stream runs")

        # Scrape until every expected counter has shown up mid-run (and at
        # least --scrapes expositions parsed), or the endpoint disappears
        # because the run finished.  The workload must therefore outlive
        # the first few scrapes -- the default scenario/scale does.
        bodies: list[str] = []
        seen_expected = False
        while True:
            if time.monotonic() > deadline:
                raise RuntimeError("timed out scraping the metrics endpoint")
            try:
                body = scrape(url)
            except OSError:
                if process.poll() is None and not bodies:
                    time.sleep(0.1)  # the server may still be coming up
                    continue
                break  # endpoint gone: the run is over
            samples = validate_exposition(body)
            bodies.append(body)
            print(f"scrape {len(bodies)}: {samples} parseable samples")
            seen_expected = all(name in body for name in EXPECTED_METRICS)
            if seen_expected and len(bodies) >= args.scrapes:
                break
            time.sleep(0.3)
        if not bodies:
            raise RuntimeError("never scraped the endpoint before the run finished")
        if not seen_expected:
            raise RuntimeError(
                "no mid-run scrape showed all of "
                + ", ".join(EXPECTED_METRICS)
                + " -- use a longer workload"
            )

        process.stdout.read()  # drain so the run can finish printing
        returncode = process.wait(timeout=args.timeout)
        if returncode != 0:
            raise RuntimeError(f"repro stream exited with status {returncode}")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    print("metrics endpoint smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
