"""Regenerate EXPERIMENTS.md from a fresh run of the calibrated scenario.

Usage::

    python scripts/generate_experiments_report.py [scale] [seed]

The default scale of 0.05 (about 73k requests) takes a couple of tens of
seconds; scale=1.0 regenerates the paper's full 1.47M-request volume.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.report import generate_experiments_report  # noqa: E402


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2018
    report = generate_experiments_report(scale=scale, seed=seed)
    output = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "EXPERIMENTS.md")
    with open(output, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"wrote {output} ({len(report.splitlines())} lines, scale={scale}, seed={seed})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
